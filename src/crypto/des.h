// From-scratch implementation of the Data Encryption Standard (FIPS 46).
//
// Kerberos V4 and the V5 Draft 3 model in this repository are built on DES,
// exactly as the original systems were. This is the production path: a
// classic table-driven core in which IP/FP are eight byte-indexed lookups,
// the round function is eight fused S-box+P lookups, and each round subkey
// is stored as the eight 6-bit chunks those lookups consume. Every table is
// derived at compile time from the canonical FIPS tables (des_tables.h).
//
// A clarity-first bit-permutation transcription of the same standard is kept
// in src/crypto/des_ref.h as a reference oracle; the two are cross-checked
// on published test vectors and tens of thousands of randomized (key, block)
// pairs in tests/crypto/des_fastref_test.cc. The benchmark suite
// (bench_b1_desmodes, bench_b4_crack) measures this fast path; comparative
// results in EXPERIMENTS.md are ratios between modes of this same core, so
// the shape of the paper's cost claims is preserved.

#ifndef SRC_CRYPTO_DES_H_
#define SRC_CRYPTO_DES_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kcrypto {

// One 64-bit DES block as raw bytes, big-endian bit numbering per FIPS 46.
using DesBlock = std::array<uint8_t, 8>;

// Big-endian (FIPS bit order) load/store of one block. These are the bridge
// between byte buffers and the uint64_t block form all the fast paths use.
inline uint64_t LoadU64BE(const uint8_t* p) {
  return (static_cast<uint64_t>(p[0]) << 56) | (static_cast<uint64_t>(p[1]) << 48) |
         (static_cast<uint64_t>(p[2]) << 40) | (static_cast<uint64_t>(p[3]) << 32) |
         (static_cast<uint64_t>(p[4]) << 24) | (static_cast<uint64_t>(p[5]) << 16) |
         (static_cast<uint64_t>(p[6]) << 8) | static_cast<uint64_t>(p[7]);
}

inline void StoreU64BE(uint8_t* p, uint64_t v) {
  p[0] = static_cast<uint8_t>(v >> 56);
  p[1] = static_cast<uint8_t>(v >> 48);
  p[2] = static_cast<uint8_t>(v >> 40);
  p[3] = static_cast<uint8_t>(v >> 32);
  p[4] = static_cast<uint8_t>(v >> 24);
  p[5] = static_cast<uint8_t>(v >> 16);
  p[6] = static_cast<uint8_t>(v >> 8);
  p[7] = static_cast<uint8_t>(v);
}

uint64_t BlockToU64(const DesBlock& b);
DesBlock U64ToBlock(uint64_t v);

// A DES key with its 16-round subkey schedule precomputed.
//
// Keys are 8 bytes; the low bit of each byte is an odd-parity bit per the
// standard. Construction does not reject bad parity (Kerberos historically
// fixed parity rather than failing) — use FixParity()/HasOddParity() to
// manage it explicitly.
class DesKey {
 public:
  DesKey() = default;
  explicit DesKey(const DesBlock& key_bytes);
  explicit DesKey(uint64_t key);

  const DesBlock& bytes() const { return bytes_; }
  uint64_t AsU64() const { return BlockToU64(bytes_); }

  // Encrypts / decrypts one 64-bit block.
  uint64_t EncryptBlock(uint64_t plaintext) const;
  uint64_t DecryptBlock(uint64_t ciphertext) const;

  // Bulk ECB over a span, two blocks in flight per step so the S-box table
  // loads of one block overlap the XOR/rotate arithmetic of the other —
  // byte-identical to calling EncryptBlock/DecryptBlock per element but
  // meaningfully faster on the bulk paths (ECB, CBC/PCBC decrypt, sweeps).
  // in == out is allowed.
  void EncryptBlocks2(const uint64_t* in, uint64_t* out, size_t n) const;
  void DecryptBlocks2(const uint64_t* in, uint64_t* out, size_t n) const;

  DesBlock EncryptBlock(const DesBlock& plaintext) const;
  DesBlock DecryptBlock(const DesBlock& ciphertext) const;

  // Derives a "variant" key by XORing every byte with `mask`. Draft 3 uses
  // variant keys for its encrypted-checksum types so that a checksum key is
  // never identical to the message-encryption key.
  DesKey Variant(uint8_t mask) const;

  bool operator==(const DesKey& other) const { return bytes_ == other.bytes_; }

 private:
  void Schedule();

  DesBlock bytes_{};
  // Each 48-bit round key as two 32-bit words: [0] holds the even S-box
  // chunks (boxes 0/2/4/6) and [1] the odd ones, each 6-bit chunk placed at
  // bits 31..26 / 23..18 / 15..10 / 7..2 — the positions where the matching
  // E-expansion window sits in a rotated copy of R, so the round function
  // applies the whole subkey with two word XORs instead of eight byte XORs.
  std::array<std::array<uint32_t, 2>, 16> roundkeys_{};
};

// Sets each byte of `key` to odd parity (modifying only bit 0 of each byte).
DesBlock FixParity(const DesBlock& key);

// True when every byte of `key` has odd parity.
bool HasOddParity(const DesBlock& key);

// True for the four weak and twelve semi-weak DES keys (parity-adjusted
// comparison, O(log n) over a sorted table). Kerberos key generation must
// reject these.
bool IsWeakKey(const DesBlock& key);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_DES_H_
