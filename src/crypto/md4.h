// MD4 message digest (RFC 1186 / RFC 1320), from scratch.
//
// Draft 3 of Kerberos Version 5 offers MD4 as its "collision-proof"
// checksum (rsa-md4 and rsa-md4-des). The paper's appendix contrasts it
// with CRC-32: an attacker cannot construct a second message matching an
// MD4 value, so the cut-and-paste attacks of experiments E9/E10 fail when
// MD4 replaces CRC-32. (MD4 has since been broken — in 1991 it was the
// state of the art, and the *protocol* point stands for any collision-proof
// function.) Verified against the RFC 1320 test suite.

#ifndef SRC_CRYPTO_MD4_H_
#define SRC_CRYPTO_MD4_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace kcrypto {

using Md4Digest = std::array<uint8_t, 16>;

class Md4State {
 public:
  void Update(kerb::BytesView data);
  Md4Digest Final();  // May be called once; consumes the state.

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 4> h_{0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  std::array<uint8_t, 64> buffer_{};
  uint64_t total_bytes_ = 0;
};

Md4Digest Md4(kerb::BytesView data);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_MD4_H_
