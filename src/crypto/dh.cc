#include "src/crypto/dh.h"

#include <cassert>

#include "src/crypto/md4.h"
#include "src/crypto/primes.h"

namespace kcrypto {

const DhGroup& OakleyGroup1() {
  static const DhGroup group{
      BigInt::MustFromHex(
          "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
          "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
          "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF"),
      BigInt(2),
  };
  return group;
}

const DhGroup& OakleyGroup2() {
  static const DhGroup group{
      BigInt::MustFromHex(
          "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
          "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
          "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
          "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF"),
      BigInt(2),
  };
  return group;
}

DhGroup MakeToyGroup(Prng& prng, int bits) {
  uint64_t p = RandomSafePrime64(prng, bits);
  uint64_t g = FindGenerator64(p, prng);
  return DhGroup{BigInt(p), BigInt(g)};
}

DhKeyPair DhGenerate(const DhGroup& group, Prng& prng) {
  size_t bytes = (group.p.BitLength() + 7) / 8;
  BigInt p_minus_3 = group.p.Sub(BigInt(3));
  BigInt priv;
  do {
    priv = BigInt::FromBytes(prng.NextBytes(bytes)).Mod(group.p);
  } while (priv.Compare(p_minus_3) > 0 || priv.BitLength() < 2);
  // priv in [2, p-2] now (loose but uniform enough for the simulation).
  BigInt pub = BigInt::ModExp(group.g, priv, group.p);
  return DhKeyPair{priv, pub};
}

BigInt DhSharedSecret(const DhGroup& group, const BigInt& private_key, const BigInt& peer_public) {
  return BigInt::ModExp(peer_public, private_key, group.p);
}

DesKey DhDeriveKey(const BigInt& shared_secret) {
  kerb::Bytes material = shared_secret.ToBytes();
  Md4Digest digest = Md4(material);
  DesBlock raw;
  for (int i = 0; i < 8; ++i) {
    raw[i] = digest[i];
  }
  DesBlock key = FixParity(raw);
  if (IsWeakKey(key)) {
    key[0] = static_cast<uint8_t>(key[0] ^ 0x0e);
    key = FixParity(key);
  }
  return DesKey(key);
}

}  // namespace kcrypto
