#include "src/crypto/dh.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/crypto/md4.h"
#include "src/crypto/primes.h"

namespace kcrypto {

std::shared_ptr<const DhEngine> DhEngine::Create(const BigInt& p, const BigInt& g) {
  auto ctx = ModExpCtx::Create(p);
  if (!ctx.ok()) {
    return nullptr;
  }
  auto shared_ctx = std::make_shared<const ModExpCtx>(std::move(ctx).value());
  // Private keys live in [2, p-2], so the comb table covers bits() windows.
  return std::shared_ptr<const DhEngine>(
      new DhEngine(std::move(shared_ctx), g, p.BitLength()));
}

const DhEngine* EnsureEngine(DhGroup& group) {
  if (!group.engine) {
    group.engine = DhEngine::Create(group.p, group.g);
  }
  return group.engine.get();
}

kerb::Status ValidateDhPublic(const DhGroup& group, const BigInt& peer_public) {
  if (peer_public.BitLength() < 2) {  // 0 and 1
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "DH public value below 2");
  }
  if (group.p.BitLength() < 2 || !group.p.IsOdd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "degenerate DH modulus");
  }
  // peer_public must be ≤ p-2, i.e. strictly below p-1.
  if (group.p.Sub(BigInt(1)).Compare(peer_public) <= 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "DH public value not in [2, p-2]");
  }
  return kerb::Status::Ok();
}

const DhGroup& OakleyGroup1() {
  static const DhGroup group = [] {
    DhGroup grp{
        BigInt::MustFromHex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
            "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
            "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF"),
        BigInt(2),
        nullptr,
    };
    EnsureEngine(grp);
    return grp;
  }();
  return group;
}

const DhGroup& OakleyGroup2() {
  static const DhGroup group = [] {
    DhGroup grp{
        BigInt::MustFromHex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
            "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
            "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
            "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF"),
        BigInt(2),
        nullptr,
    };
    EnsureEngine(grp);
    return grp;
  }();
  return group;
}

DhGroup MakeToyGroup(Prng& prng, int bits) {
  uint64_t p = RandomSafePrime64(prng, bits);
  uint64_t g = FindGenerator64(p, prng);
  DhGroup group{BigInt(p), BigInt(g), nullptr};
  EnsureEngine(group);
  return group;
}

namespace {

// Slow-path modexp for hand-built groups with no engine. The signatures
// below stay infallible for the simulation's sake, so a degenerate modulus
// (zero/even/≤1) here is a caller bug — untrusted parameters must be
// refused at the trust boundary (ModExpCtx::Create / ValidateDhPublic)
// before they reach an exchange. Fail fast rather than degrade: mapping
// the error to BigInt(0) would hand every caller the same all-zero
// "shared secret" and a predictable derived key.
BigInt FallbackModExp(const BigInt& base, const BigInt& exponent, const BigInt& modulus) {
  auto r = BigInt::ModExp(base, exponent, modulus);
  if (!r.ok()) {
    std::fprintf(stderr, "kcrypto: DH modexp over a degenerate modulus: %s\n",
                 r.error().detail.c_str());
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace

DhKeyPair DhGenerate(const DhGroup& group, Prng& prng) {
  size_t bytes = (group.p.BitLength() + 7) / 8;
  BigInt p_minus_3 = group.p.Sub(BigInt(3));
  BigInt priv;
  do {
    priv = BigInt::FromBytes(prng.NextBytes(bytes)).Mod(group.p);
  } while (priv.Compare(p_minus_3) > 0 || priv.BitLength() < 2);
  // priv in [2, p-2] now (loose but uniform enough for the simulation).
  BigInt pub = group.engine ? group.engine->PowG(priv)
                            : FallbackModExp(group.g, priv, group.p);
  return DhKeyPair{priv, pub};
}

BigInt DhSharedSecret(const DhGroup& group, const BigInt& private_key, const BigInt& peer_public) {
  if (group.engine) {
    return group.engine->Pow(peer_public, private_key);
  }
  return FallbackModExp(peer_public, private_key, group.p);
}

DesKey DhDeriveKey(const BigInt& shared_secret) {
  kerb::Bytes material = shared_secret.ToBytes();
  Md4Digest digest = Md4(material);
  DesBlock raw;
  for (int i = 0; i < 8; ++i) {
    raw[i] = digest[i];
  }
  DesBlock key = FixParity(raw);
  if (IsWeakKey(key)) {
    key[0] = static_cast<uint8_t>(key[0] ^ 0x0e);
    key = FixParity(key);
  }
  return DesKey(key);
}

}  // namespace kcrypto
