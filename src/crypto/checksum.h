// The Draft 3 checksum suite: CRC-32, RSA-MD4, and RSA-MD4-DES.
//
// The paper's central observation about this suite (Appendix, "Weak
// Checksums and Cut-and-Paste Attacks"): the useful classification is not
// "cryptographic" vs. not, but *collision-proof* vs. not. CRC-32 is not
// collision-proof; encrypting a CRC-32 over public data adds almost nothing,
// because the adversary can compute the checksum of a substitute message
// herself and splice it in. MD4 is (was, in 1991) collision-proof.
//
// `IsCollisionProof` encodes that classification, and the protocol variants
// in src/hardened consult it when enforcing recommendation (c') — "strong
// checksums ... should be used to assure integrity of the basic Kerberos
// messages."

#ifndef SRC_CRYPTO_CHECKSUM_H_
#define SRC_CRYPTO_CHECKSUM_H_

#include <cstdint>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"

namespace kcrypto {

enum class ChecksumType : uint8_t {
  kCrc32 = 1,    // unkeyed, NOT collision-proof
  kMd4 = 2,      // unkeyed, collision-proof (1991 model)
  kMd4Des = 3,   // MD4 sealed with a DES variant key: keyed AND collision-proof
};

const char* ChecksumTypeName(ChecksumType type);

// Output size in bytes.
size_t ChecksumSize(ChecksumType type);

// Whether an adversary can construct a second preimage / forced value.
// This is the property the paper says must drive protocol decisions.
bool IsCollisionProof(ChecksumType type);

// Whether verification requires the key.
bool IsKeyed(ChecksumType type);

// Computes the checksum. `key` is required for kMd4Des (asserted) and
// ignored otherwise. For kMd4Des the digest is DES-CBC encrypted under the
// 0xF0 variant of `key`, per the Draft 3 scheme of separating checksum keys
// from message keys.
kerb::Bytes ComputeChecksum(ChecksumType type, kerb::BytesView data,
                            const std::optional<DesKey>& key = std::nullopt);

// Verifies `expected` against `data`.
bool VerifyChecksum(ChecksumType type, kerb::BytesView data, kerb::BytesView expected,
                    const std::optional<DesKey>& key = std::nullopt);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_CHECKSUM_H_
