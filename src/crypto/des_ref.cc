#include "src/crypto/des_ref.h"

#include "src/crypto/des_tables.h"

namespace kcrypto {

namespace {

using destables::Permute;

// The Feistel function: expand R to 48 bits, XOR the subkey, substitute
// through the eight S-boxes, and permute with P.
uint64_t Feistel(uint32_t r, uint64_t subkey) {
  uint64_t expanded = Permute(r, 32, destables::kE, 48) ^ subkey;
  uint32_t sbox_out = 0;
  for (int box = 0; box < 8; ++box) {
    uint32_t six = static_cast<uint32_t>((expanded >> (42 - 6 * box)) & 0x3f);
    // Row is the outer two bits, column the inner four.
    uint32_t row = ((six & 0x20) >> 4) | (six & 0x01);
    uint32_t col = (six >> 1) & 0x0f;
    sbox_out = (sbox_out << 4) | destables::kSBox[box][row * 16 + col];
  }
  return Permute(sbox_out, 32, destables::kP, 32);
}

uint32_t RotateLeft28(uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

}  // namespace

DesKeyRef::DesKeyRef(uint64_t key) { Schedule(key); }

void DesKeyRef::Schedule(uint64_t key) {
  uint64_t key56 = Permute(key, 64, destables::kPc1, 56);
  uint32_t c = static_cast<uint32_t>(key56 >> 28) & 0x0fffffff;
  uint32_t d = static_cast<uint32_t>(key56) & 0x0fffffff;
  for (int round = 0; round < 16; ++round) {
    c = RotateLeft28(c, destables::kShifts[round]);
    d = RotateLeft28(d, destables::kShifts[round]);
    uint64_t cd = (static_cast<uint64_t>(c) << 28) | d;
    subkeys_[round] = Permute(cd, 56, destables::kPc2, 48);
  }
}

uint64_t DesKeyRef::EncryptBlock(uint64_t plaintext) const {
  uint64_t block = Permute(plaintext, 64, destables::kIp, 64);
  uint32_t l = static_cast<uint32_t>(block >> 32);
  uint32_t r = static_cast<uint32_t>(block);
  for (int round = 0; round < 16; ++round) {
    uint32_t next_l = r;
    r = l ^ static_cast<uint32_t>(Feistel(r, subkeys_[round]));
    l = next_l;
  }
  // Note the final swap: the output is R16 || L16.
  uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
  return Permute(preout, 64, destables::kFp, 64);
}

uint64_t DesKeyRef::DecryptBlock(uint64_t ciphertext) const {
  uint64_t block = Permute(ciphertext, 64, destables::kIp, 64);
  uint32_t l = static_cast<uint32_t>(block >> 32);
  uint32_t r = static_cast<uint32_t>(block);
  for (int round = 15; round >= 0; --round) {
    uint32_t next_l = r;
    r = l ^ static_cast<uint32_t>(Feistel(r, subkeys_[round]));
    l = next_l;
  }
  uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
  return Permute(preout, 64, destables::kFp, 64);
}

}  // namespace kcrypto
