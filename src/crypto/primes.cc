#include "src/crypto/primes.h"

#include <cassert>

namespace kcrypto {

uint64_t MulMod64(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) % m);
}

uint64_t PowMod64(uint64_t base, uint64_t exp, uint64_t m) {
  assert(m != 0);
  uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1) {
      result = MulMod64(result, base, m);
    }
    base = MulMod64(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool IsPrime64(uint64_t n) {
  if (n < 2) {
    return false;
  }
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) {
      return n == p;
    }
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // Deterministic witness set for all n < 2^64 (Sinclair 2011).
  for (uint64_t a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull, 1795265022ull}) {
    uint64_t x = PowMod64(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

uint64_t RandomPrime64(Prng& prng, int bits) {
  assert(bits >= 2 && bits <= 63);
  for (;;) {
    uint64_t candidate = prng.NextU64();
    candidate |= 1ull;                                  // odd
    candidate |= 1ull << (bits - 1);                    // exactly `bits` bits
    candidate &= (bits == 63) ? 0x7fffffffffffffffull : ((1ull << bits) - 1);
    if (bits == 2) {
      return 3;
    }
    if (IsPrime64(candidate)) {
      return candidate;
    }
  }
}

uint64_t RandomSafePrime64(Prng& prng, int bits) {
  assert(bits >= 4 && bits <= 62);
  for (;;) {
    uint64_t q = RandomPrime64(prng, bits - 1);
    uint64_t p = 2 * q + 1;
    if ((p >> (bits - 1)) == 1 && IsPrime64(p)) {
      return p;
    }
  }
}

uint64_t FindGenerator64(uint64_t safe_prime, Prng& prng) {
  uint64_t p = safe_prime;
  uint64_t q = (p - 1) / 2;
  for (;;) {
    uint64_t g = 2 + prng.NextBelow(p - 3);
    // g generates the full group iff g^2 != 1 and g^q != 1 (mod p).
    if (PowMod64(g, 2, p) != 1 && PowMod64(g, q, p) != 1) {
      return g;
    }
  }
}

}  // namespace kcrypto
