#include "src/crypto/str2key.h"

#include "src/common/bytes.h"
#include "src/crypto/modes.h"

namespace kcrypto {

DesKey StringToKey(std::string_view password, std::string_view salt) {
  kerb::Bytes input = kerb::ToBytes(std::string(password) + std::string(salt));
  if (input.empty()) {
    input.push_back(0);
  }
  // Pad to a multiple of 8 and fan-fold, reversing the bit order of every
  // other 8-byte group (the V4 "forward then backward" fold).
  input.resize((input.size() + 7) & ~size_t{7}, 0);
  DesBlock fold{};
  bool forward = true;
  for (size_t off = 0; off < input.size(); off += 8) {
    for (size_t i = 0; i < 8; ++i) {
      uint8_t b = input[off + i];
      if (!forward) {
        // Reverse the 7 low bits of the byte, mirroring V4's odd-block flip.
        uint8_t r = 0;
        for (int bit = 0; bit < 8; ++bit) {
          r = static_cast<uint8_t>((r << 1) | ((b >> bit) & 1));
        }
        b = r;
        fold[7 - i] = static_cast<uint8_t>(fold[7 - i] ^ b);
        continue;
      }
      fold[i] = static_cast<uint8_t>(fold[i] ^ b);
    }
    forward = !forward;
  }
  DesKey interim(FixParity(fold));
  // CBC-MAC the whole salted password under the interim key, using the
  // interim key as IV, then fix parity on the result.
  DesBlock mac = CbcMac(interim, interim.bytes(), input);
  DesBlock final_key = FixParity(mac);
  if (IsWeakKey(final_key)) {
    final_key[7] = static_cast<uint8_t>(final_key[7] ^ 0xf0);
    final_key = FixParity(final_key);
  }
  return DesKey(final_key);
}

}  // namespace kcrypto
