#include "src/crypto/str2key.h"

#include <cstring>

#include "src/common/bytes.h"
#include "src/crypto/des_slice.h"
#include "src/crypto/modes.h"

namespace kcrypto {

namespace {

// Reverses the bit order of a 64-bit word (bit 0 <-> bit 63) in six
// swap-and-mask steps.
inline uint64_t ReverseBits64(uint64_t v) {
  v = ((v >> 1) & 0x5555555555555555ull) | ((v & 0x5555555555555555ull) << 1);
  v = ((v >> 2) & 0x3333333333333333ull) | ((v & 0x3333333333333333ull) << 2);
  v = ((v >> 4) & 0x0f0f0f0f0f0f0f0full) | ((v & 0x0f0f0f0f0f0f0f0full) << 4);
  v = ((v >> 8) & 0x00ff00ff00ff00ffull) | ((v & 0x00ff00ff00ff00ffull) << 8);
  v = ((v >> 16) & 0x0000ffff0000ffffull) | ((v & 0x0000ffff0000ffffull) << 16);
  return (v >> 32) | (v << 32);
}

// Fan-fold of the zero-padded salted password: XOR 8-byte groups into the
// accumulator, reversing bit order (and byte order) of every other group —
// the V4 "forward then backward" fold. Reversing the bits of each byte AND
// the order of the bytes is exactly a full 64-bit bit reversal, so each
// backward group is one ReverseBits64 instead of a per-byte loop. This is
// the scalar per-candidate portion of the cracking inner loop. `input` must
// already be zero-padded to a multiple of 8.
DesBlock FanFold(const uint8_t* input, size_t size) {
  uint64_t fold = 0;
  bool forward = true;
  for (size_t off = 0; off < size; off += 8) {
    const uint64_t group = LoadU64BE(input + off);
    fold ^= forward ? group : ReverseBits64(group);
    forward = !forward;
  }
  return U64ToBlock(fold);
}

// Final-key fixup shared by the scalar and batched paths: fix parity, then
// nudge weak keys off the weak-key table.
DesBlock FinalizeKey(const DesBlock& mac) {
  DesBlock final_key = FixParity(mac);
  if (IsWeakKey(final_key)) {
    final_key[7] = static_cast<uint8_t>(final_key[7] ^ 0xf0);
    final_key = FixParity(final_key);
  }
  return final_key;
}

}  // namespace

DesKey StringToKey(std::string_view password, std::string_view salt) {
  kerb::Bytes input = kerb::ToBytes(std::string(password) + std::string(salt));
  if (input.empty()) {
    input.push_back(0);
  }
  // Pad to a multiple of 8 and fan-fold, reversing the bit order of every
  // other 8-byte group (the V4 "forward then backward" fold).
  input.resize((input.size() + 7) & ~size_t{7}, 0);
  DesKey interim(FixParity(FanFold(input.data(), input.size())));
  // CBC-MAC the whole salted password under the interim key, using the
  // interim key as IV, then fix parity on the result.
  DesBlock mac = CbcMac(interim, interim.bytes(), input);
  return DesKey(FinalizeKey(mac));
}

void StringToKeyBatch(const std::string* words, size_t n, std::string_view salt,
                      DesBlock* out) {
  DesSliceKeys ks;
  StringToKeyBatchSchedule(words, n, salt, out, ks);
}

void StringToKeyBatchSchedule(const std::string* words, size_t n, std::string_view salt,
                              DesBlock* out, DesSliceKeys& ks) {
  // Everything expensive runs in wire form. The fan-fold is wire-cheap too:
  // reversing the bits of every byte AND the byte order of a backward group
  // is a full 64-bit bit reversal, which on wires is the renaming
  // w[i] -> w[63-i]; the parity fixups are 8 XOR chains across wires. So
  // the per-lane scalar work is only assembling the padded byte buffers —
  // the 16 DES rounds per CBC-MAC block, the fold, both parity fixes and
  // the output key schedule are all shared across the whole batch.
  if (n > kDesSliceLanes) n = kDesSliceLanes;

  // Salted inputs longer than this take the scalar path for their lane;
  // dictionary candidates are far shorter.
  constexpr size_t kMaxInput = 128;
  constexpr size_t kMaxBlocks = kMaxInput / 8;

  uint64_t mblocks[kMaxBlocks][kDesSliceLanes];
  size_t nblocks[kDesSliceLanes];
  size_t max_blocks = 0;
  uint64_t scalar_lanes[kDesSliceWords] = {};
  bool any_scalar = false;

  for (size_t j = 0; j < n; ++j) {
    uint8_t buf[kMaxInput];
    size_t len = words[j].size() + salt.size();
    if (len == 0) {
      len = 1;
    }
    const size_t padded = (len + 7) & ~size_t{7};
    if (padded > kMaxInput) {
      scalar_lanes[j / 64] |= uint64_t{1} << (j % 64);
      any_scalar = true;
      nblocks[j] = 0;
      continue;
    }
    std::memset(buf, 0, padded);
    std::memcpy(buf, words[j].data(), words[j].size());
    std::memcpy(buf + words[j].size(), salt.data(), salt.size());
    nblocks[j] = padded / 8;
    if (nblocks[j] > max_blocks) {
      max_blocks = nblocks[j];
    }
    for (size_t b = 0; b < nblocks[j]; ++b) {
      mblocks[b][j] = LoadU64BE(buf + 8 * b);
    }
  }

  // Per-block lane masks, noting the blocks where every lane is active —
  // the overwhelmingly common case for dictionary batches, which then skip
  // the chain copy and select entirely.
  DesSliceMask active[kMaxBlocks];
  bool full[kMaxBlocks];
  for (size_t b = 0; b < max_blocks; ++b) {
    size_t covered = 0;
    for (size_t j = 0; j < n; ++j) {
      if (b < nblocks[j]) {
        active[b].Set(j);
        ++covered;
      }
    }
    full[b] = covered == n;
  }

  DesSliceState mw[kMaxBlocks];
  for (size_t b = 0; b < max_blocks; ++b) {
    DesSliceLoad(mblocks[b], n, mw[b]);
  }

  // Fan-fold in wire form: forward groups XOR straight in, backward groups
  // XOR in reversed (wire 63-i), inactive lanes masked off. Then the
  // interim parity fix — the interim key wires double as the CBC-MAC IV.
  DesSliceState interim{};
  for (size_t b = 0; b < max_blocks; ++b) {
    for (int i = 0; i < 64; ++i) {
      const DesSliceWord& src = (b & 1) ? mw[b].w[63 - i] : mw[b].w[i];
      if (full[b]) {
        interim.w[i] ^= src;
      } else {
        for (size_t g = 0; g < kDesSliceWords; ++g) {
          interim.w[i].v[g] ^= src.v[g] & active[b].m[g];
        }
      }
    }
  }
  DesSliceFixParity(interim);

  DesSliceKeys iks;
  DesSliceScheduleFromWires(interim, iks);
  DesSliceState chain = interim;  // IV = interim key bytes
  for (size_t b = 0; b < max_blocks; ++b) {
    if (full[b]) {
      DesSliceXor(mw[b], chain);
      DesSliceEncrypt(iks, chain);
    } else {
      DesSliceState x = chain;
      DesSliceXor(mw[b], x);
      DesSliceEncrypt(iks, x);
      DesSliceSelect(active[b], x, chain);
    }
  }

  // `chain` holds the MACs; the final parity fix happens on wires, then the
  // rare irregular lanes (weak keys, oversize scalar fallbacks) are patched
  // back in before the schedule is taken from the key wires.
  DesSliceFixParity(chain);
  DesBlock fixed[kDesSliceLanes];
  DesSliceStore(chain, fixed, n);
  for (size_t j = 0; j < n; ++j) {
    if (any_scalar && (scalar_lanes[j / 64] >> (j % 64) & 1)) {
      out[j] = StringToKey(words[j], salt).bytes();
      DesSlicePatchLane(j, BlockToU64(out[j]), chain);
    } else if (IsWeakKey(fixed[j])) {
      DesBlock nudged = fixed[j];
      nudged[7] = static_cast<uint8_t>(nudged[7] ^ 0xf0);
      out[j] = FixParity(nudged);
      DesSlicePatchLane(j, BlockToU64(out[j]), chain);
    } else {
      out[j] = fixed[j];
    }
  }
  DesSliceScheduleFromWires(chain, ks);
}

}  // namespace kcrypto
