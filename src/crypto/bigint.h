// Arbitrary-precision unsigned integers for exponential key exchange.
//
// The paper proposes Diffie–Hellman ("exponential key exchange") as an
// optional layer protecting the login dialog from password-guessing
// eavesdroppers, and immediately flags its cost: "LaMacchia and Odlyzko have
// demonstrated that exchanging small numbers is quite insecure, while using
// large ones is expensive in computation time." This module supplies the
// arithmetic for both sides of that trade-off: ModExp for the legitimate
// parties (bench B3 measures its cost vs. modulus size) and the material
// that src/crypto/dlog.h attacks for small moduli.
//
// Representation: little-endian vector of 32-bit limbs, always normalized
// (no high zero limbs; zero is an empty vector). ModExp uses Montgomery
// multiplication (odd moduli), so no general division sits on the hot path.

#ifndef SRC_CRYPTO_BIGINT_H_
#define SRC_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kcrypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  static kerb::Result<BigInt> FromHex(std::string_view hex);
  static BigInt MustFromHex(std::string_view hex);
  // Big-endian byte import/export (the network representation).
  static BigInt FromBytes(kerb::BytesView bytes);
  kerb::Bytes ToBytes() const;
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  size_t BitLength() const;
  bool GetBit(size_t i) const;
  // Low 64 bits (for small-modulus fast paths).
  uint64_t LowU64() const;

  // Comparison: negative / zero / positive like memcmp.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }

  BigInt Add(const BigInt& other) const;
  // Requires *this >= other (asserted).
  BigInt Sub(const BigInt& other) const;
  BigInt Mul(const BigInt& other) const;
  BigInt ShiftLeft(size_t bits) const;
  BigInt ShiftRight(size_t bits) const;

  // Remainder by binary long division. Not on the ModExp hot path.
  BigInt Mod(const BigInt& modulus) const;

  // (base^exponent) mod modulus. Fail-closed: a zero, even, or ≤1 modulus
  // returns kBadFormat instead of asserting, so degenerate DH parameters
  // surface as protocol errors. Delegates to a ModExpCtx built for this one
  // call — callers on a hot path should build the context themselves (or use
  // DhGroup's cached engine) and call ModExpCtx::Pow directly.
  static kerb::Result<BigInt> ModExp(const BigInt& base, const BigInt& exponent,
                                     const BigInt& modulus);

  // The pre-engine bit-by-bit Montgomery ladder, kept as the cross-check
  // oracle for the windowed/fixed-base paths (same pattern as DesKeyRef).
  // Same validation as ModExp.
  static kerb::Result<BigInt> ModExpBinary(const BigInt& base, const BigInt& exponent,
                                           const BigInt& modulus);

  // Internal limb access for the modexp engine (src/crypto/modexp.*).
  const std::vector<uint32_t>& raw_limbs() const { return limbs_; }
  static BigInt FromRawLimbs(std::vector<uint32_t> limbs);

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;  // little-endian
};

}  // namespace kcrypto

#endif  // SRC_CRYPTO_BIGINT_H_
