// Exponential key exchange (Diffie–Hellman, [Diff76]).
//
// The paper proposes DH as "an additional layer of encryption" over the
// login dialog so that "a passive wiretapper cannot accumulate the network
// equivalent of /etc/passwd". src/hardened/dhlogin.h builds that layer on
// this module; bench B3 measures the cost curve the paper worries about.
//
// Two families of parameters are provided:
//   * Standard large groups (the Oakley 768- and 1024-bit primes) — what a
//     careful 1991 deployment would pick.
//   * Small toy groups over word-sized safe primes — what a performance-
//     pressured deployment might pick, and what src/crypto/dlog.h breaks.

#ifndef SRC_CRYPTO_DH_H_
#define SRC_CRYPTO_DH_H_

#include <cstdint>

#include "src/crypto/bigint.h"
#include "src/crypto/des.h"
#include "src/crypto/prng.h"

namespace kcrypto {

struct DhGroup {
  BigInt p;  // prime modulus
  BigInt g;  // generator
  size_t bits() const { return p.BitLength(); }
};

// Oakley Group 1 (RFC 2409): 768-bit prime, generator 2.
const DhGroup& OakleyGroup1();
// Oakley Group 2 (RFC 2409): 1024-bit prime, generator 2.
const DhGroup& OakleyGroup2();

// A small group over a safe prime of roughly `bits` bits (8..62), found by
// deterministic search from the given prng. Generator has order (p-1)/2 or
// p-1. Intended for the insecurity demonstration, not for protection.
DhGroup MakeToyGroup(Prng& prng, int bits);

struct DhKeyPair {
  BigInt private_key;
  BigInt public_key;  // g^private mod p
};

// Private key uniform in [2, p-2]; public = g^x mod p.
DhKeyPair DhGenerate(const DhGroup& group, Prng& prng);

// peer_public^private mod p.
BigInt DhSharedSecret(const DhGroup& group, const BigInt& private_key, const BigInt& peer_public);

// Hashes a shared secret down to a DES key (MD4 truncation, parity fixed,
// weak keys perturbed).
DesKey DhDeriveKey(const BigInt& shared_secret);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_DH_H_
