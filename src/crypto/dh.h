// Exponential key exchange (Diffie–Hellman, [Diff76]).
//
// The paper proposes DH as "an additional layer of encryption" over the
// login dialog so that "a passive wiretapper cannot accumulate the network
// equivalent of /etc/passwd". src/hardened/dhlogin.h builds that layer on
// this module; bench B3 measures the cost curve the paper worries about.
//
// Two families of parameters are provided:
//   * Standard large groups (the Oakley 768- and 1024-bit primes) — what a
//     careful 1991 deployment would pick.
//   * Small toy groups over word-sized safe primes — what a performance-
//     pressured deployment might pick, and what src/crypto/dlog.h breaks.

#ifndef SRC_CRYPTO_DH_H_
#define SRC_CRYPTO_DH_H_

#include <cstdint>
#include <memory>

#include "src/common/result.h"
#include "src/crypto/bigint.h"
#include "src/crypto/des.h"
#include "src/crypto/modexp.h"
#include "src/crypto/prng.h"

namespace kcrypto {

// Cached fast-exponentiation engine for one (p, g) pair: a shared Montgomery
// context for the modulus plus a fixed-base comb table for the generator.
// Built once per group (the factories below do it), immutable afterwards, so
// one engine serves every KDC worker thread concurrently.
class DhEngine {
 public:
  // nullptr for degenerate parameters (zero/even/≤1 modulus) — callers fall
  // back to the slow path or fail closed at the trust boundary.
  static std::shared_ptr<const DhEngine> Create(const BigInt& p, const BigInt& g);

  // g^exponent mod p via the precomputed fixed-base table.
  BigInt PowG(const BigInt& exponent) const { return g_pow_.Pow(exponent); }
  // base^exponent mod p via the sliding-window ladder.
  BigInt Pow(const BigInt& base, const BigInt& exponent) const {
    return ctx_->Pow(base, exponent);
  }
  const ModExpCtx& ctx() const { return *ctx_; }

 private:
  DhEngine(std::shared_ptr<const ModExpCtx> ctx, const BigInt& g, size_t exp_bits)
      : ctx_(ctx), g_pow_(std::move(ctx), g, exp_bits) {}

  std::shared_ptr<const ModExpCtx> ctx_;
  FixedBasePow g_pow_;
};

struct DhGroup {
  BigInt p;  // prime modulus
  BigInt g;  // generator
  // Cached engine; null for hand-built (possibly degenerate) groups. The
  // factories below always populate it.
  std::shared_ptr<const DhEngine> engine;
  size_t bits() const { return p.BitLength(); }
};

// Populates group.engine if absent and the parameters admit one. Returns the
// engine, or nullptr for degenerate parameters.
const DhEngine* EnsureEngine(DhGroup& group);

// Fail-closed trust-boundary check for a peer's public value: rejects
// anything outside [2, p-2] (0, 1, and p-1 leak or fix the shared secret;
// values ≥ p are malformed).
kerb::Status ValidateDhPublic(const DhGroup& group, const BigInt& peer_public);

// Oakley Group 1 (RFC 2409): 768-bit prime, generator 2.
const DhGroup& OakleyGroup1();
// Oakley Group 2 (RFC 2409): 1024-bit prime, generator 2.
const DhGroup& OakleyGroup2();

// A small group over a safe prime of roughly `bits` bits (8..62), found by
// deterministic search from the given prng. Generator has order (p-1)/2 or
// p-1. Intended for the insecurity demonstration, not for protection.
DhGroup MakeToyGroup(Prng& prng, int bits);

struct DhKeyPair {
  BigInt private_key;
  BigInt public_key;  // g^private mod p
};

// Private key uniform in [2, p-2]; public = g^x mod p.
//
// Both functions require a usable group: either group.engine is set (the
// factories guarantee it) or group.p is a valid odd modulus. A hand-built
// engine-less group with a degenerate modulus aborts the process rather
// than silently producing zero publics / an all-zero shared secret —
// untrusted parameters must be rejected at the trust boundary
// (ModExpCtx::Create / ValidateDhPublic) before reaching an exchange.
DhKeyPair DhGenerate(const DhGroup& group, Prng& prng);

// peer_public^private mod p.
BigInt DhSharedSecret(const DhGroup& group, const BigInt& private_key, const BigInt& peer_public);

// Hashes a shared secret down to a DES key (MD4 truncation, parity fixed,
// weak keys perturbed).
DesKey DhDeriveKey(const BigInt& shared_secret);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_DH_H_
