#include "src/hsm/encryption_unit.h"

namespace khsm {

const char* KeyUsageName(KeyUsage usage) {
  switch (usage) {
    case KeyUsage::kLoginKey:
      return "login";
    case KeyUsage::kTicketGranting:
      return "ticket-granting";
    case KeyUsage::kServiceKey:
      return "service";
    case KeyUsage::kSessionKey:
      return "session";
  }
  return "unknown";
}

KeyHandle EncryptionUnit::LoadKey(const kcrypto::DesKey& key, KeyUsage usage) {
  KeyHandle handle = next_handle_++;
  keys_.emplace(handle, StoredKey{key, usage});
  Log(std::string("load-key usage=") + KeyUsageName(usage));
  return handle;
}

KeyHandle EncryptionUnit::GenerateKey(KeyUsage usage) {
  KeyHandle handle = next_handle_++;
  keys_.emplace(handle, StoredKey{prng_.NextDesKey(), usage});
  Log(std::string("generate-key usage=") + KeyUsageName(usage));
  return handle;
}

void EncryptionUnit::DestroyKey(KeyHandle handle) {
  keys_.erase(handle);
  Log("destroy-key");
}

kerb::Result<const EncryptionUnit::StoredKey*> EncryptionUnit::Get(KeyHandle handle,
                                                                   KeyUsage expected) {
  auto it = keys_.find(handle);
  if (it == keys_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound, "no such key handle");
  }
  if (it->second.usage != expected) {
    // The purpose-tag check: "we do not want the login key used to decrypt
    // the arbitrary block of text that just happens to be the
    // ticket-granting ticket."
    Log(std::string("usage-violation want=") + KeyUsageName(expected) + " have=" +
        KeyUsageName(it->second.usage));
    return kerb::MakeError(kerb::ErrorCode::kPolicy, "key usage tag mismatch");
  }
  return &it->second;
}

kerb::Result<KeyHandle> EncryptionUnit::OpenAsReply(KeyHandle login_key,
                                                    kerb::BytesView sealed_reply,
                                                    kerb::Bytes* sealed_tgt_out) {
  auto key = Get(login_key, KeyUsage::kLoginKey);
  if (!key.ok()) {
    return key.error();
  }
  auto plain = krb4::Unseal4(key.value()->key, sealed_reply);
  if (!plain.ok()) {
    return plain.error();
  }
  auto body = krb4::AsReplyBody4::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }
  // Capture the TGS session key internally; the host only sees a handle.
  KeyHandle handle = next_handle_++;
  keys_.emplace(handle,
                StoredKey{kcrypto::DesKey(body.value().tgs_session_key),
                          KeyUsage::kTicketGranting});
  if (sealed_tgt_out != nullptr) {
    *sealed_tgt_out = body.value().sealed_tgt;
  }
  Log("open-as-reply");
  return handle;
}

kerb::Result<kerb::Bytes> EncryptionUnit::MakeAuthenticator(KeyHandle key,
                                                            const krb4::Principal& client,
                                                            uint32_t addr, ksim::Time now) {
  auto stored = Get(key, KeyUsage::kTicketGranting);
  if (!stored.ok()) {
    auto session = Get(key, KeyUsage::kSessionKey);
    if (!session.ok()) {
      return stored.error();
    }
    stored = session;
  }
  krb4::Authenticator4 auth;
  auth.client = client;
  auth.client_addr = addr;
  auth.timestamp = now;
  Log("make-authenticator for " + client.ToString());
  return auth.Seal(stored.value()->key);
}

kerb::Result<KeyHandle> EncryptionUnit::OpenTgsReply(KeyHandle tgs_key,
                                                     kerb::BytesView sealed_reply,
                                                     kerb::Bytes* sealed_ticket_out) {
  auto key = Get(tgs_key, KeyUsage::kTicketGranting);
  if (!key.ok()) {
    return key.error();
  }
  auto plain = krb4::Unseal4(key.value()->key, sealed_reply);
  if (!plain.ok()) {
    return plain.error();
  }
  auto body = krb4::TgsReplyBody4::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }
  KeyHandle handle = next_handle_++;
  keys_.emplace(handle, StoredKey{kcrypto::DesKey(body.value().session_key),
                                  KeyUsage::kSessionKey});
  if (sealed_ticket_out != nullptr) {
    *sealed_ticket_out = body.value().sealed_ticket;
  }
  Log("open-tgs-reply");
  return handle;
}

kerb::Result<TicketInfo> EncryptionUnit::DecryptTicket(KeyHandle service_key,
                                                       kerb::BytesView sealed_ticket) {
  auto key = Get(service_key, KeyUsage::kServiceKey);
  if (!key.ok()) {
    return key.error();
  }
  auto ticket = krb4::Ticket4::Unseal(key.value()->key, sealed_ticket);
  if (!ticket.ok()) {
    return ticket.error();
  }
  KeyHandle handle = next_handle_++;
  keys_.emplace(handle, StoredKey{kcrypto::DesKey(ticket.value().session_key),
                                  KeyUsage::kSessionKey});
  TicketInfo info;
  info.client = ticket.value().client;
  info.client_addr = ticket.value().client_addr;
  info.issued_at = ticket.value().issued_at;
  info.lifetime = ticket.value().lifetime;
  info.session_key = handle;
  Log("decrypt-ticket client=" + info.client.ToString());
  return info;
}

kerb::Result<krb4::Authenticator4> EncryptionUnit::VerifyAuthenticator(
    KeyHandle session_key, kerb::BytesView sealed_auth) {
  auto key = Get(session_key, KeyUsage::kSessionKey);
  if (!key.ok()) {
    return key.error();
  }
  Log("verify-authenticator");
  return krb4::Authenticator4::Unseal(key.value()->key, sealed_auth);
}

kerb::Result<kerb::Bytes> EncryptionUnit::SealData(KeyHandle session_key,
                                                   kerb::BytesView data) {
  auto key = Get(session_key, KeyUsage::kSessionKey);
  if (!key.ok()) {
    return key.error();
  }
  Log("seal-data");
  return krb4::Seal4(key.value()->key, data);
}

kerb::Result<kerb::Bytes> EncryptionUnit::OpenData(KeyHandle session_key,
                                                   kerb::BytesView sealed) {
  auto key = Get(session_key, KeyUsage::kSessionKey);
  if (!key.ok()) {
    return key.error();
  }
  Log("open-data");
  return krb4::Unseal4(key.value()->key, sealed);
}

std::vector<kerb::Bytes> EncryptionUnit::DangerouslyExportAllKeyMaterialForLeakScan() const {
  std::vector<kerb::Bytes> out;
  out.reserve(keys_.size());
  for (const auto& [handle, stored] : keys_) {
    const kcrypto::DesBlock& b = stored.key.bytes();
    out.emplace_back(b.begin(), b.end());
  }
  return out;
}

}  // namespace khsm
