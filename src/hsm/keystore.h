// The keystore and handheld authenticator of the paper's hardware section.
//
// KeyStore: "a secure, reliable repository for a limited amount of
// information. A client of the keystore could package arbitrary data to be
// retained by the keystore, and retrieved at a later date ... Storage and
// retrieval requests would be authenticated by Kerberos tickets, of course.
// Only encrypted transfer (KRB_PRIV) should be employed." Stored blobs are
// sealed under the keystore's master key; transfers are sealed under the
// requester's session key. The keystore never interprets the data.
//
// RandomKeyService: "user workstations are not particularly good sources of
// random keys. The best alternative is to provide a (secure) random number
// service on the network."
//
// HandheldAuthenticator: "a secret key shared between a server and some
// device in the user's possession" — answers a challenge R with {R}K.

#ifndef SRC_HSM_KEYSTORE_H_
#define SRC_HSM_KEYSTORE_H_

#include <map>
#include <string>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/crypto/prng.h"
#include "src/krb4/krbpriv.h"
#include "src/sim/network.h"

namespace khsm {

class KeyStore {
 public:
  KeyStore(ksim::Network* net, const ksim::NetAddress& addr,
           const kcrypto::DesKey& master_key, uint64_t seed);

  // Client-side helpers: ship/retrieve a blob over a KRB_PRIV channel keyed
  // by `session_key` (obtained via a normal Kerberos exchange).
  static kerb::Status Store(ksim::Network* net, const ksim::NetAddress& client,
                            const ksim::NetAddress& keystore,
                            const kcrypto::DesKey& session_key, const std::string& name,
                            kerb::BytesView blob);
  static kerb::Result<kerb::Bytes> Fetch(ksim::Network* net, const ksim::NetAddress& client,
                                         const ksim::NetAddress& keystore,
                                         const kcrypto::DesKey& session_key,
                                         const std::string& name);

  // The session key a requester must hold. In a full deployment this comes
  // from a Kerberos AP exchange with the keystore service; the simulation
  // provisions it directly.
  const kcrypto::DesKey& service_session_key() const { return session_key_; }

  size_t entry_count() const { return blobs_.size(); }

  // The master key never leaves; stored blobs are sealed with it. Exposed
  // only to the leak-scan experiment, mirroring the EncryptionUnit oracle.
  kerb::Bytes MasterKeyForLeakScan() const;

 private:
  kcrypto::DesKey master_key_;
  kcrypto::DesKey session_key_;
  std::map<std::string, kerb::Bytes> blobs_;  // name → sealed blob
};

// A network service handing out fresh random DES keys over KRB_PRIV.
class RandomKeyService {
 public:
  RandomKeyService(ksim::Network* net, const ksim::NetAddress& addr,
                   const kcrypto::DesKey& session_key, uint64_t seed);

  static kerb::Result<kcrypto::DesKey> Request(ksim::Network* net,
                                               const ksim::NetAddress& client,
                                               const ksim::NetAddress& service,
                                               const kcrypto::DesKey& session_key);

 private:
  kcrypto::DesKey session_key_;
  kcrypto::Prng prng_;
};

// Provisioning glue for the paper's deployment story: "Host-owned keys —
// service keys, or the keys that root would use to do NFS mounts — should
// be loaded via a Kerberos-authenticated service resident in the encryption
// unit" and "keys be kept in volatile memory, and downloaded from a secure
// keystore on request, via an encryption-protected channel."
//
// Fetches the named 8-byte service key from the keystore over KRB_PRIV and
// loads it straight into the unit, returning the handle. The key transits
// the host for the minimal moment the paper accepts.
class EncryptionUnit;  // forward declared in encryption_unit.h

kerb::Result<uint64_t> ProvisionServiceKeyFromKeystore(
    ksim::Network* net, const ksim::NetAddress& host, const ksim::NetAddress& keystore,
    const kcrypto::DesKey& keystore_session_key, const std::string& key_name,
    EncryptionUnit* unit);

// The user's pocket device.
class HandheldAuthenticator {
 public:
  explicit HandheldAuthenticator(const kcrypto::DesKey& user_key) : key_(user_key) {}

  // Displays {R}K for the challenge R the login prompt shows.
  uint64_t Respond(uint64_t challenge) const { return key_.EncryptBlock(challenge); }

 private:
  kcrypto::DesKey key_;
};

}  // namespace khsm

#endif  // SRC_HSM_KEYSTORE_H_
