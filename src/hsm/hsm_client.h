// A Kerberos V4 client whose cryptography lives entirely inside the
// encryption unit.
//
// The contrast with krb4::Client4: that client's credential cache holds raw
// session keys ("of necessity, they are stored in some area accessible to
// root"). This one holds only opaque key handles and sealed blobs; every
// seal/unseal happens inside the unit, so a host compromise can *misuse*
// the unit while the session lasts ("we consider such temporary breaches of
// security to be far less serious than the compromise of a key") but can
// never extract key material.

#ifndef SRC_HSM_HSM_CLIENT_H_
#define SRC_HSM_HSM_CLIENT_H_

#include <map>
#include <optional>

#include "src/hsm/encryption_unit.h"
#include "src/sim/network.h"

namespace khsm {

class HsmClient4 {
 public:
  HsmClient4(ksim::Network* net, const ksim::NetAddress& self, ksim::HostClock clock,
             krb4::Principal user, ksim::NetAddress as_addr, ksim::NetAddress tgs_addr,
             EncryptionUnit* unit);

  // `login_key` must already be loaded in the unit with KeyUsage::kLoginKey
  // (the one unavoidable moment of exposure the paper discusses).
  kerb::Status Login(KeyHandle login_key, ksim::Duration lifetime = 8 * ksim::kHour);

  // Full AP exchange with mutual authentication; returns the application
  // reply. No key bytes ever enter this object.
  kerb::Result<kerb::Bytes> CallService(const ksim::NetAddress& service_addr,
                                        const krb4::Principal& service,
                                        kerb::BytesView app_data = {});

  void Logout();
  bool logged_in() const { return tgs_handle_.has_value(); }

  // Everything this client has ever stored on the host side — the attack
  // surface a host compromise can read. Scanned by tests for key octets.
  std::vector<kerb::Bytes> HostResidentState() const;

 private:
  struct HandleCreds {
    KeyHandle session;
    kerb::Bytes sealed_ticket;
  };

  kerb::Result<HandleCreds> GetServiceTicket(const krb4::Principal& service);

  ksim::Network* net_;
  ksim::NetAddress self_;
  ksim::HostClock clock_;
  krb4::Principal user_;
  ksim::NetAddress as_addr_;
  ksim::NetAddress tgs_addr_;
  EncryptionUnit* unit_;

  std::optional<KeyHandle> tgs_handle_;
  kerb::Bytes sealed_tgt_;
  std::map<krb4::Principal, HandleCreds> service_creds_;
};

}  // namespace khsm

#endif  // SRC_HSM_HSM_CLIENT_H_
