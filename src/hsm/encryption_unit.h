// The host encryption unit of the paper's "Kerberos Hardware Design
// Criteria" section, modelled at its API contract.
//
// Design rules implemented exactly as stated:
//   * "The primary goal is to perform cryptographic operations without
//     exposing any keys to compromise" — no API returns key octets; session
//     keys extracted from tickets live inside the unit and are referenced
//     by opaque handles.
//   * "The encryption box itself must understand the Kerberos protocols" —
//     tickets are decrypted and *parsed* internally; only non-key metadata
//     leaves the box.
//   * "Keys should be tagged with their purpose. A login key should be used
//     only to decrypt the ticket-granting ticket" — every stored key has a
//     KeyUsage tag and every operation checks it.
//   * "Using a separate unit allows us to create untamperable logs" — an
//     append-only operation log.
//
// Experiment E14 drives an adversarial sweep over this API and scans every
// output for stored key material.

#ifndef SRC_HSM_ENCRYPTION_UNIT_H_
#define SRC_HSM_ENCRYPTION_UNIT_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/crypto/prng.h"
#include "src/krb4/messages.h"
#include "src/sim/clock.h"

namespace khsm {

enum class KeyUsage {
  kLoginKey,          // decrypts AS replies only
  kTicketGranting,    // TGS session key: seals TGS authenticators, opens TGS replies
  kServiceKey,        // a server's long-term key: validates incoming tickets
  kSessionKey,        // per-service session key: authenticators + data sealing
};

const char* KeyUsageName(KeyUsage usage);

// Opaque reference to a key held inside the unit.
using KeyHandle = uint64_t;

struct TicketInfo {
  krb4::Principal client;
  uint32_t client_addr = 0;
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
  KeyHandle session_key;  // handle, never the key itself
};

class EncryptionUnit {
 public:
  explicit EncryptionUnit(uint64_t seed) : prng_(seed) {}

  // -- key loading ---------------------------------------------------------
  // User keys "must travel through the host" (period of exposure minimized);
  // service keys are meant to arrive via the keystore channel.
  KeyHandle LoadKey(const kcrypto::DesKey& key, KeyUsage usage);

  // Generates a key inside the unit ("a hardware random number generator
  // on-board") — the key never exists outside.
  KeyHandle GenerateKey(KeyUsage usage);

  // Erases a key (logout).
  void DestroyKey(KeyHandle handle);

  // -- protocol operations -------------------------------------------------
  // Opens an AS reply with a login key; the TGS session key inside is
  // captured into the unit and returned as a handle.
  kerb::Result<KeyHandle> OpenAsReply(KeyHandle login_key, kerb::BytesView sealed_reply,
                                      kerb::Bytes* sealed_tgt_out);

  // Builds a sealed authenticator under a ticket-granting or session key.
  kerb::Result<kerb::Bytes> MakeAuthenticator(KeyHandle key, const krb4::Principal& client,
                                              uint32_t addr, ksim::Time now);

  // Opens a TGS reply with the TGS session key; captures the new service
  // session key and hands back its handle plus the sealed service ticket.
  kerb::Result<KeyHandle> OpenTgsReply(KeyHandle tgs_key, kerb::BytesView sealed_reply,
                                       kerb::Bytes* sealed_ticket_out);

  // Server side: validates an incoming ticket with a service key; the
  // embedded session key becomes a handle, the metadata is returned.
  kerb::Result<TicketInfo> DecryptTicket(KeyHandle service_key, kerb::BytesView sealed_ticket);

  // Verifies an authenticator against a session-key handle.
  kerb::Result<krb4::Authenticator4> VerifyAuthenticator(KeyHandle session_key,
                                                         kerb::BytesView sealed_auth);

  // Data protection under a session key.
  kerb::Result<kerb::Bytes> SealData(KeyHandle session_key, kerb::BytesView data);
  kerb::Result<kerb::Bytes> OpenData(KeyHandle session_key, kerb::BytesView sealed);

  // -- introspection (safe) --------------------------------------------------
  size_t key_count() const { return keys_.size(); }
  const std::vector<std::string>& operation_log() const { return log_; }

  // FOR THE LEAKAGE EXPERIMENT ONLY: the raw key bytes the adversary hunts
  // for. A real unit has no such call; the experiment uses it as the oracle
  // that defines what must never appear in any output.
  std::vector<kerb::Bytes> DangerouslyExportAllKeyMaterialForLeakScan() const;

 private:
  struct StoredKey {
    kcrypto::DesKey key;
    KeyUsage usage;
  };

  kerb::Result<const StoredKey*> Get(KeyHandle handle, KeyUsage expected);
  void Log(const std::string& entry) { log_.push_back(entry); }

  kcrypto::Prng prng_;
  std::map<KeyHandle, StoredKey> keys_;
  KeyHandle next_handle_ = 1;
  std::vector<std::string> log_;
};

}  // namespace khsm

#endif  // SRC_HSM_ENCRYPTION_UNIT_H_
