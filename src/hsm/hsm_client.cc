#include "src/hsm/hsm_client.h"

#include "src/encoding/io.h"

namespace khsm {

HsmClient4::HsmClient4(ksim::Network* net, const ksim::NetAddress& self,
                       ksim::HostClock clock, krb4::Principal user,
                       ksim::NetAddress as_addr, ksim::NetAddress tgs_addr,
                       EncryptionUnit* unit)
    : net_(net),
      self_(self),
      clock_(clock),
      user_(std::move(user)),
      as_addr_(as_addr),
      tgs_addr_(tgs_addr),
      unit_(unit) {}

kerb::Status HsmClient4::Login(KeyHandle login_key, ksim::Duration lifetime) {
  krb4::AsRequest4 req;
  req.client = user_;
  req.service_realm = user_.realm;
  req.lifetime = lifetime;
  auto reply = net_->Call(self_, as_addr_, Frame4(krb4::MsgType::kAsRequest, req.Encode()));
  if (!reply.ok()) {
    return reply.error();
  }
  auto framed = krb4::Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != krb4::MsgType::kAsReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AS reply");
  }
  auto handle = unit_->OpenAsReply(login_key, framed.value().second, &sealed_tgt_);
  if (!handle.ok()) {
    return handle.error();
  }
  tgs_handle_ = handle.value();
  return kerb::Status::Ok();
}

kerb::Result<HsmClient4::HandleCreds> HsmClient4::GetServiceTicket(
    const krb4::Principal& service) {
  if (!tgs_handle_.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "not logged in");
  }
  auto cached = service_creds_.find(service);
  if (cached != service_creds_.end()) {
    return cached->second;
  }

  auto auth = unit_->MakeAuthenticator(*tgs_handle_, user_, self_.host, clock_.Now());
  if (!auth.ok()) {
    return auth.error();
  }
  krb4::TgsRequest4 req;
  req.service = service;
  req.sealed_tgt = sealed_tgt_;
  req.sealed_auth = auth.value();
  req.lifetime = 8 * ksim::kHour;
  auto reply =
      net_->Call(self_, tgs_addr_, Frame4(krb4::MsgType::kTgsRequest, req.Encode()));
  if (!reply.ok()) {
    return reply.error();
  }
  auto framed = krb4::Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != krb4::MsgType::kTgsReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected TGS reply");
  }
  HandleCreds creds;
  auto handle = unit_->OpenTgsReply(*tgs_handle_, framed.value().second,
                                    &creds.sealed_ticket);
  if (!handle.ok()) {
    return handle.error();
  }
  creds.session = handle.value();
  service_creds_[service] = creds;
  return creds;
}

kerb::Result<kerb::Bytes> HsmClient4::CallService(const ksim::NetAddress& service_addr,
                                                  const krb4::Principal& service,
                                                  kerb::BytesView app_data) {
  auto creds = GetServiceTicket(service);
  if (!creds.ok()) {
    return creds.error();
  }
  ksim::Time auth_time = clock_.Now();
  auto auth = unit_->MakeAuthenticator(creds.value().session, user_, self_.host, auth_time);
  if (!auth.ok()) {
    return auth.error();
  }
  krb4::ApRequest4 req;
  req.sealed_ticket = creds.value().sealed_ticket;
  req.sealed_auth = auth.value();
  req.want_mutual = true;
  req.app_data = kerb::Bytes(app_data.begin(), app_data.end());
  auto reply =
      net_->Call(self_, service_addr, Frame4(krb4::MsgType::kApRequest, req.Encode()));
  if (!reply.ok()) {
    return reply.error();
  }
  auto framed = krb4::Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != krb4::MsgType::kApReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AP reply");
  }
  kenc::Reader r(framed.value().second);
  auto mutual = r.GetLengthPrefixed();
  if (!mutual.ok()) {
    return mutual.error();
  }
  // Verify {timestamp + 1} inside the unit: OpenData returns the plaintext
  // (not key material); the timestamp check happens host-side.
  auto opened = unit_->OpenData(creds.value().session, mutual.value());
  if (!opened.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "mutual-auth reply undecryptable");
  }
  kenc::Reader mr(opened.value());
  auto ts = mr.GetU64();
  if (!ts.ok() || ts.value() != static_cast<uint64_t>(auth_time) + 1) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "mutual-auth timestamp mismatch");
  }
  return r.Rest();
}

void HsmClient4::Logout() {
  if (tgs_handle_.has_value()) {
    unit_->DestroyKey(*tgs_handle_);
  }
  for (const auto& [service, creds] : service_creds_) {
    unit_->DestroyKey(creds.session);
  }
  tgs_handle_.reset();
  sealed_tgt_.clear();
  service_creds_.clear();
}

std::vector<kerb::Bytes> HsmClient4::HostResidentState() const {
  std::vector<kerb::Bytes> state;
  state.push_back(sealed_tgt_);
  for (const auto& [service, creds] : service_creds_) {
    state.push_back(creds.sealed_ticket);
    // Handles are host-resident too; include their raw representation.
    kenc::Writer w;
    w.PutU64(creds.session);
    state.push_back(w.Take());
  }
  return state;
}

}  // namespace khsm
