#include "src/hsm/keystore.h"

#include "src/encoding/io.h"
#include "src/hsm/encryption_unit.h"
#include "src/krb4/messages.h"

namespace khsm {

namespace {

// Request framing inside the KRB_PRIV payload.
constexpr uint8_t kOpStore = 1;
constexpr uint8_t kOpFetch = 2;

}  // namespace

KeyStore::KeyStore(ksim::Network* net, const ksim::NetAddress& addr,
                   const kcrypto::DesKey& master_key, uint64_t seed)
    : master_key_(master_key), session_key_(kcrypto::Prng(seed).NextDesKey()) {
  net->Bind(addr, [this](const ksim::Message& msg) -> kerb::Result<kerb::Bytes> {
    auto priv = krb4::PrivMessage4::Unseal(session_key_, msg.payload);
    if (!priv.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "keystore: bad KRB_PRIV");
    }
    kenc::Reader r(priv.value().data);
    auto op = r.GetU8();
    auto name = r.GetString();
    if (!op.ok() || !name.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "keystore: bad request");
    }
    krb4::PrivMessage4 reply;
    reply.direction = 1;
    if (op.value() == kOpStore) {
      auto blob = r.GetLengthPrefixed();
      if (!blob.ok()) {
        return blob.error();
      }
      // Seal at rest under the master key; the keystore never interprets it.
      blobs_[name.value()] = krb4::Seal4(master_key_, blob.value());
      reply.data = kerb::ToBytes("stored");
    } else if (op.value() == kOpFetch) {
      auto it = blobs_.find(name.value());
      if (it == blobs_.end()) {
        return kerb::MakeError(kerb::ErrorCode::kNotFound, "keystore: no such entry");
      }
      auto blob = krb4::Unseal4(master_key_, it->second);
      if (!blob.ok()) {
        return blob.error();
      }
      reply.data = blob.value();
    } else {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "keystore: unknown op");
    }
    return reply.Seal(session_key_);
  });
}

kerb::Status KeyStore::Store(ksim::Network* net, const ksim::NetAddress& client,
                             const ksim::NetAddress& keystore,
                             const kcrypto::DesKey& session_key, const std::string& name,
                             kerb::BytesView blob) {
  kenc::Writer w;
  w.PutU8(kOpStore);
  w.PutString(name);
  w.PutLengthPrefixed(blob);
  krb4::PrivMessage4 req;
  req.data = w.Take();
  auto reply = net->Call(client, keystore, req.Seal(session_key));
  if (!reply.ok()) {
    return reply.error();
  }
  auto opened = krb4::PrivMessage4::Unseal(session_key, reply.value());
  if (!opened.ok()) {
    return opened.error();
  }
  return kerb::Status::Ok();
}

kerb::Result<kerb::Bytes> KeyStore::Fetch(ksim::Network* net, const ksim::NetAddress& client,
                                          const ksim::NetAddress& keystore,
                                          const kcrypto::DesKey& session_key,
                                          const std::string& name) {
  kenc::Writer w;
  w.PutU8(kOpFetch);
  w.PutString(name);
  krb4::PrivMessage4 req;
  req.data = w.Take();
  auto reply = net->Call(client, keystore, req.Seal(session_key));
  if (!reply.ok()) {
    return reply.error();
  }
  auto opened = krb4::PrivMessage4::Unseal(session_key, reply.value());
  if (!opened.ok()) {
    return opened.error();
  }
  return opened.value().data;
}

kerb::Bytes KeyStore::MasterKeyForLeakScan() const {
  const kcrypto::DesBlock& b = master_key_.bytes();
  return kerb::Bytes(b.begin(), b.end());
}

RandomKeyService::RandomKeyService(ksim::Network* net, const ksim::NetAddress& addr,
                                   const kcrypto::DesKey& session_key, uint64_t seed)
    : session_key_(session_key), prng_(seed) {
  net->Bind(addr, [this](const ksim::Message& msg) -> kerb::Result<kerb::Bytes> {
    auto priv = krb4::PrivMessage4::Unseal(session_key_, msg.payload);
    if (!priv.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "randomkey: bad KRB_PRIV");
    }
    krb4::PrivMessage4 reply;
    reply.direction = 1;
    const kcrypto::DesBlock key = prng_.NextDesKey().bytes();
    reply.data = kerb::Bytes(key.begin(), key.end());
    return reply.Seal(session_key_);
  });
}

kerb::Result<uint64_t> ProvisionServiceKeyFromKeystore(
    ksim::Network* net, const ksim::NetAddress& host, const ksim::NetAddress& keystore,
    const kcrypto::DesKey& keystore_session_key, const std::string& key_name,
    EncryptionUnit* unit) {
  auto blob = KeyStore::Fetch(net, host, keystore, keystore_session_key, key_name);
  if (!blob.ok()) {
    return blob.error();
  }
  if (blob.value().size() != 8) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "keystore blob is not a DES key");
  }
  kcrypto::DesBlock block;
  std::copy(blob.value().begin(), blob.value().end(), block.begin());
  KeyHandle handle = unit->LoadKey(kcrypto::DesKey(block), KeyUsage::kServiceKey);
  // The host-side copy existed only in this frame; wipe it.
  kerb::SecureWipe(blob.value());
  block.fill(0);
  return handle;
}

kerb::Result<kcrypto::DesKey> RandomKeyService::Request(ksim::Network* net,
                                                        const ksim::NetAddress& client,
                                                        const ksim::NetAddress& service,
                                                        const kcrypto::DesKey& session_key) {
  krb4::PrivMessage4 req;
  req.data = kerb::ToBytes("new-key");
  auto reply = net->Call(client, service, req.Seal(session_key));
  if (!reply.ok()) {
    return reply.error();
  }
  auto opened = krb4::PrivMessage4::Unseal(session_key, reply.value());
  if (!opened.ok()) {
    return opened.error();
  }
  if (opened.value().data.size() != 8) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "randomkey: bad key size");
  }
  kcrypto::DesBlock block;
  std::copy(opened.value().data.begin(), opened.value().data.end(), block.begin());
  return kcrypto::DesKey(block);
}

}  // namespace khsm
