#include "src/encoding/tlv.h"

#include <cassert>

#include "src/encoding/io.h"

namespace kenc {

TlvFieldWriter::TlvFieldWriter(Writer& w, uint16_t type, uint16_t field_count)
    : w_(w), declared_(field_count) {
  w_.PutU16(type);
  w_.PutU16(field_count);
}

TlvFieldWriter::~TlvFieldWriter() { assert(added_ == declared_); }

void TlvFieldWriter::Header(uint16_t tag, size_t len) {
  assert(static_cast<int32_t>(tag) > last_tag_);
  last_tag_ = tag;
  ++added_;
  w_.PutU16(tag);
  w_.PutU32(static_cast<uint32_t>(len));
}

void TlvFieldWriter::AddU32(uint16_t tag, uint32_t value) {
  Header(tag, 4);
  w_.PutU32(value);
}

void TlvFieldWriter::AddU64(uint16_t tag, uint64_t value) {
  Header(tag, 8);
  w_.PutU64(value);
}

void TlvFieldWriter::AddString(uint16_t tag, std::string_view value) {
  // Raw characters, no length prefix — the TLV header already carries the
  // length (matches TlvMessage, which stores strings as bare bytes).
  Header(tag, value.size());
  w_.PutBytes(kerb::BytesView(reinterpret_cast<const uint8_t*>(value.data()), value.size()));
}

void TlvFieldWriter::AddBytes(uint16_t tag, kerb::BytesView value) {
  Header(tag, value.size());
  w_.PutBytes(value);
}

void TlvMessage::SetU32(uint16_t tag, uint32_t value) {
  Writer w;
  w.PutU32(value);
  fields_[tag] = w.Take();
}

void TlvMessage::SetU64(uint16_t tag, uint64_t value) {
  Writer w;
  w.PutU64(value);
  fields_[tag] = w.Take();
}

void TlvMessage::SetString(uint16_t tag, std::string_view value) {
  fields_[tag] = kerb::ToBytes(value);
}

void TlvMessage::SetBytes(uint16_t tag, kerb::BytesView value) {
  fields_[tag] = kerb::Bytes(value.begin(), value.end());
}

kerb::Result<uint32_t> TlvMessage::GetU32(uint16_t tag) const {
  auto it = fields_.find(tag);
  if (it == fields_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "missing u32 field");
  }
  if (it->second.size() != 4) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "u32 field has wrong size");
  }
  Reader r(it->second);
  return r.GetU32();
}

kerb::Result<uint64_t> TlvMessage::GetU64(uint16_t tag) const {
  auto it = fields_.find(tag);
  if (it == fields_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "missing u64 field");
  }
  if (it->second.size() != 8) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "u64 field has wrong size");
  }
  Reader r(it->second);
  return r.GetU64();
}

kerb::Result<std::string> TlvMessage::GetString(uint16_t tag) const {
  auto it = fields_.find(tag);
  if (it == fields_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "missing string field");
  }
  return kerb::ToString(it->second);
}

kerb::Result<kerb::Bytes> TlvMessage::GetBytes(uint16_t tag) const {
  auto it = fields_.find(tag);
  if (it == fields_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "missing bytes field");
  }
  return it->second;
}

std::optional<uint32_t> TlvMessage::GetOptionalU32(uint16_t tag) const {
  if (!Has(tag)) {
    return std::nullopt;
  }
  auto r = GetU32(tag);
  return r.ok() ? std::optional<uint32_t>(r.value()) : std::nullopt;
}

std::optional<kerb::Bytes> TlvMessage::GetOptionalBytes(uint16_t tag) const {
  if (!Has(tag)) {
    return std::nullopt;
  }
  return fields_.at(tag);
}

kerb::Bytes TlvMessage::Encode() const {
  Writer w;
  AppendTo(w);
  return w.Take();
}

void TlvMessage::AppendTo(Writer& w) const {
  w.PutU16(type_);
  w.PutU16(static_cast<uint16_t>(fields_.size()));
  for (const auto& [tag, value] : fields_) {
    w.PutU16(tag);
    w.PutU32(static_cast<uint32_t>(value.size()));
    w.PutBytes(value);
  }
}

void TlvMessage::EncodeInto(kerb::Bytes& out) const {
  Writer w(&out);
  AppendTo(w);
}

kerb::Result<TlvMessage> TlvMessage::Decode(kerb::BytesView data) {
  Reader r(data);
  auto type = r.GetU16();
  if (!type.ok()) {
    return type.error();
  }
  auto count = r.GetU16();
  if (!count.ok()) {
    return count.error();
  }
  TlvMessage msg(type.value());
  for (uint16_t i = 0; i < count.value(); ++i) {
    auto tag = r.GetU16();
    if (!tag.ok()) {
      return tag.error();
    }
    auto len = r.GetU32();
    if (!len.ok()) {
      return len.error();
    }
    auto value = r.GetBytes(len.value());
    if (!value.ok()) {
      return value.error();
    }
    if (msg.Has(tag.value())) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "duplicate field tag");
    }
    msg.fields_[tag.value()] = std::move(value).value();
  }
  if (!r.AtEnd()) {
    // Trailing bytes mean the message was spliced or padded with garbage —
    // exactly the ambiguity a standard encoding exists to rule out.
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "trailing bytes after message");
  }
  return msg;
}

kerb::Result<TlvMessage> TlvMessage::DecodeExpecting(uint16_t expected_type,
                                                     kerb::BytesView data) {
  auto msg = Decode(data);
  if (!msg.ok()) {
    return msg;
  }
  if (msg.value().type() != expected_type) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "message type mismatch");
  }
  return msg;
}

}  // namespace kenc
