// Tagged message encoding for the Version 5 Draft 3 model.
//
// The paper's recommendation (b): "Use a standard message encoding, such as
// ASN.1, which includes identification of the message type within the
// encrypted data." This module is a compact DER-flavoured tag-length-value
// encoding providing exactly the two properties the paper derives from
// ASN.1:
//   1. every message carries its type, so "a ticket should never be
//      interpretable as an authenticator, or vice versa";
//   2. every message carries its length, so "it is no longer possible for
//      an attacker to truncate a message and present the shortened form as
//      a valid encrypted message".
//
// Messages are: [msg_type u16][field_count u16] followed by fields, each
// [tag u16][len u32][value]. Unknown tags are preserved; duplicate tags are
// rejected at decode time (ambiguity is how cut-and-paste attacks start).

#ifndef SRC_ENCODING_TLV_H_
#define SRC_ENCODING_TLV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kenc {

class Writer;

class TlvMessage {
 public:
  TlvMessage() = default;
  explicit TlvMessage(uint16_t type) : type_(type) {}

  uint16_t type() const { return type_; }

  // Field setters (overwrite on duplicate tag).
  void SetU32(uint16_t tag, uint32_t value);
  void SetU64(uint16_t tag, uint64_t value);
  void SetString(uint16_t tag, std::string_view value);
  void SetBytes(uint16_t tag, kerb::BytesView value);

  bool Has(uint16_t tag) const { return fields_.count(tag) != 0; }
  void Remove(uint16_t tag) { fields_.erase(tag); }
  size_t field_count() const { return fields_.size(); }

  // Field getters; kBadFormat if missing or mis-sized.
  kerb::Result<uint32_t> GetU32(uint16_t tag) const;
  kerb::Result<uint64_t> GetU64(uint16_t tag) const;
  kerb::Result<std::string> GetString(uint16_t tag) const;
  kerb::Result<kerb::Bytes> GetBytes(uint16_t tag) const;

  // Optional-field convenience: nullopt when absent, error only on mis-size.
  std::optional<uint32_t> GetOptionalU32(uint16_t tag) const;
  std::optional<kerb::Bytes> GetOptionalBytes(uint16_t tag) const;

  kerb::Bytes Encode() const;
  // Appends the encoding to an in-progress Writer / reusable buffer — the
  // allocation-free variants of Encode() used by the KDC serving path.
  void AppendTo(Writer& w) const;
  void EncodeInto(kerb::Bytes& out) const;
  static kerb::Result<TlvMessage> Decode(kerb::BytesView data);

  // Decode that additionally requires the message type to match — the
  // paper's "identification of the message type within the encrypted data".
  static kerb::Result<TlvMessage> DecodeExpecting(uint16_t expected_type, kerb::BytesView data);

  bool operator==(const TlvMessage& other) const {
    return type_ == other.type_ && fields_ == other.fields_;
  }

 private:
  uint16_t type_ = 0;
  std::map<uint16_t, kerb::Bytes> fields_;
};

// Streams a TLV message straight into a Writer, without the field map a
// TlvMessage carries. Produces byte-identical output to building a
// TlvMessage and encoding it PROVIDED the caller adds fields in strictly
// ascending tag order (the map's iteration order) and `field_count` matches
// the number of Add calls — both asserted in debug builds. This is the
// encode path for messages the KDC emits per request.
class TlvFieldWriter {
 public:
  TlvFieldWriter(Writer& w, uint16_t type, uint16_t field_count);
  ~TlvFieldWriter();

  void AddU32(uint16_t tag, uint32_t value);
  void AddU64(uint16_t tag, uint64_t value);
  void AddString(uint16_t tag, std::string_view value);
  void AddBytes(uint16_t tag, kerb::BytesView value);

 private:
  void Header(uint16_t tag, size_t len);

  Writer& w_;
  uint16_t declared_ = 0;
  uint16_t added_ = 0;
  int32_t last_tag_ = -1;
};

}  // namespace kenc

#endif  // SRC_ENCODING_TLV_H_
