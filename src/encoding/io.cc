#include "src/encoding/io.h"

namespace kenc {

void Writer::PutU16(uint16_t v) {
  out_->push_back(static_cast<uint8_t>(v >> 8));
  out_->push_back(static_cast<uint8_t>(v & 0xff));
}

void Writer::PutU32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out_->push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

void Writer::PutU64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out_->push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

void Writer::PutLengthPrefixed(kerb::BytesView b) {
  PutU32(static_cast<uint32_t>(b.size()));
  PutBytes(b);
}

void Writer::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->insert(out_->end(), s.begin(), s.end());
}

kerb::Result<uint8_t> Reader::GetU8() {
  if (remaining() < 1) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated u8");
  }
  return data_[pos_++];
}

kerb::Result<uint16_t> Reader::GetU16() {
  if (remaining() < 2) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated u16");
  }
  uint16_t v = static_cast<uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

kerb::Result<uint32_t> Reader::GetU32() {
  if (remaining() < 4) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | data_[pos_ + i];
  }
  pos_ += 4;
  return v;
}

kerb::Result<uint64_t> Reader::GetU64() {
  if (remaining() < 8) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | data_[pos_ + i];
  }
  pos_ += 8;
  return v;
}

kerb::Result<kerb::Bytes> Reader::GetBytes(size_t n) {
  if (remaining() < n) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated byte field");
  }
  kerb::Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

kerb::Result<kerb::Bytes> Reader::GetLengthPrefixed() {
  auto len = GetU32();
  if (!len.ok()) {
    return len.error();
  }
  if (remaining() < len.value()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "length prefix exceeds buffer");
  }
  return GetBytes(len.value());
}

kerb::Result<std::string> Reader::GetString() {
  auto bytes = GetLengthPrefixed();
  if (!bytes.ok()) {
    return bytes.error();
  }
  return kerb::ToString(bytes.value());
}

}  // namespace kenc
