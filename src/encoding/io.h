// Byte-oriented writer/reader for protocol messages.
//
// Kerberos V4 messages are bare concatenations of fields in a fixed order —
// the style whose security consequences the paper examines ("the order of
// concatenation of message fields can have security-critical
// implications"). The V4 structures in src/krb4 serialize directly with
// these primitives. The V5 model instead layers the tagged encoding of
// src/encoding/tlv.h on top.
//
// All integers are big-endian on the wire.

#ifndef SRC_ENCODING_IO_H_
#define SRC_ENCODING_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kenc {

class Writer {
 public:
  // Owns its output buffer; Take() moves it out.
  Writer() = default;

  // Appends into a caller-owned buffer instead — the allocation-free serving
  // path hands the same buffer back every request, so after warm-up the
  // capacity is already there and no encode allocates. The buffer is cleared
  // (capacity kept) on construction; it is NOT valid to call Take().
  explicit Writer(kerb::Bytes* reuse) : out_(reuse) { out_->clear(); }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutBytes(kerb::BytesView b) { kerb::Append(*out_, b); }
  // 32-bit length followed by the raw bytes.
  void PutLengthPrefixed(kerb::BytesView b);
  // Length-prefixed UTF-8 string.
  void PutString(std::string_view s);

  size_t size() const { return out_->size(); }
  kerb::Bytes Take() { return std::move(owned_); }
  const kerb::Bytes& Peek() const { return *out_; }

 private:
  kerb::Bytes owned_;
  kerb::Bytes* out_ = &owned_;
};

class Reader {
 public:
  explicit Reader(kerb::BytesView data) : data_(data) {}

  kerb::Result<uint8_t> GetU8();
  kerb::Result<uint16_t> GetU16();
  kerb::Result<uint32_t> GetU32();
  kerb::Result<uint64_t> GetU64();
  kerb::Result<kerb::Bytes> GetBytes(size_t n);
  kerb::Result<kerb::Bytes> GetLengthPrefixed();
  kerb::Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  // Remaining bytes without consuming them.
  kerb::Bytes Rest() const { return kerb::Bytes(data_.begin() + pos_, data_.end()); }

 private:
  kerb::BytesView data_;
  size_t pos_ = 0;
};

}  // namespace kenc

#endif  // SRC_ENCODING_IO_H_
