#include "src/krb5/enclayer.h"

#include "src/crypto/modes.h"
#include "src/encoding/io.h"
#include "src/obs/kobs.h"

namespace krb5 {

kerb::Bytes SealTlvWithIv(const kcrypto::DesKey& key, const kcrypto::DesBlock& iv,
                          const kenc::TlvMessage& msg, const EncLayerConfig& config,
                          kcrypto::Prng& prng) {
  kerb::Bytes body = msg.Encode();
  size_t checksum_len = kcrypto::ChecksumSize(config.checksum);

  kenc::Writer w;
  if (config.use_confounder) {
    w.PutBytes(prng.NextBytes(8));
  }
  w.PutU8(static_cast<uint8_t>(config.checksum));
  size_t checksum_offset = w.size();
  w.PutBytes(kerb::Bytes(checksum_len, 0));
  w.PutBytes(body);

  kerb::Bytes plain = w.Take();
  kerb::Bytes checksum = kcrypto::ComputeChecksum(config.checksum, plain, key);
  std::copy(checksum.begin(), checksum.end(), plain.begin() + checksum_offset);
  kcrypto::Pkcs5PadInPlace(plain);
  kcrypto::EncryptCbcInPlace(key, iv, plain.data(), plain.size());
  kobs::EmitNow(kobs::kSrcSeal5, kobs::Ev::kSeal, plain.size(),
                static_cast<uint64_t>(config.checksum));
  return plain;
}

namespace {

// Shared tail of the Into-style seals: writes the confounder/checksum-type
// prefix, lets `append_body` add the TLV bytes, then checksums (over the
// zeroed checksum field), pads, and encrypts — the same order SealTlvWithIv
// uses.
template <typename AppendBody>
void SealBodyInto(const kcrypto::DesKey& key, const EncLayerConfig& config,
                  kcrypto::Prng& prng, kerb::Bytes& out, AppendBody&& append_body) {
  const size_t checksum_len = kcrypto::ChecksumSize(config.checksum);
  kenc::Writer w(&out);  // clears `out`, keeps its capacity
  if (config.use_confounder) {
    uint8_t confounder[8];
    prng.Fill(confounder, 8);
    w.PutBytes(kerb::BytesView(confounder, 8));
  }
  w.PutU8(static_cast<uint8_t>(config.checksum));
  const size_t checksum_offset = w.size();
  for (size_t i = 0; i < checksum_len; ++i) {
    w.PutU8(0);
  }
  append_body(w);
  kerb::Bytes checksum = kcrypto::ComputeChecksum(config.checksum, out, key);
  std::copy(checksum.begin(), checksum.end(), out.begin() + checksum_offset);
  kcrypto::Pkcs5PadInPlace(out);
  kcrypto::EncryptCbcInPlace(key, kcrypto::kZeroIv, out.data(), out.size());
  kobs::EmitNow(kobs::kSrcSeal5, kobs::Ev::kSeal, out.size(),
                static_cast<uint64_t>(config.checksum));
}

}  // namespace

void SealTlvInto(const kcrypto::DesKey& key, const kenc::TlvMessage& msg,
                 const EncLayerConfig& config, kcrypto::Prng& prng, kerb::Bytes& out) {
  SealBodyInto(key, config, prng, out, [&msg](kenc::Writer& w) { msg.AppendTo(w); });
}

void SealEncodedInto(const kcrypto::DesKey& key, kerb::BytesView encoded_msg,
                     const EncLayerConfig& config, kcrypto::Prng& prng, kerb::Bytes& out) {
  SealBodyInto(key, config, prng, out,
               [encoded_msg](kenc::Writer& w) { w.PutBytes(encoded_msg); });
}

namespace {

kerb::Result<kenc::TlvMessage> UnsealTlvWithIvImpl(const kcrypto::DesKey& key,
                                                   const kcrypto::DesBlock& iv,
                                                   uint16_t expected_type,
                                                   kerb::BytesView sealed,
                                                   const EncLayerConfig& config) {
  if (sealed.empty() || sealed.size() % 8 != 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "sealed data not block-aligned");
  }
  kerb::Bytes padded(sealed.begin(), sealed.end());
  kcrypto::DecryptCbcInPlace(key, iv, padded.data(), padded.size());
  auto plain = kcrypto::Pkcs5Unpad(padded);
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "padding invalid (wrong key/IV?)");
  }
  kenc::Reader r(plain.value());
  if (config.use_confounder) {
    auto confounder = r.GetBytes(8);
    if (!confounder.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kIntegrity, "confounder missing");
    }
  }
  auto type_byte = r.GetU8();
  if (!type_byte.ok() || type_byte.value() != static_cast<uint8_t>(config.checksum)) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "checksum type mismatch");
  }
  size_t checksum_len = kcrypto::ChecksumSize(config.checksum);
  auto checksum = r.GetBytes(checksum_len);
  if (!checksum.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "checksum missing");
  }
  kerb::Bytes verify_buf = plain.value();
  size_t checksum_offset = (config.use_confounder ? 8u : 0u) + 1u;
  std::fill(verify_buf.begin() + checksum_offset,
            verify_buf.begin() + checksum_offset + checksum_len, 0);
  if (!kcrypto::VerifyChecksum(config.checksum, verify_buf, checksum.value(), key)) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "checksum mismatch");
  }
  return kenc::TlvMessage::DecodeExpecting(expected_type, r.Rest());
}

}  // namespace

kerb::Result<kenc::TlvMessage> UnsealTlvWithIv(const kcrypto::DesKey& key,
                                               const kcrypto::DesBlock& iv,
                                               uint16_t expected_type, kerb::BytesView sealed,
                                               const EncLayerConfig& config) {
  if (!kobs::Enabled()) {
    return UnsealTlvWithIvImpl(key, iv, expected_type, sealed, config);
  }
  auto plain = UnsealTlvWithIvImpl(key, iv, expected_type, sealed, config);
  kobs::EmitNow(kobs::kSrcSeal5, plain.ok() ? kobs::Ev::kUnsealOk : kobs::Ev::kUnsealFail,
                sealed.size(), static_cast<uint64_t>(config.checksum));
  return plain;
}

kcrypto::DesBlock NextChainedIv(const kcrypto::DesKey& key, const kcrypto::DesBlock& iv) {
  return kcrypto::U64ToBlock(key.EncryptBlock(kcrypto::BlockToU64(iv) + 1));
}

kerb::Bytes SealTlv(const kcrypto::DesKey& key, const kenc::TlvMessage& msg,
                    const EncLayerConfig& config, kcrypto::Prng& prng) {
  return SealTlvWithIv(key, kcrypto::kZeroIv, msg, config, prng);
}

kerb::Result<kenc::TlvMessage> UnsealTlv(const kcrypto::DesKey& key, uint16_t expected_type,
                                         kerb::BytesView sealed, const EncLayerConfig& config) {
  return UnsealTlvWithIv(key, kcrypto::kZeroIv, expected_type, sealed, config);
}

kerb::Bytes Draft2PrivSeal(const kcrypto::DesKey& key, const Draft2Priv& msg) {
  kenc::Writer w;
  w.PutBytes(msg.data);  // DATA first, no length — the flaw
  w.PutU64(static_cast<uint64_t>(msg.timestamp));
  w.PutU8(msg.direction);
  w.PutU32(msg.host_address);
  kerb::Bytes sealed = w.Take();
  kcrypto::Pkcs5PadInPlace(sealed);
  kcrypto::EncryptCbcInPlace(key, kcrypto::kZeroIv, sealed.data(), sealed.size());
  return sealed;
}

kerb::Result<Draft2Priv> Draft2PrivUnseal(const kcrypto::DesKey& key, kerb::BytesView sealed) {
  if (sealed.empty() || sealed.size() % 8 != 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "sealed data not block-aligned");
  }
  kerb::Bytes padded(sealed.begin(), sealed.end());
  kcrypto::DecryptCbcInPlace(key, kcrypto::kZeroIv, padded.data(), padded.size());
  auto plain = kcrypto::Pkcs5Unpad(padded);
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "padding invalid");
  }
  constexpr size_t kTrailerLen = 8 + 1 + 4;
  if (plain.value().size() < kTrailerLen) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "too short for trailer");
  }
  size_t data_len = plain.value().size() - kTrailerLen;
  Draft2Priv msg;
  msg.data = kerb::Bytes(plain.value().begin(), plain.value().begin() + data_len);
  kenc::Reader r(kerb::BytesView(plain.value().data() + data_len, kTrailerLen));
  msg.timestamp = static_cast<ksim::Time>(r.GetU64().value());
  msg.direction = r.GetU8().value();
  msg.host_address = r.GetU32().value();
  return msg;
}

}  // namespace krb5
