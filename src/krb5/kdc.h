// The Version 5 Draft 3 key distribution center.
//
// Policy knobs expose both the Draft 3 defaults the paper attacks and the
// countermeasures it recommends:
//   * checksum type for the encryption layer (Draft 3 default: CRC-32);
//   * ENC-TKT-IN-SKEY and REUSE-SKEY options (on by default, as drafted);
//   * the cname-match rule the designers "inadvertently omitted";
//   * preauthentication of the initial exchange (recommendation g);
//   * per-source rate limiting of AS requests;
//   * hierarchical inter-realm ticket granting with a transited list the
//     serving TGS (not the client) extends.
//
// This class is the network-facing wrapper around KdcCore5
// (src/krb5/kdccore.h): the deterministic sim drives the core through one
// KdcContext here; the parallel serving harness drives the same core with
// one context per worker.

#ifndef SRC_KRB5_KDC_H_
#define SRC_KRB5_KDC_H_

#include <string>

#include "src/krb4/database.h"
#include "src/krb5/kdccore.h"
#include "src/krb5/messages.h"
#include "src/sim/network.h"

namespace krb5 {

class Kdc5 {
 public:
  Kdc5(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
       ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
       KdcPolicy5 policy = {});

  const std::string& realm() const { return core_.realm(); }
  KdcDatabase& database() { return core_.database(); }
  KdcPolicy5& policy() { return core_.policy(); }
  const ksim::NetAddress& as_address() const { return as_addr_; }
  const ksim::NetAddress& tgs_address() const { return tgs_addr_; }

  KdcCore5& core() { return core_; }

  // Registers the inter-realm key shared with `other_realm`. Both realms
  // must register the same key. `next_hop_toward` routes non-neighbor
  // realms: target realm prefix → neighbor realm to forward through.
  void AddInterRealmKey(const std::string& other_realm, const kcrypto::DesKey& key) {
    core_.AddInterRealmKey(other_realm, key);
  }
  void AddRealmRoute(const std::string& target_realm, const std::string& via_neighbor) {
    core_.AddRealmRoute(target_realm, via_neighbor);
  }

  uint64_t as_requests_served() const { return core_.as_requests_served(); }
  uint64_t as_requests_rate_limited() const { return core_.as_requests_rate_limited(); }
  uint64_t tgs_requests_served() const { return core_.tgs_requests_served(); }

 private:
  kerb::Result<kerb::Bytes> BatchOne(bool tgs, const ksim::Message& msg);

  ksim::NetAddress as_addr_;
  ksim::NetAddress tgs_addr_;
  KdcCore5 core_;
  KdcContext ctx_;
};

}  // namespace krb5

#endif  // SRC_KRB5_KDC_H_
