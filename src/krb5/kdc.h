// The Version 5 Draft 3 key distribution center.
//
// Policy knobs expose both the Draft 3 defaults the paper attacks and the
// countermeasures it recommends:
//   * checksum type for the encryption layer (Draft 3 default: CRC-32);
//   * ENC-TKT-IN-SKEY and REUSE-SKEY options (on by default, as drafted);
//   * the cname-match rule the designers "inadvertently omitted";
//   * preauthentication of the initial exchange (recommendation g);
//   * per-source rate limiting of AS requests;
//   * hierarchical inter-realm ticket granting with a transited list the
//     serving TGS (not the client) extends.

#ifndef SRC_KRB5_KDC_H_
#define SRC_KRB5_KDC_H_

#include <map>
#include <string>

#include "src/krb4/database.h"
#include "src/krb5/messages.h"
#include "src/sim/network.h"

namespace krb5 {

using krb4::KdcDatabase;

struct KdcPolicy5 {
  EncLayerConfig enc;  // checksum defaults to CRC-32, per Draft 3
  bool allow_enc_tkt_in_skey = true;
  bool allow_reuse_skey = true;
  // "the designers intended to require that the cname in the additional
  // ticket match the name of the server for which the new ticket is being
  // requested ... the requirement was inadvertently omitted from Draft 3."
  bool enforce_enc_tkt_cname_match = false;
  // Recommendation (g): authenticate the user to Kerberos in the initial
  // exchange (padata = {nonce}K_c).
  bool require_preauth = false;
  // Require a collision-proof checksum on TGS request integrity.
  bool require_collision_proof_checksum = false;
  // AS requests per source host per minute; 0 = unlimited.
  uint32_t as_rate_limit_per_minute = 0;
  ksim::Duration max_ticket_lifetime = 8 * ksim::kHour;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  // V5 permits tickets without addresses when the client asks.
  bool allow_address_omission = true;
  // Draft-era behaviour: "Clients may be treated as services, and tickets
  // to the client, encrypted by K_c, may be obtained by any user." When
  // false, service tickets naming user principals are refused (E15); the
  // supported alternative is registering separate instances with truly
  // random keys (the keystore supplies them).
  bool allow_tickets_for_user_principals = true;
};

class Kdc5 {
 public:
  Kdc5(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
       ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
       KdcPolicy5 policy = {});

  const std::string& realm() const { return realm_; }
  KdcDatabase& database() { return db_; }
  KdcPolicy5& policy() { return policy_; }
  const ksim::NetAddress& as_address() const { return as_addr_; }
  const ksim::NetAddress& tgs_address() const { return tgs_addr_; }

  // Registers the inter-realm key shared with `other_realm`. Both realms
  // must register the same key. `next_hop_toward` routes non-neighbor
  // realms: target realm prefix → neighbor realm to forward through.
  void AddInterRealmKey(const std::string& other_realm, const kcrypto::DesKey& key);
  void AddRealmRoute(const std::string& target_realm, const std::string& via_neighbor);

  uint64_t as_requests_served() const { return as_requests_; }
  uint64_t as_requests_rate_limited() const { return as_rate_limited_; }
  uint64_t tgs_requests_served() const { return tgs_requests_; }

 private:
  kerb::Result<kerb::Bytes> HandleAs(const ksim::Message& msg);
  kerb::Result<kerb::Bytes> HandleTgs(const ksim::Message& msg);

  // Which neighbor realm leads toward `target`; empty if unknown.
  std::string RouteToward(const std::string& target) const;

  ksim::NetAddress as_addr_;
  ksim::NetAddress tgs_addr_;
  ksim::HostClock clock_;
  std::string realm_;
  KdcDatabase db_;
  kcrypto::Prng prng_;
  KdcPolicy5 policy_;

  std::map<std::string, kcrypto::DesKey> interrealm_keys_;
  std::map<std::string, std::string> realm_routes_;

  // Sliding-window rate limiter state per source host.
  std::map<uint32_t, std::vector<ksim::Time>> as_request_times_;

  uint64_t as_requests_ = 0;
  uint64_t as_rate_limited_ = 0;
  uint64_t tgs_requests_ = 0;
};

}  // namespace krb5

#endif  // SRC_KRB5_KDC_H_
