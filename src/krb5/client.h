// The Version 5 client library.
//
// Supports the Draft 3 baseline and, as options, the paper's hardened
// behaviours: preauthentication, collision-proof request checksums, subkey
// negotiation, service-name binding in authenticators, and the AP
// challenge/response flow. Cross-realm requests walk the realm hierarchy
// using a static realm → TGS directory, mirroring Draft 3's "static
// configuration files" answer that the paper examines.

#ifndef SRC_KRB5_CLIENT_H_
#define SRC_KRB5_CLIENT_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/krb5/appserver.h"
#include "src/krb5/kdc.h"
#include "src/krb5/messages.h"
#include "src/sim/retry.h"

namespace krb5 {

struct Client5Options {
  EncLayerConfig enc;
  // Checksum the client uses to seal TGS request fields. Draft 3 literal
  // reading permits CRC-32; the paper's E9 shows why it must not.
  kcrypto::ChecksumType request_checksum = kcrypto::ChecksumType::kCrc32;
  bool use_preauth = false;
  bool omit_address = false;
  bool send_subkey = false;              // recommendation (e), client half
  bool send_service_name_check = false;  // E10 fix
};

struct TgsCredentials5 {
  std::string realm;  // realm whose TGS honours this TGT
  kcrypto::DesKey session_key;
  kerb::Bytes sealed_tgt;
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
};

struct ServiceCredentials5 {
  Principal service;
  kcrypto::DesKey session_key;
  kerb::Bytes sealed_ticket;
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
};

struct ServiceCallResult {
  kerb::Bytes app_reply;
  kcrypto::DesKey channel_key;  // negotiated true session key when enabled
};

class Client5 {
 public:
  Client5(ksim::Network* net, const ksim::NetAddress& self, ksim::HostClock clock,
          Principal user, ksim::NetAddress as_addr, kcrypto::Prng prng,
          Client5Options options = {});

  // realm → TGS address, consulted for cross-realm walks.
  void AddRealmTgs(const std::string& realm, const ksim::NetAddress& tgs_addr);

  kerb::Status Login(std::string_view password, ksim::Duration lifetime = 8 * ksim::kHour);

  // Login with an already-derived client key — what bulk load harnesses
  // use (deriving a million passwords adds nothing but setup time).
  kerb::Status LoginWithKey(const kcrypto::DesKey& client_key,
                            ksim::Duration lifetime = 8 * ksim::kHour);

  // Obtains a service ticket, walking realm hops as needed (bounded depth).
  kerb::Result<ServiceCredentials5> GetServiceTicket(const Principal& service,
                                                     ksim::Duration lifetime = 8 * ksim::kHour);

  // Issues one TGS request verbatim — the hook attack code uses to exercise
  // options like ENC-TKT-IN-SKEY and REUSE-SKEY deliberately.
  kerb::Result<TgsReply5> RawTgsRequest(const std::string& tgs_realm, TgsRequest5 req);

  // Obtains a forwarded TGT usable from `new_addr` (empty → no address).
  kerb::Result<TgsCredentials5> ForwardTgt(bool omit_address);

  kerb::Result<kerb::Bytes> MakeApRequest(const Principal& service, bool want_mutual,
                                          kerb::BytesView app_data = {},
                                          std::optional<kerb::Bytes> challenge_response =
                                              std::nullopt);

  // Full AP exchange, transparently answering a challenge if the server
  // demands challenge/response.
  kerb::Result<ServiceCallResult> CallService(const ksim::NetAddress& service_addr,
                                              const Principal& service, bool want_mutual,
                                              kerb::BytesView app_data = {});

  // Opts into resilient exchanges, mirroring Client4::ConfigureRetry: KDC
  // requests retransmit identical bytes through the failover list, AP
  // requests rebuild their authenticator per attempt, and all waits charge
  // the shared SimClock deterministically.
  void ConfigureRetry(ksim::SimClock* sim_clock, const ksim::RetryPolicy& policy,
                      uint64_t jitter_seed);

  // Appends a home-realm slave KDC to the failover lists. Cross-realm hops
  // keep their single configured TGS: replication is per realm.
  void AddSlaveKdc(const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr);

  // Cluster routing hooks — same contract as Client4::ClusterRouting (the
  // V5 referral rides a kMsgClusterReferral TLV, but the body bytes handed
  // to `on_referral` are the identical shared codec). Clustering applies to
  // the home realm only; cross-realm hops keep their configured TGS.
  struct ClusterRouting {
    std::function<std::vector<ksim::NetAddress>(const Principal& principal, bool tgs)>
        endpoints;
    std::function<bool(kerb::BytesView referral_body)> on_referral;
  };
  void SetClusterRouting(ClusterRouting routing) { routing_ = std::move(routing); }

  // Forgets cached service tickets (TGTs survive) so load harnesses drive
  // real TGS exchanges.
  void DropServiceCredentials() { service_creds_.clear(); }

  ksim::RetryStats retry_stats() const {
    return exchanger_.has_value() ? exchanger_->stats() : ksim::RetryStats{};
  }

  void Logout();
  bool logged_in() const { return tgs_creds_.has_value(); }
  const Principal& user() const { return user_; }
  Client5Options& options() { return options_; }

  // Host-compromise surface, as in the V4 client.
  const std::optional<TgsCredentials5>& tgs_credentials() const { return tgs_creds_; }
  const std::map<Principal, ServiceCredentials5>& credentials() const { return service_creds_; }
  // The subkey sent in the most recent authenticator (if any).
  const std::optional<kcrypto::DesBlock>& last_subkey() const { return last_subkey_; }

 private:
  kerb::Result<TgsCredentials5> GetTgtForRealm(const std::string& realm,
                                               ksim::Duration lifetime);
  // Referral hops one exchange may follow before failing closed.
  static constexpr int kMaxReferralHops = 4;

  // Fixed request bytes through a failover list (retransmission); single
  // direct call when retry is not configured.
  kerb::Result<kerb::Bytes> KdcExchange(const std::vector<ksim::NetAddress>& endpoints,
                                        const kerb::Bytes& payload);
  // KdcExchange through the cluster routing hooks when installed (see
  // Client4::RoutedKdcExchange).
  kerb::Result<kerb::Bytes> RoutedKdcExchange(const Principal& routing_principal, bool tgs,
                                              const std::vector<ksim::NetAddress>& fallback,
                                              const kerb::Bytes& payload);
  // Fresh request per attempt against one service address.
  kerb::Result<kerb::Bytes> ServiceExchange(const ksim::NetAddress& addr,
                                            const ksim::Exchanger::Builder& build);

  ksim::Network* net_;
  ksim::NetAddress self_;
  ksim::HostClock clock_;
  Principal user_;
  ksim::NetAddress as_addr_;
  kcrypto::Prng prng_;
  Client5Options options_;
  std::vector<ksim::NetAddress> as_endpoints_;
  std::vector<ksim::NetAddress> tgs_slaves_;  // home-realm failover targets
  std::optional<ksim::Exchanger> exchanger_;
  std::optional<ClusterRouting> routing_;

  std::map<std::string, ksim::NetAddress> realm_tgs_;
  std::optional<TgsCredentials5> tgs_creds_;  // home-realm TGT
  std::map<std::string, TgsCredentials5> foreign_tgts_;
  std::map<Principal, ServiceCredentials5> service_creds_;
  std::optional<kcrypto::DesBlock> last_subkey_;
};

}  // namespace krb5

#endif  // SRC_KRB5_CLIENT_H_
