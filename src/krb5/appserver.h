// A Version 5 application server with the paper's optional mechanisms.
//
// Authentication modes:
//   * kTimestamp — Draft 3 default: authenticator freshness by clock, with
//     an optional replay cache. Vulnerable to the replay family (E1–E3).
//   * kChallengeResponse — the paper's recommendation (a): "the client
//     would present a ticket, though without [relying on] an authenticator.
//     The server would respond with a nonce identifier encrypted with the
//     session key; the client would respond with some function of that
//     identifier." Requires retained state (outstanding challenges) — the
//     cost the paper prices out — and is immune to clock games.
//
// Optional features (each one of the paper's recommendations):
//   * verify_service_name_check — reject authenticators naming another
//     service (the REUSE-SKEY redirection fix, E10);
//   * negotiate_subkey — true session keys: channel key =
//     multi-session ⊕ client-subkey ⊕ server-subkey (recommendation e);
//   * transited_policy — cross-realm path evaluation (E13).

#ifndef SRC_KRB5_APPSERVER_H_
#define SRC_KRB5_APPSERVER_H_

#include <functional>
#include <map>

#include "src/krb5/messages.h"
#include "src/sim/network.h"
#include "src/sim/replaycache.h"

namespace krb5 {

enum class ApAuthMode {
  kTimestamp,
  kChallengeResponse,
};

struct AppServer5Options {
  ApAuthMode mode = ApAuthMode::kTimestamp;
  bool replay_cache = false;
  bool check_address = true;
  bool verify_service_name_check = false;
  bool negotiate_subkey = false;
  // Returns true if the ticket's transited path is acceptable. Null accepts
  // everything (the Draft 3 reality the paper criticises).
  std::function<bool(const Ticket5&)> transited_policy;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  EncLayerConfig enc;
};

struct VerifiedSession5 {
  Principal client;
  kcrypto::DesKey multi_session_key;  // from the ticket
  kcrypto::DesKey channel_key;        // negotiated true session key (or the above)
  ksim::Time authenticator_time = 0;
  std::optional<uint32_t> client_initial_seq;
  std::vector<std::string> transited;
};

class AppServer5 {
 public:
  using AppHandler =
      std::function<kerb::Bytes(const VerifiedSession5&, const kerb::Bytes& app_data)>;

  AppServer5(ksim::Network* net, const ksim::NetAddress& addr, Principal self,
             kcrypto::DesKey service_key, ksim::HostClock clock, kcrypto::Prng prng,
             AppHandler app, AppServer5Options options = {});

  // Verifies an AP request. In challenge/response mode a first presentation
  // yields kAuthFailed with `challenge_out` set — the caller must relay the
  // sealed challenge to the client and retry with its response.
  kerb::Result<VerifiedSession5> VerifyApRequest(const ApRequest5& req, uint32_t src_addr,
                                                 kerb::Bytes* challenge_out);

  const Principal& principal() const { return self_; }
  AppServer5Options& options() { return options_; }

  uint64_t accepted_requests() const { return accepted_; }
  uint64_t rejected_requests() const { return rejected_; }
  size_t outstanding_challenges() const { return challenges_.size(); }
  size_t replay_cache_size() const { return seen_authenticators_.size(); }

 private:
  kerb::Result<kerb::Bytes> Handle(const ksim::Message& msg);

  Principal self_;
  kcrypto::DesKey service_key_;
  ksim::HostClock clock_;
  kcrypto::Prng prng_;
  AppHandler app_;
  AppServer5Options options_;

  // Outstanding challenge nonces with issue times (challenge/response mode).
  std::map<uint64_t, ksim::Time> challenges_;
  ksim::ShardedReplayCache seen_authenticators_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace krb5

#endif  // SRC_KRB5_APPSERVER_H_
