#include "src/krb5/messages.h"

#include "src/encoding/io.h"

namespace krb5 {

namespace {

void PutKey(kenc::TlvMessage& msg, uint16_t key_tag, const kcrypto::DesBlock& key) {
  msg.SetBytes(key_tag, kerb::BytesView(key.data(), key.size()));
}

kerb::Result<kcrypto::DesBlock> GetKey(const kenc::TlvMessage& msg, uint16_t key_tag) {
  auto bytes = msg.GetBytes(key_tag);
  if (!bytes.ok()) {
    return bytes.error();
  }
  if (bytes.value().size() != 8) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "key field has wrong size");
  }
  kcrypto::DesBlock key;
  std::copy(bytes.value().begin(), bytes.value().end(), key.begin());
  return key;
}

std::string JoinTransited(const std::vector<std::string>& realms) {
  std::string out;
  for (const auto& realm : realms) {
    if (!out.empty()) {
      out += ",";
    }
    out += realm;
  }
  return out;
}

std::vector<std::string> SplitTransited(const std::string& joined) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= joined.size() && !joined.empty()) {
    size_t comma = joined.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(joined.substr(start));
      break;
    }
    out.push_back(joined.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

void PutClient(kenc::TlvMessage& msg, const Principal& p) {
  msg.SetString(tag::kCname, p.name);
  msg.SetString(tag::kCinstance, p.instance);
  msg.SetString(tag::kCrealm, p.realm);
}

void PutServer(kenc::TlvMessage& msg, const Principal& p) {
  msg.SetString(tag::kSname, p.name);
  msg.SetString(tag::kSinstance, p.instance);
  msg.SetString(tag::kSrealm, p.realm);
}

kerb::Result<Principal> GetClient(const kenc::TlvMessage& msg) {
  auto name = msg.GetString(tag::kCname);
  auto instance = msg.GetString(tag::kCinstance);
  auto realm = msg.GetString(tag::kCrealm);
  if (!name.ok() || !instance.ok() || !realm.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "missing client principal");
  }
  return Principal{name.value(), instance.value(), realm.value()};
}

kerb::Result<Principal> GetServer(const kenc::TlvMessage& msg) {
  auto name = msg.GetString(tag::kSname);
  auto instance = msg.GetString(tag::kSinstance);
  auto realm = msg.GetString(tag::kSrealm);
  if (!name.ok() || !instance.ok() || !realm.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "missing server principal");
  }
  return Principal{name.value(), instance.value(), realm.value()};
}

// --------------------------------------------------------------------------- Ticket5

kenc::TlvMessage Ticket5::ToTlv() const {
  kenc::TlvMessage msg(kMsgTicket);
  PutServer(msg, service);
  PutClient(msg, client);
  msg.SetU32(tag::kFlags, flags);
  if (client_addr.has_value()) {
    msg.SetU32(tag::kAddress, *client_addr);
  }
  msg.SetU64(tag::kIssuedAt, static_cast<uint64_t>(issued_at));
  msg.SetU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  PutKey(msg, tag::kSessionKey, session_key);
  if (!transited.empty()) {
    msg.SetString(tag::kTransited, JoinTransited(transited));
  }
  return msg;
}

void Ticket5::AppendTlvTo(kenc::Writer& w) const {
  const uint16_t count = static_cast<uint16_t>(10 + (client_addr.has_value() ? 1 : 0) +
                                               (transited.empty() ? 0 : 1));
  kenc::TlvFieldWriter f(w, kMsgTicket, count);
  f.AddString(tag::kCname, client.name);
  f.AddString(tag::kCinstance, client.instance);
  f.AddString(tag::kCrealm, client.realm);
  f.AddString(tag::kSname, service.name);
  f.AddString(tag::kSinstance, service.instance);
  f.AddString(tag::kSrealm, service.realm);
  if (client_addr.has_value()) {
    f.AddU32(tag::kAddress, *client_addr);
  }
  f.AddU64(tag::kIssuedAt, static_cast<uint64_t>(issued_at));
  f.AddU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  f.AddBytes(tag::kSessionKey, kerb::BytesView(session_key.data(), session_key.size()));
  f.AddU32(tag::kFlags, flags);
  if (!transited.empty()) {
    f.AddString(tag::kTransited, JoinTransited(transited));
  }
}

kerb::Result<Ticket5> Ticket5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgTicket) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a ticket");
  }
  Ticket5 t;
  auto service = GetServer(msg);
  auto client = GetClient(msg);
  auto flags = msg.GetU32(tag::kFlags);
  auto issued = msg.GetU64(tag::kIssuedAt);
  auto life = msg.GetU64(tag::kLifetime);
  auto key = GetKey(msg, tag::kSessionKey);
  if (!service.ok() || !client.ok() || !flags.ok() || !issued.ok() || !life.ok() || !key.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "ticket missing fields");
  }
  t.service = service.value();
  t.client = client.value();
  t.flags = flags.value();
  t.client_addr = msg.GetOptionalU32(tag::kAddress);
  t.issued_at = static_cast<ksim::Time>(issued.value());
  t.lifetime = static_cast<ksim::Duration>(life.value());
  t.session_key = key.value();
  if (msg.Has(tag::kTransited)) {
    t.transited = SplitTransited(msg.GetString(tag::kTransited).value());
  }
  return t;
}

kerb::Bytes Ticket5::Seal(const kcrypto::DesKey& key, const EncLayerConfig& config,
                          kcrypto::Prng& prng) const {
  return SealTlv(key, ToTlv(), config, prng);
}

kerb::Result<Ticket5> Ticket5::Unseal(const kcrypto::DesKey& key, kerb::BytesView sealed,
                                      const EncLayerConfig& config) {
  auto msg = UnsealTlv(key, kMsgTicket, sealed, config);
  if (!msg.ok()) {
    return msg.error();
  }
  return FromTlv(msg.value());
}

// --------------------------------------------------------------------------- Authenticator5

kenc::TlvMessage Authenticator5::ToTlv() const {
  kenc::TlvMessage msg(kMsgAuthenticator);
  PutClient(msg, client);
  msg.SetU64(tag::kTimestamp, static_cast<uint64_t>(timestamp));
  if (checksum_type.has_value()) {
    msg.SetU32(tag::kChecksumType, static_cast<uint32_t>(*checksum_type));
  }
  if (request_checksum.has_value()) {
    msg.SetBytes(tag::kChecksum, *request_checksum);
  }
  if (subkey.has_value()) {
    PutKey(msg, tag::kSubkey, *subkey);
  }
  if (initial_seq.has_value()) {
    msg.SetU32(tag::kSeqNumber, *initial_seq);
  }
  if (service_name_check.has_value()) {
    msg.SetString(tag::kServiceNameCheck, *service_name_check);
  }
  return msg;
}

kerb::Result<Authenticator5> Authenticator5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgAuthenticator) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not an authenticator");
  }
  Authenticator5 a;
  auto client = GetClient(msg);
  auto ts = msg.GetU64(tag::kTimestamp);
  if (!client.ok() || !ts.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "authenticator missing fields");
  }
  a.client = client.value();
  a.timestamp = static_cast<ksim::Time>(ts.value());
  if (auto type = msg.GetOptionalU32(tag::kChecksumType)) {
    a.checksum_type = static_cast<kcrypto::ChecksumType>(*type);
  }
  a.request_checksum = msg.GetOptionalBytes(tag::kChecksum);
  if (msg.Has(tag::kSubkey)) {
    auto key = GetKey(msg, tag::kSubkey);
    if (!key.ok()) {
      return key.error();
    }
    a.subkey = key.value();
  }
  a.initial_seq = msg.GetOptionalU32(tag::kSeqNumber);
  if (msg.Has(tag::kServiceNameCheck)) {
    a.service_name_check = msg.GetString(tag::kServiceNameCheck).value();
  }
  return a;
}

kerb::Bytes Authenticator5::Seal(const kcrypto::DesKey& key, const EncLayerConfig& config,
                                 kcrypto::Prng& prng) const {
  return SealTlv(key, ToTlv(), config, prng);
}

kerb::Result<Authenticator5> Authenticator5::Unseal(const kcrypto::DesKey& key,
                                                    kerb::BytesView sealed,
                                                    const EncLayerConfig& config) {
  auto msg = UnsealTlv(key, kMsgAuthenticator, sealed, config);
  if (!msg.ok()) {
    return msg.error();
  }
  return FromTlv(msg.value());
}

// --------------------------------------------------------------------------- AS exchange

kenc::TlvMessage AsRequest5::ToTlv() const {
  kenc::TlvMessage msg(kMsgAsReq);
  PutClient(msg, client);
  msg.SetString(tag::kSrealm, service_realm);
  msg.SetU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  msg.SetU32(tag::kOptions, options);
  msg.SetU64(tag::kNonce, nonce);
  if (padata.has_value()) {
    msg.SetBytes(tag::kPadata, *padata);
  }
  return msg;
}

kerb::Result<AsRequest5> AsRequest5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgAsReq) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not an AS request");
  }
  AsRequest5 req;
  auto client = GetClient(msg);
  auto realm = msg.GetString(tag::kSrealm);
  auto life = msg.GetU64(tag::kLifetime);
  auto nonce = msg.GetU64(tag::kNonce);
  if (!client.ok() || !realm.ok() || !life.ok() || !nonce.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "AS request missing fields");
  }
  req.client = client.value();
  req.service_realm = realm.value();
  req.lifetime = static_cast<ksim::Duration>(life.value());
  req.options = msg.GetOptionalU32(tag::kOptions).value_or(0);
  req.nonce = nonce.value();
  req.padata = msg.GetOptionalBytes(tag::kPadata);
  return req;
}

kenc::TlvMessage EncAsRepPart5::ToTlv() const {
  kenc::TlvMessage msg(kMsgEncAsRepPart);
  PutKey(msg, tag::kSessionKey, tgs_session_key);
  msg.SetU64(tag::kNonce, nonce);
  msg.SetU64(tag::kIssuedAt, static_cast<uint64_t>(issued_at));
  msg.SetU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  return msg;
}

void EncAsRepPart5::AppendTlvTo(kenc::Writer& w) const {
  kenc::TlvFieldWriter f(w, kMsgEncAsRepPart, 4);
  f.AddU64(tag::kIssuedAt, static_cast<uint64_t>(issued_at));
  f.AddU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  f.AddBytes(tag::kSessionKey,
             kerb::BytesView(tgs_session_key.data(), tgs_session_key.size()));
  f.AddU64(tag::kNonce, nonce);
}

kerb::Result<EncAsRepPart5> EncAsRepPart5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgEncAsRepPart) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not an AS reply part");
  }
  EncAsRepPart5 part;
  auto key = GetKey(msg, tag::kSessionKey);
  auto nonce = msg.GetU64(tag::kNonce);
  auto issued = msg.GetU64(tag::kIssuedAt);
  auto life = msg.GetU64(tag::kLifetime);
  if (!key.ok() || !nonce.ok() || !issued.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "AS reply part missing fields");
  }
  part.tgs_session_key = key.value();
  part.nonce = nonce.value();
  part.issued_at = static_cast<ksim::Time>(issued.value());
  part.lifetime = static_cast<ksim::Duration>(life.value());
  return part;
}

kenc::TlvMessage AsReply5::ToTlv() const {
  kenc::TlvMessage msg(kMsgAsRep);
  msg.SetBytes(tag::kTicketBlob, sealed_tgt);
  msg.SetBytes(tag::kSealedPart, sealed_enc_part);
  return msg;
}

kerb::Result<AsReply5> AsReply5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgAsRep) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not an AS reply");
  }
  AsReply5 rep;
  auto tgt = msg.GetBytes(tag::kTicketBlob);
  auto part = msg.GetBytes(tag::kSealedPart);
  if (!tgt.ok() || !part.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "AS reply missing fields");
  }
  rep.sealed_tgt = tgt.value();
  rep.sealed_enc_part = part.value();
  return rep;
}

// ----------------------------------------------------------------- PK AS exchange

kenc::TlvMessage AsPkRequest5::ToTlv() const {
  kenc::TlvMessage msg(kMsgAsPkReq);
  PutClient(msg, client);
  msg.SetString(tag::kSrealm, service_realm);
  msg.SetU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  msg.SetU32(tag::kOptions, options);
  msg.SetU64(tag::kNonce, nonce);
  msg.SetBytes(tag::kPkPublic, client_pub);
  if (padata.has_value()) {
    msg.SetBytes(tag::kPadata, *padata);
  }
  return msg;
}

kerb::Result<AsPkRequest5> AsPkRequest5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgAsPkReq) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a PK AS request");
  }
  AsPkRequest5 req;
  auto client = GetClient(msg);
  auto realm = msg.GetString(tag::kSrealm);
  auto life = msg.GetU64(tag::kLifetime);
  auto nonce = msg.GetU64(tag::kNonce);
  auto pub = msg.GetBytes(tag::kPkPublic);
  if (!client.ok() || !realm.ok() || !life.ok() || !nonce.ok() || !pub.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "PK AS request missing fields");
  }
  req.client = client.value();
  req.service_realm = realm.value();
  req.lifetime = static_cast<ksim::Duration>(life.value());
  req.options = msg.GetOptionalU32(tag::kOptions).value_or(0);
  req.nonce = nonce.value();
  req.client_pub = pub.value();
  req.padata = msg.GetOptionalBytes(tag::kPadata);
  return req;
}

kenc::TlvMessage AsPkReply5::ToTlv() const {
  kenc::TlvMessage msg(kMsgAsPkRep);
  msg.SetBytes(tag::kPkPublic, server_pub);
  msg.SetBytes(tag::kTicketBlob, sealed_tgt);
  msg.SetBytes(tag::kSealedPart, sealed_wrap);
  return msg;
}

kerb::Result<AsPkReply5> AsPkReply5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgAsPkRep) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a PK AS reply");
  }
  AsPkReply5 rep;
  auto pub = msg.GetBytes(tag::kPkPublic);
  auto tgt = msg.GetBytes(tag::kTicketBlob);
  auto wrap = msg.GetBytes(tag::kSealedPart);
  if (!pub.ok() || !tgt.ok() || !wrap.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "PK AS reply missing fields");
  }
  rep.server_pub = pub.value();
  rep.sealed_tgt = tgt.value();
  rep.sealed_wrap = wrap.value();
  return rep;
}

// --------------------------------------------------------------------------- TGS exchange

kerb::Bytes TgsRequest5::ChecksumInput() const {
  // Canonical encoding of every field outside the encryption that the TGS
  // will act on. If the checksum sealing these is weak, an adversary can
  // rewrite them (E9).
  kenc::Writer w;
  w.PutString(service.name);
  w.PutString(service.instance);
  w.PutString(service.realm);
  w.PutU64(static_cast<uint64_t>(lifetime));
  w.PutU32(options);
  w.PutU64(nonce);
  w.PutString(tgt_realm);
  w.PutLengthPrefixed(additional_ticket);
  if (additional_ticket_service.has_value()) {
    additional_ticket_service->EncodeTo(w);
  }
  w.PutLengthPrefixed(authorization_data);
  return w.Take();
}

kenc::TlvMessage TgsRequest5::ToTlv() const {
  kenc::TlvMessage msg(kMsgTgsReq);
  PutServer(msg, service);
  msg.SetU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  msg.SetU32(tag::kOptions, options);
  msg.SetU64(tag::kNonce, nonce);
  msg.SetString(tag::kTgtRealm, tgt_realm);
  if (!additional_ticket.empty()) {
    msg.SetBytes(tag::kAdditionalTicket, additional_ticket);
  }
  if (additional_ticket_service.has_value()) {
    msg.SetString(tag::kAname, additional_ticket_service->name);
    msg.SetString(tag::kAinstance, additional_ticket_service->instance);
    msg.SetString(tag::kArealm, additional_ticket_service->realm);
  }
  if (!authorization_data.empty()) {
    msg.SetBytes(tag::kAuthorizationData, authorization_data);
  }
  msg.SetBytes(tag::kTicketBlob, sealed_tgt);
  msg.SetBytes(tag::kAuthBlob, sealed_authenticator);
  return msg;
}

kerb::Result<TgsRequest5> TgsRequest5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgTgsReq) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a TGS request");
  }
  TgsRequest5 req;
  auto service = GetServer(msg);
  auto life = msg.GetU64(tag::kLifetime);
  auto options = msg.GetU32(tag::kOptions);
  auto nonce = msg.GetU64(tag::kNonce);
  auto tgt_realm = msg.GetString(tag::kTgtRealm);
  auto tgt = msg.GetBytes(tag::kTicketBlob);
  auto auth = msg.GetBytes(tag::kAuthBlob);
  if (!service.ok() || !life.ok() || !options.ok() || !nonce.ok() || !tgt_realm.ok() ||
      !tgt.ok() || !auth.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "TGS request missing fields");
  }
  req.service = service.value();
  req.lifetime = static_cast<ksim::Duration>(life.value());
  req.options = options.value();
  req.nonce = nonce.value();
  req.tgt_realm = tgt_realm.value();
  req.additional_ticket = msg.GetOptionalBytes(tag::kAdditionalTicket).value_or(kerb::Bytes{});
  if (msg.Has(tag::kAname)) {
    auto aname = msg.GetString(tag::kAname);
    auto ainstance = msg.GetString(tag::kAinstance);
    auto arealm = msg.GetString(tag::kArealm);
    if (!aname.ok() || !ainstance.ok() || !arealm.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "partial additional-ticket service");
    }
    req.additional_ticket_service = Principal{aname.value(), ainstance.value(), arealm.value()};
  }
  req.authorization_data =
      msg.GetOptionalBytes(tag::kAuthorizationData).value_or(kerb::Bytes{});
  req.sealed_tgt = tgt.value();
  req.sealed_authenticator = auth.value();
  return req;
}

kenc::TlvMessage EncTgsRepPart5::ToTlv() const {
  kenc::TlvMessage msg(kMsgEncTgsRepPart);
  PutKey(msg, tag::kSessionKey, session_key);
  msg.SetU64(tag::kNonce, nonce);
  msg.SetU64(tag::kIssuedAt, static_cast<uint64_t>(issued_at));
  msg.SetU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  return msg;
}

void EncTgsRepPart5::AppendTlvTo(kenc::Writer& w) const {
  kenc::TlvFieldWriter f(w, kMsgEncTgsRepPart, 4);
  f.AddU64(tag::kIssuedAt, static_cast<uint64_t>(issued_at));
  f.AddU64(tag::kLifetime, static_cast<uint64_t>(lifetime));
  f.AddBytes(tag::kSessionKey, kerb::BytesView(session_key.data(), session_key.size()));
  f.AddU64(tag::kNonce, nonce);
}

kerb::Result<EncTgsRepPart5> EncTgsRepPart5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgEncTgsRepPart) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a TGS reply part");
  }
  EncTgsRepPart5 part;
  auto key = GetKey(msg, tag::kSessionKey);
  auto nonce = msg.GetU64(tag::kNonce);
  auto issued = msg.GetU64(tag::kIssuedAt);
  auto life = msg.GetU64(tag::kLifetime);
  if (!key.ok() || !nonce.ok() || !issued.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "TGS reply part missing fields");
  }
  part.session_key = key.value();
  part.nonce = nonce.value();
  part.issued_at = static_cast<ksim::Time>(issued.value());
  part.lifetime = static_cast<ksim::Duration>(life.value());
  return part;
}

kenc::TlvMessage TgsReply5::ToTlv() const {
  kenc::TlvMessage msg(kMsgTgsRep);
  msg.SetBytes(tag::kTicketBlob, sealed_ticket);
  msg.SetBytes(tag::kSealedPart, sealed_enc_part);
  return msg;
}

kerb::Result<TgsReply5> TgsReply5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgTgsRep) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a TGS reply");
  }
  TgsReply5 rep;
  auto ticket = msg.GetBytes(tag::kTicketBlob);
  auto part = msg.GetBytes(tag::kSealedPart);
  if (!ticket.ok() || !part.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "TGS reply missing fields");
  }
  rep.sealed_ticket = ticket.value();
  rep.sealed_enc_part = part.value();
  return rep;
}

// --------------------------------------------------------------------------- AP exchange

kenc::TlvMessage ApRequest5::ToTlv() const {
  kenc::TlvMessage msg(kMsgApReq);
  msg.SetBytes(tag::kTicketBlob, sealed_ticket);
  msg.SetBytes(tag::kAuthBlob, sealed_authenticator);
  msg.SetU32(tag::kMutual, want_mutual ? 1 : 0);
  if (!app_data.empty()) {
    msg.SetBytes(tag::kAppData, app_data);
  }
  if (challenge_response.has_value()) {
    msg.SetBytes(tag::kChallengeResponse, *challenge_response);
  }
  return msg;
}

kerb::Result<ApRequest5> ApRequest5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgApReq) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not an AP request");
  }
  ApRequest5 req;
  auto ticket = msg.GetBytes(tag::kTicketBlob);
  auto auth = msg.GetBytes(tag::kAuthBlob);
  auto mutual = msg.GetU32(tag::kMutual);
  if (!ticket.ok() || !auth.ok() || !mutual.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "AP request missing fields");
  }
  req.sealed_ticket = ticket.value();
  req.sealed_authenticator = auth.value();
  req.want_mutual = mutual.value() != 0;
  req.app_data = msg.GetOptionalBytes(tag::kAppData).value_or(kerb::Bytes{});
  req.challenge_response = msg.GetOptionalBytes(tag::kChallengeResponse);
  return req;
}

kenc::TlvMessage EncApRepPart5::ToTlv() const {
  kenc::TlvMessage msg(kMsgEncApRepPart);
  msg.SetU64(tag::kTimestamp, static_cast<uint64_t>(timestamp));
  if (subkey.has_value()) {
    PutKey(msg, tag::kSubkey, *subkey);
  }
  if (initial_seq.has_value()) {
    msg.SetU32(tag::kSeqNumber, *initial_seq);
  }
  return msg;
}

kerb::Result<EncApRepPart5> EncApRepPart5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgEncApRepPart) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not an AP reply part");
  }
  EncApRepPart5 part;
  auto ts = msg.GetU64(tag::kTimestamp);
  if (!ts.ok()) {
    return ts.error();
  }
  part.timestamp = static_cast<ksim::Time>(ts.value());
  if (msg.Has(tag::kSubkey)) {
    auto key = GetKey(msg, tag::kSubkey);
    if (!key.ok()) {
      return key.error();
    }
    part.subkey = key.value();
  }
  part.initial_seq = msg.GetOptionalU32(tag::kSeqNumber);
  return part;
}

// --------------------------------------------------------------------------- KRB_ERROR

kenc::TlvMessage KrbError5::ToTlv() const {
  kenc::TlvMessage msg(kMsgError);
  msg.SetU32(tag::kErrorCode, code);
  msg.SetString(tag::kErrorText, text);
  if (!e_data.empty()) {
    msg.SetBytes(tag::kEData, e_data);
  }
  return msg;
}

kerb::Result<KrbError5> KrbError5::FromTlv(const kenc::TlvMessage& msg) {
  if (msg.type() != kMsgError) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a KRB_ERROR");
  }
  KrbError5 err;
  auto code = msg.GetU32(tag::kErrorCode);
  auto text = msg.GetString(tag::kErrorText);
  if (!code.ok() || !text.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "KRB_ERROR missing fields");
  }
  err.code = code.value();
  err.text = text.value();
  err.e_data = msg.GetOptionalBytes(tag::kEData).value_or(kerb::Bytes{});
  return err;
}

}  // namespace krb5
