#include "src/krb5/client.h"

#include "src/crypto/str2key.h"

namespace krb5 {

Client5::Client5(ksim::Network* net, const ksim::NetAddress& self, ksim::HostClock clock,
                 Principal user, ksim::NetAddress as_addr, kcrypto::Prng prng,
                 Client5Options options)
    : net_(net),
      self_(self),
      clock_(clock),
      user_(std::move(user)),
      as_addr_(as_addr),
      prng_(prng),
      options_(options),
      as_endpoints_{as_addr} {}

void Client5::AddRealmTgs(const std::string& realm, const ksim::NetAddress& tgs_addr) {
  realm_tgs_.insert_or_assign(realm, tgs_addr);
}

void Client5::ConfigureRetry(ksim::SimClock* sim_clock, const ksim::RetryPolicy& policy,
                             uint64_t jitter_seed) {
  exchanger_.emplace(net_, sim_clock, kcrypto::Prng(jitter_seed), policy);
}

void Client5::AddSlaveKdc(const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr) {
  as_endpoints_.push_back(as_addr);
  tgs_slaves_.push_back(tgs_addr);
}

kerb::Result<kerb::Bytes> Client5::KdcExchange(const std::vector<ksim::NetAddress>& endpoints,
                                               const kerb::Bytes& payload) {
  if (exchanger_.has_value()) {
    return exchanger_->Exchange(self_, endpoints,
                                [&]() -> kerb::Result<kerb::Bytes> { return payload; });
  }
  return net_->Call(self_, endpoints.front(), payload);
}

kerb::Result<kerb::Bytes> Client5::RoutedKdcExchange(const Principal& routing_principal,
                                                     bool tgs,
                                                     const std::vector<ksim::NetAddress>& fallback,
                                                     const kerb::Bytes& payload) {
  if (!routing_.has_value() || !routing_->endpoints) {
    return KdcExchange(fallback, payload);
  }
  for (int hop = 0; hop < kMaxReferralHops; ++hop) {
    std::vector<ksim::NetAddress> endpoints = routing_->endpoints(routing_principal, tgs);
    if (endpoints.empty()) {
      endpoints = fallback;
    }
    auto reply = KdcExchange(endpoints, payload);
    if (!reply.ok()) {
      return reply;
    }
    auto tlv = kenc::TlvMessage::Decode(reply.value());
    if (!tlv.ok() || tlv.value().type() != kMsgClusterReferral) {
      return reply;  // a real KDC answer; the caller decodes it
    }
    auto body = tlv.value().GetBytes(tag::kClusterBody);
    if (!body.ok() || !routing_->on_referral || !routing_->on_referral(body.value())) {
      return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster referral not actionable");
    }
  }
  return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster referral loop");
}

kerb::Result<kerb::Bytes> Client5::ServiceExchange(const ksim::NetAddress& addr,
                                                   const ksim::Exchanger::Builder& build) {
  if (exchanger_.has_value()) {
    return exchanger_->Exchange(self_, {addr}, build);
  }
  auto payload = build();
  if (!payload.ok()) {
    return payload.error();
  }
  return net_->Call(self_, addr, payload.value());
}

kerb::Status Client5::Login(std::string_view password, ksim::Duration lifetime) {
  return LoginWithKey(kcrypto::StringToKey(password, user_.Salt()), lifetime);
}

kerb::Status Client5::LoginWithKey(const kcrypto::DesKey& client_key,
                                   ksim::Duration lifetime) {
  AsRequest5 req;
  req.client = user_;
  req.service_realm = user_.realm;
  req.lifetime = lifetime;
  req.options = options_.omit_address ? kOptOmitAddress : 0;
  req.nonce = prng_.NextU64();
  if (options_.use_preauth) {
    kenc::TlvMessage preauth(kMsgPreauth);
    preauth.SetU64(tag::kNonce, req.nonce);
    preauth.SetU64(tag::kTimestamp, static_cast<uint64_t>(clock_.Now()));
    req.padata = SealTlv(client_key, preauth, options_.enc, prng_);
  }

  auto reply = RoutedKdcExchange(user_, false, as_endpoints_, req.ToTlv().Encode());
  if (!reply.ok()) {
    return reply.error();
  }
  auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgAsRep, reply.value());
  if (!tlv.ok()) {
    return tlv.error();
  }
  auto rep = AsReply5::FromTlv(tlv.value());
  if (!rep.ok()) {
    return rep.error();
  }

  auto part_tlv =
      UnsealTlv(client_key, kMsgEncAsRepPart, rep.value().sealed_enc_part, options_.enc);
  if (!part_tlv.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                           "cannot decrypt AS reply (wrong password?)");
  }
  auto part = EncAsRepPart5::FromTlv(part_tlv.value());
  if (!part.ok()) {
    return part.error();
  }
  // Draft 3: the echoed nonce authenticates the KDC to us without trusting
  // our clock.
  if (part.value().nonce != req.nonce) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "AS reply nonce mismatch");
  }

  TgsCredentials5 creds;
  creds.realm = user_.realm;
  creds.session_key = kcrypto::DesKey(part.value().tgs_session_key);
  creds.sealed_tgt = rep.value().sealed_tgt;
  creds.issued_at = part.value().issued_at;
  creds.lifetime = part.value().lifetime;
  tgs_creds_ = creds;
  return kerb::Status::Ok();
}

kerb::Result<TgsReply5> Client5::RawTgsRequest(const std::string& tgs_realm, TgsRequest5 req) {
  auto tgs_it = realm_tgs_.find(tgs_realm);
  if (tgs_it == realm_tgs_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound, "no TGS known for realm " + tgs_realm);
  }
  const TgsCredentials5* creds = nullptr;
  if (tgs_creds_.has_value() && tgs_creds_->realm == tgs_realm) {
    creds = &*tgs_creds_;
  } else {
    auto it = foreign_tgts_.find(tgs_realm);
    if (it != foreign_tgts_.end()) {
      creds = &it->second;
    }
  }
  if (creds == nullptr) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "no TGT for realm " + tgs_realm);
  }

  // Which realm's key seals the TGT we present: home TGTs are sealed by the
  // serving realm itself; foreign TGTs by the hop that issued them.
  req.tgt_realm = creds->realm == tgs_realm ? tgs_realm : creds->realm;
  req.sealed_tgt = creds->sealed_tgt;
  if (req.nonce == 0) {
    req.nonce = prng_.NextU64();
  }

  Authenticator5 auth;
  auth.client = user_;
  auth.timestamp = clock_.Now();
  auth.checksum_type = options_.request_checksum;
  auth.request_checksum = kcrypto::ComputeChecksum(options_.request_checksum,
                                                   req.ChecksumInput(), creds->session_key);
  req.sealed_authenticator = auth.Seal(creds->session_key, options_.enc, prng_);

  // Home-realm TGS requests fail over to the realm's slaves; cross-realm
  // hops keep their one configured TGS (replication is per realm).
  std::vector<ksim::NetAddress> endpoints{tgs_it->second};
  if (tgs_realm == user_.realm) {
    endpoints.insert(endpoints.end(), tgs_slaves_.begin(), tgs_slaves_.end());
  }
  // Only the home realm is clustered; cross-realm hops bypass the router.
  auto reply = tgs_realm == user_.realm
                   ? RoutedKdcExchange(req.service, true, endpoints, req.ToTlv().Encode())
                   : KdcExchange(endpoints, req.ToTlv().Encode());
  if (!reply.ok()) {
    return reply.error();
  }
  auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgTgsRep, reply.value());
  if (!tlv.ok()) {
    return tlv.error();
  }
  return TgsReply5::FromTlv(tlv.value());
}

kerb::Result<TgsCredentials5> Client5::GetTgtForRealm(const std::string& target_realm,
                                                      ksim::Duration lifetime) {
  if (!tgs_creds_.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "not logged in");
  }
  if (target_realm == tgs_creds_->realm) {
    return *tgs_creds_;
  }
  auto cached = foreign_tgts_.find(target_realm);
  if (cached != foreign_tgts_.end() &&
      clock_.Now() < cached->second.issued_at + cached->second.lifetime) {
    return cached->second;
  }

  // Walk from the home realm toward the target, at most 8 hops.
  std::string current = tgs_creds_->realm;
  for (int hop = 0; hop < 8; ++hop) {
    TgsRequest5 req;
    req.service = Principal{"krbtgt", target_realm, target_realm};
    req.service.realm = target_realm;
    req.lifetime = lifetime;

    auto reply = RawTgsRequest(current, req);
    if (!reply.ok()) {
      return reply.error();
    }

    // Decrypt the enc part with the session key of the TGT we used.
    const TgsCredentials5& used =
        current == tgs_creds_->realm ? *tgs_creds_ : foreign_tgts_.at(current);
    auto part_tlv = UnsealTlv(used.session_key, kMsgEncTgsRepPart,
                              reply.value().sealed_enc_part, options_.enc);
    if (!part_tlv.ok()) {
      return part_tlv.error();
    }
    auto part = EncTgsRepPart5::FromTlv(part_tlv.value());
    if (!part.ok()) {
      return part.error();
    }

    // The KDC issued a TGT for some next-hop realm (possibly the target).
    // We cannot see inside the sealed ticket; the KDC's routing determines
    // the hop. We track the hop realm via the service instance convention:
    // the reply ticket is for krbtgt.<hop>@<current>. We must learn <hop> —
    // the enc part does not carry it, so we try the target first, falling
    // back to known realms. For the simulation's directory-based routing we
    // simply ask the KDC's route: the ticket is usable at whichever realm's
    // TGS accepts it. We record it under the target if this hop reached it.
    TgsCredentials5 hop_creds;
    hop_creds.realm = current;  // sealed by `current`'s inter-realm key
    hop_creds.session_key = kcrypto::DesKey(part.value().session_key);
    hop_creds.sealed_tgt = reply.value().sealed_ticket;
    hop_creds.issued_at = part.value().issued_at;
    hop_creds.lifetime = part.value().lifetime;

    // Determine the next realm: the first realm on the path from current to
    // target that current's KDC routes to. The client's realm directory
    // orders the walk; in this model the KDC grants a ticket for exactly
    // one hop, so we probe each known realm's TGS until one accepts. To
    // keep the protocol honest (no oracle probing), clients are configured
    // with the same static routes as the KDC via realm_tgs_ ordering; the
    // convention here: a hop ticket is always for the next realm in the
    // dotted-hierarchy path, which we can compute locally.
    std::string next = [&]() -> std::string {
      // If current and target share a direct key, the hop IS the target.
      // Otherwise move up toward the root or down into the target's tree,
      // using dotted-suffix hierarchy (X.Y is a child of Y).
      auto is_suffix = [](const std::string& child, const std::string& parent) {
        return child.size() > parent.size() + 1 &&
               child.compare(child.size() - parent.size() - 1, parent.size() + 1,
                             "." + parent) == 0;
      };
      if (is_suffix(target_realm, current)) {
        // Descend: next hop is the ancestor of target directly below us.
        std::string next_down = target_realm;
        while (true) {
          size_t dot = next_down.find('.');
          if (dot == std::string::npos) {
            break;
          }
          std::string parent = next_down.substr(dot + 1);
          if (parent == current) {
            return next_down;
          }
          next_down = parent;
        }
        return target_realm;
      }
      if (is_suffix(current, target_realm) || is_suffix(target_realm, current)) {
        size_t dot = current.find('.');
        return dot == std::string::npos ? target_realm : current.substr(dot + 1);
      }
      // Disjoint subtrees: go up until we can descend.
      size_t dot = current.find('.');
      return dot == std::string::npos ? target_realm : current.substr(dot + 1);
    }();

    foreign_tgts_.insert_or_assign(next, hop_creds);
    if (next == target_realm) {
      return hop_creds;
    }
    current = next;
  }
  return kerb::MakeError(kerb::ErrorCode::kNotFound, "realm walk exceeded hop limit");
}

kerb::Result<ServiceCredentials5> Client5::GetServiceTicket(const Principal& service,
                                                            ksim::Duration lifetime) {
  auto cached = service_creds_.find(service);
  if (cached != service_creds_.end() &&
      clock_.Now() < cached->second.issued_at + cached->second.lifetime) {
    return cached->second;
  }

  auto tgt = GetTgtForRealm(service.realm, lifetime);
  if (!tgt.ok()) {
    return tgt.error();
  }

  TgsRequest5 req;
  req.service = service;
  req.lifetime = lifetime;
  if (options_.omit_address) {
    req.options |= kOptOmitAddress;
  }

  auto reply = RawTgsRequest(service.realm, req);
  if (!reply.ok()) {
    return reply.error();
  }
  auto part_tlv = UnsealTlv(tgt.value().session_key, kMsgEncTgsRepPart,
                            reply.value().sealed_enc_part, options_.enc);
  if (!part_tlv.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "cannot decrypt TGS reply");
  }
  auto part = EncTgsRepPart5::FromTlv(part_tlv.value());
  if (!part.ok()) {
    return part.error();
  }

  ServiceCredentials5 creds;
  creds.service = service;
  creds.session_key = kcrypto::DesKey(part.value().session_key);
  creds.sealed_ticket = reply.value().sealed_ticket;
  creds.issued_at = part.value().issued_at;
  creds.lifetime = part.value().lifetime;
  service_creds_[service] = creds;
  return creds;
}

kerb::Result<TgsCredentials5> Client5::ForwardTgt(bool omit_address) {
  if (!tgs_creds_.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "not logged in");
  }
  TgsRequest5 req;
  req.service = krb4::TgsPrincipal(tgs_creds_->realm);
  req.lifetime = tgs_creds_->lifetime;
  req.options = kOptForward | (omit_address ? kOptOmitAddress : 0);

  auto reply = RawTgsRequest(tgs_creds_->realm, req);
  if (!reply.ok()) {
    return reply.error();
  }
  auto part_tlv = UnsealTlv(tgs_creds_->session_key, kMsgEncTgsRepPart,
                            reply.value().sealed_enc_part, options_.enc);
  if (!part_tlv.ok()) {
    return part_tlv.error();
  }
  auto part = EncTgsRepPart5::FromTlv(part_tlv.value());
  if (!part.ok()) {
    return part.error();
  }
  TgsCredentials5 forwarded;
  forwarded.realm = tgs_creds_->realm;
  forwarded.session_key = kcrypto::DesKey(part.value().session_key);
  forwarded.sealed_tgt = reply.value().sealed_ticket;
  forwarded.issued_at = part.value().issued_at;
  forwarded.lifetime = part.value().lifetime;
  return forwarded;
}

kerb::Result<kerb::Bytes> Client5::MakeApRequest(const Principal& service, bool want_mutual,
                                                 kerb::BytesView app_data,
                                                 std::optional<kerb::Bytes> challenge_response) {
  auto creds = GetServiceTicket(service);
  if (!creds.ok()) {
    return creds.error();
  }

  Authenticator5 auth;
  auth.client = user_;
  auth.timestamp = clock_.Now();
  if (options_.send_subkey) {
    auth.subkey = prng_.NextDesKey().bytes();
    last_subkey_ = auth.subkey;
  }
  if (options_.send_service_name_check) {
    auth.service_name_check = service.ToString();
  }

  ApRequest5 req;
  req.sealed_ticket = creds.value().sealed_ticket;
  req.sealed_authenticator = auth.Seal(creds.value().session_key, options_.enc, prng_);
  req.want_mutual = want_mutual;
  req.app_data = kerb::Bytes(app_data.begin(), app_data.end());
  req.challenge_response = std::move(challenge_response);
  return req.ToTlv().Encode();
}

kerb::Result<ServiceCallResult> Client5::CallService(const ksim::NetAddress& service_addr,
                                                     const Principal& service, bool want_mutual,
                                                     kerb::BytesView app_data) {
  auto creds = GetServiceTicket(service);
  if (!creds.ok()) {
    return creds.error();
  }

  std::optional<kerb::Bytes> challenge_response;
  for (int attempt = 0; attempt < 2; ++attempt) {
    ksim::Time auth_time = 0;
    // Built fresh per send — and per retry: a retransmitted AP request
    // carries a new authenticator, so the server's replay cache never
    // mistakes a legitimate retry for an attack (the paper's E16 fix).
    auto reply = ServiceExchange(service_addr, [&]() -> kerb::Result<kerb::Bytes> {
      auth_time = clock_.Now();
      return MakeApRequest(service, want_mutual, app_data, challenge_response);
    });
    if (!reply.ok()) {
      return reply.error();
    }

    auto tlv = kenc::TlvMessage::Decode(reply.value());
    if (!tlv.ok()) {
      if (want_mutual) {
        // Fail closed: we demanded proof of the server's identity, so an
        // undecodable reply (e.g. corrupted in flight) is a failure, not an
        // application payload.
        return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                               "expected mutual-auth reply, got undecodable bytes");
      }
      // Bare application payload — no mutual auth or negotiation requested.
      ServiceCallResult result;
      result.channel_key = creds.value().session_key;
      result.app_reply = reply.value();
      return result;
    }

    if (tlv.value().type() == kMsgError) {
      auto err = KrbError5::FromTlv(tlv.value());
      if (err.ok() && err.value().code == kErrMethod && attempt == 0) {
        // Server demands challenge/response: decrypt the nonce, answer +1.
        auto challenge = UnsealTlv(creds.value().session_key, kMsgChallenge,
                                   err.value().e_data, options_.enc);
        if (!challenge.ok()) {
          return challenge.error();
        }
        auto nonce = challenge.value().GetU64(tag::kNonce);
        if (!nonce.ok()) {
          return nonce.error();
        }
        kenc::TlvMessage response(kMsgChallenge);
        response.SetU64(tag::kNonce, nonce.value() + 1);
        challenge_response =
            SealTlv(creds.value().session_key, response, options_.enc, prng_);
        continue;
      }
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                             err.ok() ? err.value().text : "server error");
    }

    ServiceCallResult result;
    result.channel_key = creds.value().session_key;

    if (tlv.value().type() == kMsgApRep) {
      auto sealed_part = tlv.value().GetBytes(tag::kSealedPart);
      if (!sealed_part.ok()) {
        return sealed_part.error();
      }
      auto part_tlv = UnsealTlv(creds.value().session_key, kMsgEncApRepPart,
                                sealed_part.value(), options_.enc);
      if (!part_tlv.ok()) {
        return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "mutual auth reply invalid");
      }
      auto part = EncApRepPart5::FromTlv(part_tlv.value());
      if (!part.ok()) {
        return part.error();
      }
      if (want_mutual && part.value().timestamp != auth_time) {
        return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                               "mutual auth timestamp mismatch");
      }
      if (part.value().subkey.has_value()) {
        kcrypto::DesBlock client_subkey = last_subkey_.value_or(kcrypto::DesBlock{});
        kcrypto::DesBlock channel;
        const kcrypto::DesBlock& multi = creds.value().session_key.bytes();
        for (size_t i = 0; i < 8; ++i) {
          channel[i] =
              static_cast<uint8_t>(multi[i] ^ client_subkey[i] ^ (*part.value().subkey)[i]);
        }
        result.channel_key = kcrypto::DesKey(kcrypto::FixParity(channel));
      }
      result.app_reply = tlv.value().GetOptionalBytes(tag::kAppData).value_or(kerb::Bytes{});
      return result;
    }

    // Bare application reply.
    if (want_mutual) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                             "expected mutual-auth reply, got bare payload");
    }
    result.app_reply = reply.value();
    return result;
  }
  return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "challenge/response failed");
}

void Client5::Logout() {
  tgs_creds_.reset();
  foreign_tgts_.clear();
  service_creds_.clear();
  last_subkey_.reset();
}

}  // namespace krb5
