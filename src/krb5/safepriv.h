// KRB_SAFE and KRB_PRIV session channels (Draft 3), with both replay-
// protection designs the paper weighs:
//
//   * kTimestamp — Draft 3 as written: millisecond/microsecond timestamps
//     plus a per-receiver cache of recently seen values. The paper's
//     objections: cache growth, and "if two authenticated or encrypted
//     sessions run concurrently, the cache must be shared between them, or
//     messages from one session can be replayed into the other."
//   * kSequence — the appendix's proposal: "a random initial sequence
//     number can be transmitted with the authenticator ... the cache is
//     then a simple last-message counter", which "also provides the ability
//     to detect deleted messages, by watching for gaps", and since each
//     session has its own initial sequence number, cross-stream replays
//     fail. (Experiment E11.)

#ifndef SRC_KRB5_SAFEPRIV_H_
#define SRC_KRB5_SAFEPRIV_H_

#include <set>

#include "src/crypto/prng.h"
#include "src/krb5/enclayer.h"
#include "src/sim/clock.h"

namespace krb5 {

enum class ReplayProtection {
  kTimestamp,
  kSequence,
  // The paper's encryption-layer alternative: "the IV be used as intended,
  // and be incremented or otherwise altered after each message. ... this
  // scheme would also allow detection of message deletions." Each message
  // is sealed under the next IV in a chain both ends derive from the
  // handshake; a replayed, reordered, or post-deletion message decrypts
  // under the wrong IV and fails the checksum.
  kChainedIv,
};

struct ChannelConfig {
  ReplayProtection protection = ReplayProtection::kTimestamp;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  EncLayerConfig enc;  // checksum type etc.
  bool private_messages = true;  // true: KRB_PRIV (encrypt); false: KRB_SAFE
};

// One direction of a protected session. Create one receiver per sender.
class SecureChannel {
 public:
  // `initial_seq` seeds both the send counter and the expected receive
  // counter; in a real exchange it travels in the authenticator / AP reply.
  SecureChannel(const kcrypto::DesKey& key, const ksim::HostClock* clock,
                ChannelConfig config, uint32_t initial_seq = 0);

  // Produces a KRB_PRIV (or KRB_SAFE) message.
  kerb::Bytes SealMessage(kerb::BytesView data, kcrypto::Prng& prng);

  // Verifies and extracts; enforces the configured replay protection.
  kerb::Result<kerb::Bytes> OpenMessage(kerb::BytesView sealed);

  uint64_t replays_detected() const { return replays_; }
  uint64_t gaps_detected() const { return gaps_; }
  size_t timestamp_cache_size() const { return seen_timestamps_.size(); }
  uint32_t next_send_seq() const { return send_seq_; }

 private:
  kcrypto::DesKey key_;
  const ksim::HostClock* clock_;
  ChannelConfig config_;
  uint32_t send_seq_;
  uint32_t expect_seq_;
  kcrypto::DesBlock send_iv_{};
  kcrypto::DesBlock recv_iv_{};
  std::set<ksim::Time> seen_timestamps_;
  uint64_t replays_ = 0;
  uint64_t gaps_ = 0;
};

}  // namespace krb5

#endif  // SRC_KRB5_SAFEPRIV_H_
