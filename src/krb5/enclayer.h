// The Version 5 Draft 3 encryption layer.
//
// The paper pressed for exactly this separation: "mechanisms such as random
// initial vectors (in place of confounders), block chaining and message
// authentication codes should be left to a separate encryption layer, whose
// information-hiding requirements are clearly explicated."
//
// Draft 3 sealed data is:  CBC_k( confounder || checksum || tlv-message )
// where the checksum (type configurable — CRC-32, MD4, or MD4-DES) is
// computed over the whole plaintext with the checksum field zeroed. The
// message type inside the TLV plaintext gives context separation.
//
// The weakness under study is the checksum choice: with CRC-32 the layer
// detects noise but not adversaries. Both are offered because Draft 3
// offered both; the hardened policy (src/hardened/policy.h) forbids CRC-32.
//
// Draft2PrivSeal/Unseal reproduce the *Draft 2* KRB_PRIV layout —
// (DATA, timestamp+direction, hostaddress, PAD) in plain CBC, no length
// field, no checksum — the format the paper's chosen-plaintext prefix
// attack defeats (experiment E7).

#ifndef SRC_KRB5_ENCLAYER_H_
#define SRC_KRB5_ENCLAYER_H_

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/checksum.h"
#include "src/crypto/des.h"
#include "src/crypto/prng.h"
#include "src/encoding/tlv.h"
#include "src/sim/clock.h"

namespace krb5 {

struct EncLayerConfig {
  kcrypto::ChecksumType checksum = kcrypto::ChecksumType::kCrc32;  // Draft 3 default
  bool use_confounder = true;
};

// Seals a TLV message. `prng` supplies the confounder.
kerb::Bytes SealTlv(const kcrypto::DesKey& key, const kenc::TlvMessage& msg,
                    const EncLayerConfig& config, kcrypto::Prng& prng);

// Same bytes as SealTlv, built in a caller-owned buffer (cleared first,
// capacity kept) with no intermediate allocations — the KDC serving path
// seals every ticket and enc-part through here.
void SealTlvInto(const kcrypto::DesKey& key, const kenc::TlvMessage& msg,
                 const EncLayerConfig& config, kcrypto::Prng& prng, kerb::Bytes& out);

// SealTlvInto for a message already encoded into a flat buffer (e.g. via
// kenc::TlvFieldWriter) — skips the TlvMessage field map entirely.
void SealEncodedInto(const kcrypto::DesKey& key, kerb::BytesView encoded_msg,
                     const EncLayerConfig& config, kcrypto::Prng& prng, kerb::Bytes& out);

// Unseals and verifies; also checks the embedded message type.
kerb::Result<kenc::TlvMessage> UnsealTlv(const kcrypto::DesKey& key, uint16_t expected_type,
                                         kerb::BytesView sealed, const EncLayerConfig& config);

// Explicit-IV variants — the paper's recommendation that "the IV be used as
// intended, and be incremented or otherwise altered after each message",
// rather than holding it constant and compensating with confounders. A
// receiver decrypting with the wrong position's IV gets garbage that fails
// the checksum, so per-message IV chaining detects replays, reorderings,
// and deletions with no timestamp cache and no extra field.
kerb::Bytes SealTlvWithIv(const kcrypto::DesKey& key, const kcrypto::DesBlock& iv,
                          const kenc::TlvMessage& msg, const EncLayerConfig& config,
                          kcrypto::Prng& prng);
kerb::Result<kenc::TlvMessage> UnsealTlvWithIv(const kcrypto::DesKey& key,
                                               const kcrypto::DesBlock& iv,
                                               uint16_t expected_type, kerb::BytesView sealed,
                                               const EncLayerConfig& config);

// The per-message IV schedule: iv_n = E_k(iv_{n-1} + 1). Deterministic for
// both ends from the negotiated initial IV.
kcrypto::DesBlock NextChainedIv(const kcrypto::DesKey& key, const kcrypto::DesBlock& iv);

// ---------------------------------------------------------------------------
// Draft 2 KRB_PRIV (vulnerable): encrypted portion is
//   (DATA, timestamp + direction, hostaddress, PAD)
// under plain CBC with a fixed IV. Prefixes of encryptions are encryptions
// of prefixes, and nothing marks where DATA ends.
struct Draft2Priv {
  kerb::Bytes data;
  ksim::Time timestamp = 0;
  uint8_t direction = 0;
  uint32_t host_address = 0;
};

kerb::Bytes Draft2PrivSeal(const kcrypto::DesKey& key, const Draft2Priv& msg);

// The format carries no leading length: the receiver strips trailing
// padding, reads the 13-byte trailer, and treats everything before it as
// DATA. Because nothing inside the plaintext marks where DATA was supposed
// to end, any block-aligned ciphertext prefix whose final bytes happen to
// look like padding + trailer is accepted as a complete, authentic message
// — the ambiguity experiment E7 exploits.
kerb::Result<Draft2Priv> Draft2PrivUnseal(const kcrypto::DesKey& key, kerb::BytesView sealed);

}  // namespace krb5

#endif  // SRC_KRB5_ENCLAYER_H_
