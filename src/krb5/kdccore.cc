#include "src/krb5/kdccore.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/encoding/io.h"
#include "src/obs/kobs.h"

namespace krb5 {

namespace {

// Assembles the common reply shape — a sealed ticket blob plus a sealed
// enc-part — into the context's reply buffer.
kerb::Bytes& EncodeReplyInto(uint16_t msg_type, kerb::BytesView sealed_ticket,
                             kerb::BytesView sealed_enc_part, krb4::KdcScratch& scratch) {
  kenc::Writer w(&scratch.reply);
  kenc::TlvFieldWriter reply(w, msg_type, 2);
  reply.AddBytes(tag::kTicketBlob, sealed_ticket);
  reply.AddBytes(tag::kSealedPart, sealed_enc_part);
  return scratch.reply;
}

// Streams `msg` into the scratch plaintext buffer and seals it — the
// per-request encode path, map-free end to end.
template <typename Msg>
void SealMessageInto(const kcrypto::DesKey& key, const Msg& msg, const EncLayerConfig& config,
                     kcrypto::Prng& prng, kerb::Bytes& plain_scratch, kerb::Bytes& out) {
  kenc::Writer w(&plain_scratch);
  msg.AppendTlvTo(w);
  SealEncodedInto(key, plain_scratch, config, prng, out);
}

}  // namespace

KdcCore5::KdcCore5(ksim::HostClock clock, std::string realm, KdcDatabase db, KdcPolicy5 policy)
    : clock_(clock),
      realm_(std::move(realm)),
      tgs_principal_(krb4::TgsPrincipal(realm_)),
      db_(std::move(db)),
      policy_(policy) {}

void KdcCore5::AddInterRealmKey(const std::string& other_realm, const kcrypto::DesKey& key) {
  interrealm_keys_.insert_or_assign(other_realm, key);
}

void KdcCore5::AddRealmRoute(const std::string& target_realm, const std::string& via_neighbor) {
  realm_routes_.insert_or_assign(target_realm, via_neighbor);
}

std::string KdcCore5::RouteToward(const std::string& target) const {
  if (interrealm_keys_.count(target) != 0) {
    return target;  // direct neighbor
  }
  auto it = realm_routes_.find(target);
  return it != realm_routes_.end() ? it->second : std::string();
}

kerb::Result<kcrypto::DesKey> KdcCore5::CachedLookup(const krb4::Principal& principal,
                                                     KdcContext& ctx) const {
  const uint64_t hash = krb4::PrincipalStore::Hash(principal);
  const uint64_t generation = db_.generation();
  kcrypto::DesKey key;
  if (ctx.keys.Get(generation, hash, principal, &key)) {
    if (kobs::Enabled()) {
      kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcKeyCacheHit, clock_.Now(), hash);
    }
    return key;
  }
  if (kobs::Enabled()) {
    kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcKeyCacheMiss, clock_.Now(), hash);
  }
  auto looked_up = db_.Lookup(principal);
  if (looked_up.ok()) {
    ctx.keys.Put(generation, hash, principal, looked_up.value());
  }
  return looked_up;
}

const kerb::Bytes* KdcCore5::CachedReply(const ksim::Message& msg, KdcContext& ctx) {
  if (policy_.reply_cache_window <= 0) {
    return nullptr;
  }
  const kerb::Bytes* cached =
      ctx.replies.Get(msg.src, msg.payload, clock_.Now(), policy_.reply_cache_window);
  if (cached != nullptr) {
    reply_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (kobs::Enabled()) {
      kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcReplyCacheHit, clock_.Now(), msg.src.host,
                 cached->size());
    }
  }
  return cached;
}

kerb::Bytes KdcCore5::RememberReply(const ksim::Message& msg, const kerb::Bytes& reply,
                                    KdcContext& ctx) {
  if (policy_.reply_cache_window > 0) {
    ctx.replies.Put(msg.src, msg.payload, reply, clock_.Now());
    if (kobs::Enabled()) {
      kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcReplyCacheStore, clock_.Now(), msg.src.host,
                 reply.size());
    }
  }
  return reply;
}

kerb::Result<kerb::Bytes> KdcCore5::HandleAs(const ksim::Message& msg, KdcContext& ctx) {
  return kobs::Enabled() ? TracedHandle(false, msg, ctx) : DoHandleAs(msg, ctx);
}

kerb::Result<kerb::Bytes> KdcCore5::HandleTgs(const ksim::Message& msg, KdcContext& ctx) {
  return kobs::Enabled() ? TracedHandle(true, msg, ctx) : DoHandleTgs(msg, ctx);
}

kerb::Result<kerb::Bytes> KdcCore5::TracedHandle(bool tgs, const ksim::Message& msg,
                                                 KdcContext& ctx) {
  const uint64_t exchange = tgs ? 1 : 0;
  kobs::Emit(kobs::kSrcKdc5, tgs ? kobs::Ev::kKdcTgsRequest : kobs::Ev::kKdcAsRequest,
             clock_.Now(), msg.src.host, msg.payload.size());
  kerb::Result<kerb::Bytes> reply = tgs ? DoHandleTgs(msg, ctx) : DoHandleAs(msg, ctx);
  if (reply.ok()) {
    kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcIssue, clock_.Now(), exchange,
               reply.value().size());
  } else {
    kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcDeny, clock_.Now(), exchange,
               static_cast<uint64_t>(reply.error().code));
  }
  return reply;
}

kerb::Result<kerb::Bytes> KdcCore5::DoHandleAs(const ksim::Message& msg, KdcContext& ctx) {
  as_requests_.fetch_add(1, std::memory_order_relaxed);
  if (const kerb::Bytes* cached = CachedReply(msg, ctx)) {
    return *cached;
  }
  auto tlv = kenc::TlvMessage::Decode(msg.payload);
  if (!tlv.ok()) {
    return tlv.error();
  }
  if (tlv.value().type() == kMsgAsPkReq) {
    auto pk_req = AsPkRequest5::FromTlv(tlv.value());
    if (!pk_req.ok()) {
      return pk_req.error();
    }
    return ServeAsPk(msg, pk_req.value(), ctx);
  }
  if (tlv.value().type() != kMsgAsReq) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "message type mismatch");
  }
  auto req = AsRequest5::FromTlv(tlv.value());
  if (!req.ok()) {
    return req.error();
  }
  return ServeAs(msg, req.value(), ctx);
}

kerb::Result<kerb::Bytes> KdcCore5::ServeAs(const ksim::Message& msg, const AsRequest5& req,
                                            KdcContext& ctx) {
  ksim::Time now = clock_.Now();

  // Rate limiting (the paper: "an enhancement to the server, to limit the
  // rate of requests from a single source, may be useful").
  if (policy_.as_rate_limit_per_minute > 0) {
    std::lock_guard lock(rate_mu_);
    auto& times = as_request_times_[msg.src.host];
    std::erase_if(times, [&](ksim::Time t) { return t < now - ksim::kMinute; });
    if (times.size() >= policy_.as_rate_limit_per_minute) {
      as_rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return kerb::MakeError(kerb::ErrorCode::kRateLimited, "AS request rate exceeded");
    }
    times.push_back(now);
  }

  auto client_key = CachedLookup(req.client, ctx);
  if (!client_key.ok()) {
    return client_key.error();
  }

  // Preauthentication (recommendation g): the request must carry
  // {nonce, timestamp}K_c, so only the key holder can obtain the reply —
  // and eavesdropping is required to harvest guessable material.
  if (policy_.require_preauth) {
    if (!req.padata.has_value()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication required");
    }
    auto padata =
        UnsealTlv(client_key.value(), kMsgPreauth, *req.padata, policy_.enc);
    if (!padata.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication invalid");
    }
    auto pa_nonce = padata.value().GetU64(tag::kNonce);
    auto pa_time = padata.value().GetU64(tag::kTimestamp);
    if (!pa_nonce.ok() || !pa_time.ok() || pa_nonce.value() != req.nonce) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication nonce mismatch");
    }
    if (std::llabs(static_cast<ksim::Time>(pa_time.value()) - now) >
        policy_.clock_skew_limit) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication stale");
    }
  }

  auto tgs_key = CachedLookup(tgs_principal_, ctx);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  ksim::Duration lifetime = std::min(req.lifetime, policy_.max_ticket_lifetime);
  kcrypto::DesKey session_key = ctx.prng.NextDesKey();

  Ticket5 tgt;
  tgt.service = tgs_principal_;
  tgt.client = req.client;
  tgt.flags = kFlagForwardable;
  if (!(policy_.allow_address_omission && (req.options & kOptOmitAddress))) {
    tgt.client_addr = msg.src.host;
  }
  tgt.issued_at = now;
  tgt.lifetime = lifetime;
  tgt.session_key = session_key.bytes();

  EncAsRepPart5 part;
  part.tgs_session_key = session_key.bytes();
  part.nonce = req.nonce;  // Draft 3's challenge/response to the client
  part.issued_at = now;
  part.lifetime = lifetime;

  SealMessageInto(tgs_key.value(), tgt, policy_.enc, ctx.prng, ctx.scratch.ticket_plain,
                  ctx.scratch.ticket_sealed);
  SealMessageInto(client_key.value(), part, policy_.enc, ctx.prng, ctx.scratch.body_plain,
                  ctx.scratch.body_sealed);
  return RememberReply(msg,
                       EncodeReplyInto(kMsgAsRep, ctx.scratch.ticket_sealed,
                                       ctx.scratch.body_sealed, ctx.scratch),
                       ctx);
}

void KdcCore5::EnablePkPreauth(kcrypto::DhGroup group) {
  kcrypto::EnsureEngine(group);
  pk_group_ = std::move(group);
}

kerb::Result<kerb::Bytes> KdcCore5::ServeAsPk(const ksim::Message& msg, const AsPkRequest5& req,
                                              KdcContext& ctx) {
  if (!pk_group_.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kUnsupported, "PK preauth not enabled");
  }
  pk_as_requests_.fetch_add(1, std::memory_order_relaxed);
  ksim::Time now = clock_.Now();

  // PK requests share the AS rate-limit budget: they are still unsolicited
  // work, and heavier per request than the password path.
  if (policy_.as_rate_limit_per_minute > 0) {
    std::lock_guard lock(rate_mu_);
    auto& times = as_request_times_[msg.src.host];
    std::erase_if(times, [&](ksim::Time t) { return t < now - ksim::kMinute; });
    if (times.size() >= policy_.as_rate_limit_per_minute) {
      as_rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return kerb::MakeError(kerb::ErrorCode::kRateLimited, "AS request rate exceeded");
    }
    times.push_back(now);
  }

  const kcrypto::DhGroup& group = *pk_group_;
  kcrypto::BigInt client_pub = kcrypto::BigInt::FromBytes(req.client_pub);
  // Fail closed on degenerate publics before any exponent touches them.
  if (auto valid = kcrypto::ValidateDhPublic(group, client_pub); !valid.ok()) {
    return valid.error();
  }

  auto client_key = CachedLookup(req.client, ctx);
  if (!client_key.ok()) {
    return client_key.error();
  }

  // Proof of possession, mandatory on this path regardless of
  // policy_.require_preauth and checked before any exponentiation: the
  // double seal below only hides {EncAsRepPart5}K_c from passive
  // eavesdroppers. Without it an active attacker could supply their own
  // ephemeral key, strip the outer DH layer, and grind the password layer
  // offline — exactly the oracle preauthentication exists to close. The
  // padata must carry the request nonce, a fresh timestamp, and an md4
  // binding of the DH public actually in this request, all sealed under
  // K_c, so the public cannot be substituted without knowing the key.
  if (!req.padata.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof required");
  }
  auto padata = UnsealTlv(client_key.value(), kMsgPreauth, *req.padata, policy_.enc);
  if (!padata.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof invalid");
  }
  auto pa_nonce = padata.value().GetU64(tag::kNonce);
  auto pa_time = padata.value().GetU64(tag::kTimestamp);
  auto pa_bind = padata.value().GetBytes(tag::kChecksum);
  if (!pa_nonce.ok() || !pa_time.ok() || !pa_bind.ok() || pa_nonce.value() != req.nonce) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof malformed");
  }
  if (!kcrypto::VerifyChecksum(kcrypto::ChecksumType::kMd4, req.client_pub, pa_bind.value())) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                           "PK preauth proof not bound to the DH public");
  }
  if (std::llabs(static_cast<ksim::Time>(pa_time.value()) - now) > policy_.clock_skew_limit) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof stale");
  }

  auto tgs_key = CachedLookup(tgs_principal_, ctx);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  // Our half of the exchange: g^b by the group's fixed-base comb table, the
  // shared secret by the cached sliding-window context.
  kcrypto::DhKeyPair server_pair = kcrypto::DhGenerate(group, ctx.prng);
  kcrypto::DesKey dh_key = kcrypto::DhDeriveKey(
      kcrypto::DhSharedSecret(group, server_pair.private_key, client_pub));

  ksim::Duration lifetime = std::min(req.lifetime, policy_.max_ticket_lifetime);
  kcrypto::DesKey session_key = ctx.prng.NextDesKey();

  Ticket5 tgt;
  tgt.service = tgs_principal_;
  tgt.client = req.client;
  tgt.flags = kFlagForwardable;
  if (!(policy_.allow_address_omission && (req.options & kOptOmitAddress))) {
    tgt.client_addr = msg.src.host;
  }
  tgt.issued_at = now;
  tgt.lifetime = lifetime;
  tgt.session_key = session_key.bytes();

  EncAsRepPart5 part;
  part.tgs_session_key = session_key.bytes();
  part.nonce = req.nonce;
  part.issued_at = now;
  part.lifetime = lifetime;

  SealMessageInto(tgs_key.value(), tgt, policy_.enc, ctx.prng, ctx.scratch.ticket_plain,
                  ctx.scratch.ticket_sealed);
  // Inner layer {EncAsRepPart5}K_c, then the DH wrapper over the inner
  // ciphertext — the password-keyed blob never appears bare on the wire.
  SealMessageInto(client_key.value(), part, policy_.enc, ctx.prng, ctx.scratch.body_plain,
                  ctx.scratch.body_sealed);
  kenc::TlvMessage wrap(kMsgPkEncWrap);
  wrap.SetBytes(tag::kSealedPart, ctx.scratch.body_sealed);
  SealTlvInto(dh_key, wrap, policy_.enc, ctx.prng, ctx.scratch.pk_outer);

  kenc::Writer w(&ctx.scratch.reply);
  kenc::TlvFieldWriter reply(w, kMsgAsPkRep, 3);
  reply.AddBytes(tag::kPkPublic, server_pair.public_key.ToBytes());
  reply.AddBytes(tag::kTicketBlob, ctx.scratch.ticket_sealed);
  reply.AddBytes(tag::kSealedPart, ctx.scratch.pk_outer);
  return RememberReply(msg, ctx.scratch.reply, ctx);
}

kerb::Result<kerb::Bytes> KdcCore5::DoHandleTgs(const ksim::Message& msg, KdcContext& ctx) {
  tgs_requests_.fetch_add(1, std::memory_order_relaxed);
  if (const kerb::Bytes* cached = CachedReply(msg, ctx)) {
    return *cached;
  }
  auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgTgsReq, msg.payload);
  if (!tlv.ok()) {
    return tlv.error();
  }
  auto decoded = TgsRequest5::FromTlv(tlv.value());
  if (!decoded.ok()) {
    return decoded.error();
  }
  return ServeTgs(msg, decoded.value(), ctx);
}

kerb::Result<kerb::Bytes> KdcCore5::ServeTgs(const ksim::Message& msg, const TgsRequest5& req,
                                             KdcContext& ctx) {
  ksim::Time now = clock_.Now();

  // Which key seals the presented TGT?
  kcrypto::DesKey tgt_key = [&]() -> kcrypto::DesKey {
    if (req.tgt_realm == realm_) {
      auto k = CachedLookup(tgs_principal_, ctx);
      return k.ok() ? k.value() : kcrypto::DesKey();
    }
    auto it = interrealm_keys_.find(req.tgt_realm);
    return it != interrealm_keys_.end() ? it->second : kcrypto::DesKey();
  }();

  // The same sealed TGT arrives on every request of a client's session, so
  // the decoded ticket is memoised per context (expiry is still checked
  // against `now` on every request, below).
  constexpr uint32_t kMemoTgt5 = 0x7467'3505;
  const Ticket5* tgt = ctx.unseals.Get<Ticket5>(kMemoTgt5, tgt_key, req.sealed_tgt);
  if (kobs::Enabled()) {
    kobs::Emit(kobs::kSrcKdc5,
               tgt != nullptr ? kobs::Ev::kKdcUnsealMemoHit : kobs::Ev::kKdcUnsealMemoMiss,
               clock_.Now(), req.sealed_tgt.size());
  }
  if (tgt == nullptr) {
    auto unsealed = Ticket5::Unseal(tgt_key, req.sealed_tgt, policy_.enc);
    if (unsealed.ok()) {
      tgt = ctx.unseals.Put(kMemoTgt5, tgt_key, req.sealed_tgt, std::move(unsealed.value()));
    } else if (req.tgt_realm == realm_) {
      // kvno fallback (same-realm only — interrealm keys are pairwise
      // config, not database entries): a TGT sealed before a TGS key
      // rotation keeps verifying under retained older ring versions until
      // its natural expiry. Each candidate key gets its own memo slot.
      krb4::PrincipalEntry tgs_entry;
      if (db_.store().LookupEntry(tgs_principal_, &tgs_entry)) {
        for (size_t i = 1; i < tgs_entry.keys.size() && tgt == nullptr; ++i) {
          const krb4::KeyVersion& kv = tgs_entry.keys[i];
          if (kv.not_after != 0 && now > kv.not_after) {
            continue;
          }
          tgt = ctx.unseals.Get<Ticket5>(kMemoTgt5, kv.key, req.sealed_tgt);
          if (tgt == nullptr) {
            auto old_unsealed = Ticket5::Unseal(kv.key, req.sealed_tgt, policy_.enc);
            if (old_unsealed.ok()) {
              tgt = ctx.unseals.Put(kMemoTgt5, kv.key, req.sealed_tgt,
                                    std::move(old_unsealed.value()));
            }
          }
          if (tgt != nullptr && kobs::Enabled()) {
            kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKvnoOldKeyAccept, now, kv.kvno, i);
          }
        }
      }
    }
    if (tgt == nullptr) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "ticket-granting ticket invalid");
    }
  }
  if ((*tgt).Expired(now)) {
    return kerb::MakeError(kerb::ErrorCode::kExpired, "ticket-granting ticket expired");
  }
  // A TGT must name a ticket-granting service for this realm.
  if ((*tgt).service.name != "krbtgt" || (*tgt).service.instance != realm_) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "enclosed ticket is not a TGT for us");
  }

  kcrypto::DesKey tgs_session((*tgt).session_key);
  auto auth =
      Authenticator5::Unseal(tgs_session, req.sealed_authenticator, policy_.enc);
  if (!auth.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  if (!(auth.value().client == (*tgt).client)) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  if (std::llabs(auth.value().timestamp - now) > policy_.clock_skew_limit) {
    return kerb::MakeError(kerb::ErrorCode::kSkew, "authenticator outside skew window");
  }
  if ((*tgt).client_addr.has_value() && *(*tgt).client_addr != msg.src.host) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "address mismatch");
  }

  // Verify the request checksum sealed in the authenticator. This is the
  // integrity protection for every unencrypted request field.
  if (!auth.value().checksum_type.has_value() || !auth.value().request_checksum.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "request checksum missing");
  }
  kcrypto::ChecksumType checksum_type = *auth.value().checksum_type;
  if (policy_.require_collision_proof_checksum && !kcrypto::IsCollisionProof(checksum_type)) {
    return kerb::MakeError(kerb::ErrorCode::kPolicy,
                           "collision-proof request checksum required");
  }
  if (!kcrypto::VerifyChecksum(checksum_type, req.ChecksumInput(),
                               *auth.value().request_checksum, tgs_session)) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "request checksum mismatch");
  }

  // Transited path: the serving TGS, not the client, appends the realm the
  // TGT came from.
  std::vector<std::string> transited = (*tgt).transited;
  if (req.tgt_realm != realm_) {
    transited.push_back(req.tgt_realm);
  }

  // An issued ticket must not outlive the credentials that vouched for it.
  ksim::Duration tgt_remaining = (*tgt).issued_at + (*tgt).lifetime - now;
  ksim::Duration lifetime =
      std::min({req.lifetime, policy_.max_ticket_lifetime, tgt_remaining});

  // Ticket forwarding (kOptForward): reissue the TGT, flagged FORWARDED,
  // bound to no address if requested. "Kerberos has a flag bit to indicate
  // that a ticket was forwarded, but does not include the original source."
  if (req.options & kOptForward) {
    if (!((*tgt).flags & kFlagForwardable)) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy, "TGT not forwardable");
    }
    kcrypto::DesKey new_session = ctx.prng.NextDesKey();
    Ticket5 forwarded = (*tgt);
    forwarded.flags |= kFlagForwarded;
    forwarded.session_key = new_session.bytes();
    forwarded.issued_at = now;
    forwarded.lifetime = lifetime;
    if (req.options & kOptOmitAddress) {
      forwarded.client_addr.reset();
    } else {
      forwarded.client_addr = msg.src.host;
    }

    EncTgsRepPart5 part;
    part.session_key = new_session.bytes();
    part.nonce = req.nonce;
    part.issued_at = now;
    part.lifetime = lifetime;

    SealMessageInto(tgt_key, forwarded, policy_.enc, ctx.prng, ctx.scratch.ticket_plain,
                    ctx.scratch.ticket_sealed);
    SealMessageInto(tgs_session, part, policy_.enc, ctx.prng, ctx.scratch.body_plain,
                    ctx.scratch.body_sealed);
    return RememberReply(msg,
                         EncodeReplyInto(kMsgTgsRep, ctx.scratch.ticket_sealed,
                                         ctx.scratch.body_sealed, ctx.scratch),
                         ctx);
  }

  // Cross-realm: route toward the service's realm.
  if (req.service.realm != realm_) {
    std::string neighbor = RouteToward(req.service.realm);
    if (neighbor.empty()) {
      return kerb::MakeError(kerb::ErrorCode::kNotFound,
                             "no route to realm " + req.service.realm);
    }
    kcrypto::DesKey hop_key = interrealm_keys_.at(neighbor);
    kcrypto::DesKey session_key = ctx.prng.NextDesKey();

    Ticket5 hop_tgt;
    hop_tgt.service = krb4::Principal{"krbtgt", neighbor, realm_};
    hop_tgt.client = (*tgt).client;
    hop_tgt.flags = (*tgt).flags;
    hop_tgt.client_addr = (*tgt).client_addr;
    hop_tgt.issued_at = now;
    hop_tgt.lifetime = lifetime;
    hop_tgt.session_key = session_key.bytes();
    hop_tgt.transited = transited;  // path so far; next hop appends us

    EncTgsRepPart5 part;
    part.session_key = session_key.bytes();
    part.nonce = req.nonce;
    part.issued_at = now;
    part.lifetime = lifetime;

    SealMessageInto(hop_key, hop_tgt, policy_.enc, ctx.prng, ctx.scratch.ticket_plain,
                    ctx.scratch.ticket_sealed);
    SealMessageInto(tgs_session, part, policy_.enc, ctx.prng, ctx.scratch.body_plain,
                    ctx.scratch.body_sealed);
    return RememberReply(msg,
                         EncodeReplyInto(kMsgTgsRep, ctx.scratch.ticket_sealed,
                                         ctx.scratch.body_sealed, ctx.scratch),
                         ctx);
  }

  // Which key will seal the new ticket, and which session key goes inside?
  kcrypto::DesKey sealing_key;
  kcrypto::DesKey session_key = ctx.prng.NextDesKey();

  if (req.options & kOptEncTktInSkey) {
    if (!policy_.allow_enc_tkt_in_skey) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy, "ENC-TKT-IN-SKEY disabled");
    }
    // The enclosed ticket must be a TGT of this realm; the new ticket is
    // sealed in ITS session key rather than the service's key.
    auto tgs_db_key = CachedLookup(tgs_principal_, ctx);
    if (!tgs_db_key.ok()) {
      return tgs_db_key.error();
    }
    auto enclosed = Ticket5::Unseal(tgs_db_key.value(), req.additional_ticket, policy_.enc);
    if (!enclosed.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "additional ticket invalid");
    }
    if (policy_.enforce_enc_tkt_cname_match) {
      // The requirement the Draft omitted: the enclosed ticket's client must
      // BE the service the new ticket is requested for (user-to-user).
      if (!(enclosed.value().client == req.service)) {
        return kerb::MakeError(kerb::ErrorCode::kPolicy,
                               "additional ticket cname does not match requested service");
      }
    }
    sealing_key = kcrypto::DesKey(enclosed.value().session_key);
  } else if (req.options & kOptReuseSkey) {
    if (!policy_.allow_reuse_skey) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy, "REUSE-SKEY disabled");
    }
    // Multicast-style issuance: the new ticket carries the SAME session key
    // as the enclosed ticket. (Draft 3 warns servers about DUPLICATE-SKEY
    // tickets; the option nevertheless overloads the basic protocol.)
    if (!req.additional_ticket_service.has_value()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                             "REUSE-SKEY needs the additional ticket's service");
    }
    auto donor_key = CachedLookup(*req.additional_ticket_service, ctx);
    if (!donor_key.ok()) {
      return donor_key.error();
    }
    auto donor = Ticket5::Unseal(donor_key.value(), req.additional_ticket, policy_.enc);
    if (!donor.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "additional ticket invalid");
    }
    if (!(donor.value().client == (*tgt).client)) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                             "additional ticket belongs to another client");
    }
    session_key = kcrypto::DesKey(donor.value().session_key);
    auto service_key = CachedLookup(req.service, ctx);
    if (!service_key.ok()) {
      return service_key.error();
    }
    sealing_key = service_key.value();
  } else {
    if (!policy_.allow_tickets_for_user_principals &&
        db_.Kind(req.service) == krb4::PrincipalKind::kUser) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy,
                             "tickets for user principals are not issued; register a "
                             "service instance with a random key");
    }
    auto service_key = CachedLookup(req.service, ctx);
    if (!service_key.ok()) {
      return service_key.error();
    }
    sealing_key = service_key.value();
  }

  Ticket5 ticket;
  ticket.service = req.service;
  ticket.client = (*tgt).client;
  ticket.flags = (*tgt).flags & ~kFlagForwardable;
  ticket.client_addr = (*tgt).client_addr;
  if (policy_.allow_address_omission && (req.options & kOptOmitAddress)) {
    ticket.client_addr.reset();
  }
  ticket.issued_at = now;
  ticket.lifetime = lifetime;
  ticket.session_key = session_key.bytes();
  ticket.transited = transited;

  EncTgsRepPart5 part;
  part.session_key = session_key.bytes();
  part.nonce = req.nonce;
  part.issued_at = now;
  part.lifetime = lifetime;

  SealMessageInto(sealing_key, ticket, policy_.enc, ctx.prng, ctx.scratch.ticket_plain,
                  ctx.scratch.ticket_sealed);
  SealMessageInto(tgs_session, part, policy_.enc, ctx.prng, ctx.scratch.body_plain,
                  ctx.scratch.body_sealed);
  return RememberReply(msg,
                       EncodeReplyInto(kMsgTgsRep, ctx.scratch.ticket_sealed,
                                       ctx.scratch.body_sealed, ctx.scratch),
                       ctx);
}

void KdcCore5::WarmKeyCache(const std::vector<const krb4::Principal*>& principals,
                            KdcContext& ctx) const {
  const uint64_t generation = db_.generation();
  std::vector<krb4::PrincipalStore::LookupRequest> misses;
  misses.reserve(principals.size());
  kcrypto::DesKey cached;
  for (const krb4::Principal* p : principals) {
    const uint64_t hash = krb4::PrincipalStore::Hash(*p);
    if (ctx.keys.Get(generation, hash, *p, &cached)) {
      continue;  // already warm from an earlier batch
    }
    bool queued = false;
    for (const auto& m : misses) {
      if (m.hash == hash && *m.principal == *p) {
        queued = true;
        break;
      }
    }
    if (!queued) {
      krb4::PrincipalStore::LookupRequest req;
      req.principal = p;
      req.hash = hash;
      misses.push_back(req);
    }
  }
  if (misses.empty()) {
    return;
  }
  db_.store().LookupMany(misses.data(), misses.size());
  for (const auto& m : misses) {
    if (m.found) {
      ctx.keys.Put(generation, m.hash, *m.principal, m.key);
    }
  }
}

void KdcCore5::HandleAsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                             std::vector<kerb::Result<kerb::Bytes>>& replies) {
  replies.reserve(replies.size() + n);
  if (kobs::Enabled()) {
    // Sequential fallback keeps the per-request trace event order intact.
    for (size_t i = 0; i < n; ++i) {
      replies.push_back(HandleAs(msgs[i], ctx));
    }
    return;
  }
  // Phase 1: decode every request (pure — no reply bytes depend on when the
  // decode runs). The decode mirrors DoHandleAs exactly — PK-preauth frames
  // ride in a parallel slot — so batched and sequential serving reach the
  // same verdict for every input.
  std::vector<kerb::Result<AsRequest5>> decoded;
  std::vector<std::optional<kerb::Result<AsPkRequest5>>> pk;
  decoded.reserve(n);
  pk.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto tlv = kenc::TlvMessage::Decode(msgs[i].payload);
    if (!tlv.ok()) {
      decoded.push_back(tlv.error());
      continue;
    }
    if (tlv.value().type() == kMsgAsPkReq) {
      pk[i] = AsPkRequest5::FromTlv(tlv.value());
      decoded.push_back(kerb::MakeError(kerb::ErrorCode::kBadFormat, "pk slot"));
      continue;
    }
    if (tlv.value().type() != kMsgAsReq) {
      decoded.push_back(kerb::MakeError(kerb::ErrorCode::kBadFormat, "message type mismatch"));
      continue;
    }
    decoded.push_back(AsRequest5::FromTlv(tlv.value()));
  }
  // Phase 2: resolve the batch's principal keys with at most one shard-lock
  // acquisition per shard.
  std::vector<const krb4::Principal*> wanted;
  wanted.reserve(n + 1);
  wanted.push_back(&tgs_principal_);
  for (size_t i = 0; i < n; ++i) {
    if (pk[i].has_value()) {
      if (pk[i]->ok()) {
        wanted.push_back(&pk[i]->value().client);
      }
    } else if (decoded[i].ok()) {
      wanted.push_back(&decoded[i].value().client);
    }
  }
  WarmKeyCache(wanted, ctx);
  // Phase 3: serve strictly in request order — the PRNG stream, the reply
  // cache and the rate limiter observe the exact one-at-a-time history.
  for (size_t i = 0; i < n; ++i) {
    as_requests_.fetch_add(1, std::memory_order_relaxed);
    if (const kerb::Bytes* cached = CachedReply(msgs[i], ctx)) {
      replies.push_back(*cached);
    } else if (pk[i].has_value()) {
      replies.push_back(pk[i]->ok() ? ServeAsPk(msgs[i], pk[i]->value(), ctx)
                                    : kerb::Result<kerb::Bytes>(pk[i]->error()));
    } else if (!decoded[i].ok()) {
      replies.push_back(decoded[i].error());
    } else {
      replies.push_back(ServeAs(msgs[i], decoded[i].value(), ctx));
    }
  }
}

void KdcCore5::HandleTgsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                              std::vector<kerb::Result<kerb::Bytes>>& replies) {
  replies.reserve(replies.size() + n);
  if (kobs::Enabled()) {
    for (size_t i = 0; i < n; ++i) {
      replies.push_back(HandleTgs(msgs[i], ctx));
    }
    return;
  }
  std::vector<kerb::Result<TgsRequest5>> decoded;
  decoded.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgTgsReq, msgs[i].payload);
    if (!tlv.ok()) {
      decoded.push_back(tlv.error());
      continue;
    }
    decoded.push_back(TgsRequest5::FromTlv(tlv.value()));
  }
  // The TGS path may need the service's key, the TGS's own key, and (for
  // REUSE-SKEY) the donor ticket's service key; warm all of them.
  std::vector<const krb4::Principal*> wanted;
  wanted.reserve(2 * n + 1);
  wanted.push_back(&tgs_principal_);
  for (const auto& d : decoded) {
    if (d.ok()) {
      wanted.push_back(&d.value().service);
      if (d.value().additional_ticket_service.has_value()) {
        wanted.push_back(&*d.value().additional_ticket_service);
      }
    }
  }
  WarmKeyCache(wanted, ctx);
  for (size_t i = 0; i < n; ++i) {
    tgs_requests_.fetch_add(1, std::memory_order_relaxed);
    if (const kerb::Bytes* cached = CachedReply(msgs[i], ctx)) {
      replies.push_back(*cached);
    } else if (!decoded[i].ok()) {
      replies.push_back(decoded[i].error());
    } else {
      replies.push_back(ServeTgs(msgs[i], decoded[i].value(), ctx));
    }
  }
}

}  // namespace krb5
