#include "src/krb5/kdc.h"

#include <utility>

namespace krb5 {

Kdc5::Kdc5(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
           ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
           KdcPolicy5 policy)
    : as_addr_(as_addr),
      tgs_addr_(tgs_addr),
      core_(clock, std::move(realm), std::move(db), policy),
      ctx_(prng) {
  if (policy.serve_batched) {
    // Single-request batches: the sim delivers one message at a time, but
    // every request still flows through the batched three-phase dispatch.
    net->Bind(as_addr_, [this](const ksim::Message& msg) { return BatchOne(false, msg); });
    net->Bind(tgs_addr_, [this](const ksim::Message& msg) { return BatchOne(true, msg); });
  } else {
    net->Bind(as_addr_, [this](const ksim::Message& msg) { return core_.HandleAs(msg, ctx_); });
    net->Bind(tgs_addr_,
              [this](const ksim::Message& msg) { return core_.HandleTgs(msg, ctx_); });
  }
}

kerb::Result<kerb::Bytes> Kdc5::BatchOne(bool tgs, const ksim::Message& msg) {
  std::vector<kerb::Result<kerb::Bytes>> replies;
  if (tgs) {
    core_.HandleTgsBatch(&msg, 1, ctx_, replies);
  } else {
    core_.HandleAsBatch(&msg, 1, ctx_, replies);
  }
  return std::move(replies.front());
}

}  // namespace krb5
