#include "src/krb5/kdc.h"

#include <utility>

namespace krb5 {

Kdc5::Kdc5(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
           ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
           KdcPolicy5 policy)
    : as_addr_(as_addr),
      tgs_addr_(tgs_addr),
      core_(clock, std::move(realm), std::move(db), policy),
      ctx_(prng) {
  net->Bind(as_addr_, [this](const ksim::Message& msg) { return core_.HandleAs(msg, ctx_); });
  net->Bind(tgs_addr_, [this](const ksim::Message& msg) { return core_.HandleTgs(msg, ctx_); });
}

}  // namespace krb5
