#include "src/krb5/kdc.h"

#include <algorithm>
#include <cstdlib>

namespace krb5 {

Kdc5::Kdc5(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
           ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
           KdcPolicy5 policy)
    : as_addr_(as_addr),
      tgs_addr_(tgs_addr),
      clock_(clock),
      realm_(std::move(realm)),
      db_(std::move(db)),
      prng_(prng),
      policy_(policy) {
  net->Bind(as_addr_, [this](const ksim::Message& msg) { return HandleAs(msg); });
  net->Bind(tgs_addr_, [this](const ksim::Message& msg) { return HandleTgs(msg); });
}

void Kdc5::AddInterRealmKey(const std::string& other_realm, const kcrypto::DesKey& key) {
  interrealm_keys_.insert_or_assign(other_realm, key);
}

void Kdc5::AddRealmRoute(const std::string& target_realm, const std::string& via_neighbor) {
  realm_routes_.insert_or_assign(target_realm, via_neighbor);
}

std::string Kdc5::RouteToward(const std::string& target) const {
  if (interrealm_keys_.count(target) != 0) {
    return target;  // direct neighbor
  }
  auto it = realm_routes_.find(target);
  return it != realm_routes_.end() ? it->second : std::string();
}

kerb::Result<kerb::Bytes> Kdc5::HandleAs(const ksim::Message& msg) {
  ++as_requests_;
  auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgAsReq, msg.payload);
  if (!tlv.ok()) {
    return tlv.error();
  }
  auto req = AsRequest5::FromTlv(tlv.value());
  if (!req.ok()) {
    return req.error();
  }

  ksim::Time now = clock_.Now();

  // Rate limiting (the paper: "an enhancement to the server, to limit the
  // rate of requests from a single source, may be useful").
  if (policy_.as_rate_limit_per_minute > 0) {
    auto& times = as_request_times_[msg.src.host];
    std::erase_if(times, [&](ksim::Time t) { return t < now - ksim::kMinute; });
    if (times.size() >= policy_.as_rate_limit_per_minute) {
      ++as_rate_limited_;
      return kerb::MakeError(kerb::ErrorCode::kRateLimited, "AS request rate exceeded");
    }
    times.push_back(now);
  }

  auto client_key = db_.Lookup(req.value().client);
  if (!client_key.ok()) {
    return client_key.error();
  }

  // Preauthentication (recommendation g): the request must carry
  // {nonce, timestamp}K_c, so only the key holder can obtain the reply —
  // and eavesdropping is required to harvest guessable material.
  if (policy_.require_preauth) {
    if (!req.value().padata.has_value()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication required");
    }
    auto padata =
        UnsealTlv(client_key.value(), kMsgPreauth, *req.value().padata, policy_.enc);
    if (!padata.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication invalid");
    }
    auto pa_nonce = padata.value().GetU64(tag::kNonce);
    auto pa_time = padata.value().GetU64(tag::kTimestamp);
    if (!pa_nonce.ok() || !pa_time.ok() || pa_nonce.value() != req.value().nonce) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication nonce mismatch");
    }
    if (std::llabs(static_cast<ksim::Time>(pa_time.value()) - now) >
        policy_.clock_skew_limit) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "preauthentication stale");
    }
  }

  Principal tgs = krb4::TgsPrincipal(realm_);
  auto tgs_key = db_.Lookup(tgs);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  ksim::Duration lifetime = std::min(req.value().lifetime, policy_.max_ticket_lifetime);
  kcrypto::DesKey session_key = prng_.NextDesKey();

  Ticket5 tgt;
  tgt.service = tgs;
  tgt.client = req.value().client;
  tgt.flags = kFlagForwardable;
  if (!(policy_.allow_address_omission && (req.value().options & kOptOmitAddress))) {
    tgt.client_addr = msg.src.host;
  }
  tgt.issued_at = now;
  tgt.lifetime = lifetime;
  tgt.session_key = session_key.bytes();

  EncAsRepPart5 part;
  part.tgs_session_key = session_key.bytes();
  part.nonce = req.value().nonce;  // Draft 3's challenge/response to the client
  part.issued_at = now;
  part.lifetime = lifetime;

  AsReply5 reply;
  reply.sealed_tgt = tgt.Seal(tgs_key.value(), policy_.enc, prng_);
  reply.sealed_enc_part = SealTlv(client_key.value(), part.ToTlv(), policy_.enc, prng_);
  return reply.ToTlv().Encode();
}

kerb::Result<kerb::Bytes> Kdc5::HandleTgs(const ksim::Message& msg) {
  ++tgs_requests_;
  auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgTgsReq, msg.payload);
  if (!tlv.ok()) {
    return tlv.error();
  }
  auto decoded = TgsRequest5::FromTlv(tlv.value());
  if (!decoded.ok()) {
    return decoded.error();
  }
  const TgsRequest5& req = decoded.value();
  ksim::Time now = clock_.Now();

  // Which key seals the presented TGT?
  kcrypto::DesKey tgt_key = [&]() -> kcrypto::DesKey {
    if (req.tgt_realm == realm_) {
      auto k = db_.Lookup(krb4::TgsPrincipal(realm_));
      return k.ok() ? k.value() : kcrypto::DesKey();
    }
    auto it = interrealm_keys_.find(req.tgt_realm);
    return it != interrealm_keys_.end() ? it->second : kcrypto::DesKey();
  }();

  auto tgt = Ticket5::Unseal(tgt_key, req.sealed_tgt, policy_.enc);
  if (!tgt.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "ticket-granting ticket invalid");
  }
  if (tgt.value().Expired(now)) {
    return kerb::MakeError(kerb::ErrorCode::kExpired, "ticket-granting ticket expired");
  }
  // A TGT must name a ticket-granting service for this realm.
  if (tgt.value().service.name != "krbtgt" || tgt.value().service.instance != realm_) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "enclosed ticket is not a TGT for us");
  }

  kcrypto::DesKey tgs_session(tgt.value().session_key);
  auto auth =
      Authenticator5::Unseal(tgs_session, req.sealed_authenticator, policy_.enc);
  if (!auth.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  if (!(auth.value().client == tgt.value().client)) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  if (std::llabs(auth.value().timestamp - now) > policy_.clock_skew_limit) {
    return kerb::MakeError(kerb::ErrorCode::kSkew, "authenticator outside skew window");
  }
  if (tgt.value().client_addr.has_value() && *tgt.value().client_addr != msg.src.host) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "address mismatch");
  }

  // Verify the request checksum sealed in the authenticator. This is the
  // integrity protection for every unencrypted request field.
  if (!auth.value().checksum_type.has_value() || !auth.value().request_checksum.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "request checksum missing");
  }
  kcrypto::ChecksumType checksum_type = *auth.value().checksum_type;
  if (policy_.require_collision_proof_checksum && !kcrypto::IsCollisionProof(checksum_type)) {
    return kerb::MakeError(kerb::ErrorCode::kPolicy,
                           "collision-proof request checksum required");
  }
  if (!kcrypto::VerifyChecksum(checksum_type, req.ChecksumInput(),
                               *auth.value().request_checksum, tgs_session)) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "request checksum mismatch");
  }

  // Transited path: the serving TGS, not the client, appends the realm the
  // TGT came from.
  std::vector<std::string> transited = tgt.value().transited;
  if (req.tgt_realm != realm_) {
    transited.push_back(req.tgt_realm);
  }

  // An issued ticket must not outlive the credentials that vouched for it.
  ksim::Duration tgt_remaining = tgt.value().issued_at + tgt.value().lifetime - now;
  ksim::Duration lifetime =
      std::min({req.lifetime, policy_.max_ticket_lifetime, tgt_remaining});

  // Ticket forwarding (kOptForward): reissue the TGT, flagged FORWARDED,
  // bound to no address if requested. "Kerberos has a flag bit to indicate
  // that a ticket was forwarded, but does not include the original source."
  if (req.options & kOptForward) {
    if (!(tgt.value().flags & kFlagForwardable)) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy, "TGT not forwardable");
    }
    kcrypto::DesKey new_session = prng_.NextDesKey();
    Ticket5 forwarded = tgt.value();
    forwarded.flags |= kFlagForwarded;
    forwarded.session_key = new_session.bytes();
    forwarded.issued_at = now;
    forwarded.lifetime = lifetime;
    if (req.options & kOptOmitAddress) {
      forwarded.client_addr.reset();
    } else {
      forwarded.client_addr = msg.src.host;
    }

    EncTgsRepPart5 part;
    part.session_key = new_session.bytes();
    part.nonce = req.nonce;
    part.issued_at = now;
    part.lifetime = lifetime;

    TgsReply5 reply;
    reply.sealed_ticket = forwarded.Seal(tgt_key, policy_.enc, prng_);
    reply.sealed_enc_part = SealTlv(tgs_session, part.ToTlv(), policy_.enc, prng_);
    return reply.ToTlv().Encode();
  }

  // Cross-realm: route toward the service's realm.
  if (req.service.realm != realm_) {
    std::string neighbor = RouteToward(req.service.realm);
    if (neighbor.empty()) {
      return kerb::MakeError(kerb::ErrorCode::kNotFound,
                             "no route to realm " + req.service.realm);
    }
    kcrypto::DesKey hop_key = interrealm_keys_.at(neighbor);
    kcrypto::DesKey session_key = prng_.NextDesKey();

    Ticket5 hop_tgt;
    hop_tgt.service = Principal{"krbtgt", neighbor, realm_};
    hop_tgt.client = tgt.value().client;
    hop_tgt.flags = tgt.value().flags;
    hop_tgt.client_addr = tgt.value().client_addr;
    hop_tgt.issued_at = now;
    hop_tgt.lifetime = lifetime;
    hop_tgt.session_key = session_key.bytes();
    hop_tgt.transited = transited;  // path so far; next hop appends us

    EncTgsRepPart5 part;
    part.session_key = session_key.bytes();
    part.nonce = req.nonce;
    part.issued_at = now;
    part.lifetime = lifetime;

    TgsReply5 reply;
    reply.sealed_ticket = hop_tgt.Seal(hop_key, policy_.enc, prng_);
    reply.sealed_enc_part = SealTlv(tgs_session, part.ToTlv(), policy_.enc, prng_);
    return reply.ToTlv().Encode();
  }

  // Which key will seal the new ticket, and which session key goes inside?
  kcrypto::DesKey sealing_key;
  kcrypto::DesKey session_key = prng_.NextDesKey();

  if (req.options & kOptEncTktInSkey) {
    if (!policy_.allow_enc_tkt_in_skey) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy, "ENC-TKT-IN-SKEY disabled");
    }
    // The enclosed ticket must be a TGT of this realm; the new ticket is
    // sealed in ITS session key rather than the service's key.
    auto tgs_db_key = db_.Lookup(krb4::TgsPrincipal(realm_));
    if (!tgs_db_key.ok()) {
      return tgs_db_key.error();
    }
    auto enclosed = Ticket5::Unseal(tgs_db_key.value(), req.additional_ticket, policy_.enc);
    if (!enclosed.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "additional ticket invalid");
    }
    if (policy_.enforce_enc_tkt_cname_match) {
      // The requirement the Draft omitted: the enclosed ticket's client must
      // BE the service the new ticket is requested for (user-to-user).
      if (!(enclosed.value().client == req.service)) {
        return kerb::MakeError(kerb::ErrorCode::kPolicy,
                               "additional ticket cname does not match requested service");
      }
    }
    sealing_key = kcrypto::DesKey(enclosed.value().session_key);
  } else if (req.options & kOptReuseSkey) {
    if (!policy_.allow_reuse_skey) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy, "REUSE-SKEY disabled");
    }
    // Multicast-style issuance: the new ticket carries the SAME session key
    // as the enclosed ticket. (Draft 3 warns servers about DUPLICATE-SKEY
    // tickets; the option nevertheless overloads the basic protocol.)
    if (!req.additional_ticket_service.has_value()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                             "REUSE-SKEY needs the additional ticket's service");
    }
    auto donor_key = db_.Lookup(*req.additional_ticket_service);
    if (!donor_key.ok()) {
      return donor_key.error();
    }
    auto donor = Ticket5::Unseal(donor_key.value(), req.additional_ticket, policy_.enc);
    if (!donor.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "additional ticket invalid");
    }
    if (!(donor.value().client == tgt.value().client)) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                             "additional ticket belongs to another client");
    }
    session_key = kcrypto::DesKey(donor.value().session_key);
    auto service_key = db_.Lookup(req.service);
    if (!service_key.ok()) {
      return service_key.error();
    }
    sealing_key = service_key.value();
  } else {
    if (!policy_.allow_tickets_for_user_principals &&
        db_.Kind(req.service) == krb4::PrincipalKind::kUser) {
      return kerb::MakeError(kerb::ErrorCode::kPolicy,
                             "tickets for user principals are not issued; register a "
                             "service instance with a random key");
    }
    auto service_key = db_.Lookup(req.service);
    if (!service_key.ok()) {
      return service_key.error();
    }
    sealing_key = service_key.value();
  }

  Ticket5 ticket;
  ticket.service = req.service;
  ticket.client = tgt.value().client;
  ticket.flags = tgt.value().flags & ~kFlagForwardable;
  ticket.client_addr = tgt.value().client_addr;
  if (policy_.allow_address_omission && (req.options & kOptOmitAddress)) {
    ticket.client_addr.reset();
  }
  ticket.issued_at = now;
  ticket.lifetime = lifetime;
  ticket.session_key = session_key.bytes();
  ticket.transited = transited;

  EncTgsRepPart5 part;
  part.session_key = session_key.bytes();
  part.nonce = req.nonce;
  part.issued_at = now;
  part.lifetime = lifetime;

  TgsReply5 reply;
  reply.sealed_ticket = ticket.Seal(sealing_key, policy_.enc, prng_);
  reply.sealed_enc_part = SealTlv(tgs_session, part.ToTlv(), policy_.enc, prng_);
  return reply.ToTlv().Encode();
}

}  // namespace krb5
