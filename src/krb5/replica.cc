#include "src/krb5/replica.h"

#include <utility>

#include "src/store/replicaset.h"

namespace krb5 {

KdcReplicaSet5::KdcReplicaSet5(ksim::Network* net, const ksim::NetAddress& as_addr,
                               const ksim::NetAddress& tgs_addr, ksim::HostClock clock,
                               std::string realm, KdcDatabase db, kcrypto::Prng prng, int slaves,
                               KdcPolicy5 policy) {
  auto topo = kstore::BuildReplicaTopology<Kdc5>(net, as_addr, tgs_addr, clock, std::move(realm),
                                                 std::move(db), prng, slaves, policy);
  primary_ = std::move(topo.primary);
  slaves_ = std::move(topo.slaves);
  as_endpoints_ = std::move(topo.as_endpoints);
  tgs_endpoints_ = std::move(topo.tgs_endpoints);
  if (!slaves_.empty()) {
    propagation_ = std::make_unique<krb4::ReplicaPropagation>(
        net, primary_->realm(), &primary_->database(), as_addr.host);
    for (size_t i = 0; i < slaves_.size(); ++i) {
      propagation_->AddSlave(as_endpoints_[i + 1].host, &slaves_[i]->database());
    }
  }
}

void KdcReplicaSet5::Propagate() {
  if (propagation_ != nullptr) {
    propagation_->Propagate();
  }
}

void KdcReplicaSet5::AttachClient(Client5& client) const {
  for (size_t i = 1; i < as_endpoints_.size(); ++i) {
    client.AddSlaveKdc(as_endpoints_[i], tgs_endpoints_[i]);
  }
}

void KdcReplicaSet5::ForEach(const std::function<void(Kdc5&)>& fn) {
  fn(*primary_);
  for (auto& slave : slaves_) {
    fn(*slave);
  }
}

}  // namespace krb5
