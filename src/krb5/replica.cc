#include "src/krb5/replica.h"

#include <utility>

namespace krb5 {

KdcReplicaSet5::KdcReplicaSet5(ksim::Network* net, const ksim::NetAddress& as_addr,
                               const ksim::NetAddress& tgs_addr, ksim::HostClock clock,
                               std::string realm, KdcDatabase db, kcrypto::Prng prng, int slaves,
                               KdcPolicy5 policy) {
  as_endpoints_.push_back(as_addr);
  tgs_endpoints_.push_back(tgs_addr);
  std::vector<kcrypto::Prng> slave_prngs;
  for (int i = 0; i < slaves; ++i) {
    slave_prngs.push_back(prng.Fork());
  }
  for (int i = 0; i < slaves; ++i) {
    ksim::NetAddress slave_as{as_addr.host + 1 + static_cast<uint32_t>(i), as_addr.port};
    ksim::NetAddress slave_tgs{tgs_addr.host + 1 + static_cast<uint32_t>(i), tgs_addr.port};
    as_endpoints_.push_back(slave_as);
    tgs_endpoints_.push_back(slave_tgs);
    slaves_.push_back(std::make_unique<Kdc5>(net, slave_as, slave_tgs, clock, realm, db,
                                             slave_prngs[static_cast<size_t>(i)], policy));
  }
  primary_ = std::make_unique<Kdc5>(net, as_addr, tgs_addr, clock, std::move(realm),
                                    std::move(db), prng, policy);
}

void KdcReplicaSet5::Propagate() {
  for (auto& slave : slaves_) {
    slave->database() = primary_->database();
  }
}

void KdcReplicaSet5::AttachClient(Client5& client) const {
  for (size_t i = 1; i < as_endpoints_.size(); ++i) {
    client.AddSlaveKdc(as_endpoints_[i], tgs_endpoints_[i]);
  }
}

void KdcReplicaSet5::ForEach(const std::function<void(Kdc5&)>& fn) {
  fn(*primary_);
  for (auto& slave : slaves_) {
    fn(*slave);
  }
}

}  // namespace krb5
