// V5 KDC replica set: one primary plus N read-only slaves.
//
// Same model as krb4::KdcReplicaSet4 (see that header for the paper
// context and the durability/propagation design): slaves serve from a
// snapshot of the primary's database at derived addresses (primary host +
// 1 + index), Propagate() runs one authenticated kprop cycle over the
// simulated network, and clients fail over primary-first. Inter-realm keys
// and routes are part of policy-time setup, so configure them on every
// replica via ForEach before traffic starts.

#ifndef SRC_KRB5_REPLICA_H_
#define SRC_KRB5_REPLICA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/krb4/kdcstore.h"
#include "src/krb5/client.h"
#include "src/krb5/kdc.h"

namespace krb5 {

class KdcReplicaSet5 {
 public:
  // Slave PRNG streams fork off `prng` first; a zero-slave set drives the
  // primary with the untouched stream, byte-identical to a bare Kdc5.
  KdcReplicaSet5(ksim::Network* net, const ksim::NetAddress& as_addr,
                 const ksim::NetAddress& tgs_addr, ksim::HostClock clock, std::string realm,
                 KdcDatabase db, kcrypto::Prng prng, int slaves, KdcPolicy5 policy = {});

  Kdc5& primary() { return *primary_; }
  Kdc5& slave(int i) { return *slaves_.at(static_cast<size_t>(i)); }
  int slave_count() const { return static_cast<int>(slaves_.size()); }

  const std::vector<ksim::NetAddress>& as_endpoints() const { return as_endpoints_; }
  const std::vector<ksim::NetAddress>& tgs_endpoints() const { return tgs_endpoints_; }

  // One kprop cycle shipping WAL deltas to every slave; no-op with zero
  // slaves.
  void Propagate();

  // Registers the slave endpoints on a client's failover lists.
  void AttachClient(Client5& client) const;

  // Applies setup (inter-realm keys, routes) to the primary and all slaves.
  void ForEach(const std::function<void(Kdc5&)>& fn);

  // The durable-store machinery; null with zero slaves.
  krb4::ReplicaPropagation* propagation() { return propagation_.get(); }

 private:
  std::unique_ptr<Kdc5> primary_;
  std::vector<std::unique_ptr<Kdc5>> slaves_;
  std::vector<ksim::NetAddress> as_endpoints_;
  std::vector<ksim::NetAddress> tgs_endpoints_;
  std::unique_ptr<krb4::ReplicaPropagation> propagation_;
};

}  // namespace krb5

#endif  // SRC_KRB5_REPLICA_H_
