// Thread-safe Version 5 Draft 3 KDC serving core.
//
// Same split as src/krb4/kdccore.h: the Kdc5 wrapper drives this core with
// one KdcContext on the simulation thread (byte-identical replies, pinned
// by tests/integration/kdc_capture_test.cc); the parallel bench harness
// drives it with a KERB_KDC_THREADS pool of contexts.
//
// Shared state and its protection:
//   * principal store — shard reader/writer locks inside PrincipalStore;
//   * policy, inter-realm keys, realm routes — configured at setup time,
//     before any parallel serving starts, and read-only afterwards (the
//     sim's single thread may still mutate them between calls, exactly as
//     before the split);
//   * AS rate-limiter table — its own mutex, taken only when the policy
//     enables rate limiting;
//   * request counters — atomics.

#ifndef SRC_KRB5_KDCCORE_H_
#define SRC_KRB5_KDCCORE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/dh.h"
#include "src/krb4/database.h"
#include "src/krb4/kdccore.h"
#include "src/krb5/messages.h"
#include "src/sim/network.h"

namespace krb5 {

using krb4::KdcContext;
using krb4::KdcDatabase;

struct KdcPolicy5 {
  EncLayerConfig enc;  // checksum defaults to CRC-32, per Draft 3
  bool allow_enc_tkt_in_skey = true;
  bool allow_reuse_skey = true;
  // "the designers intended to require that the cname in the additional
  // ticket match the name of the server for which the new ticket is being
  // requested ... the requirement was inadvertently omitted from Draft 3."
  bool enforce_enc_tkt_cname_match = false;
  // Recommendation (g): authenticate the user to Kerberos in the initial
  // exchange (padata = {nonce}K_c).
  bool require_preauth = false;
  // Require a collision-proof checksum on TGS request integrity.
  bool require_collision_proof_checksum = false;
  // AS requests per source host per minute; 0 = unlimited.
  uint32_t as_rate_limit_per_minute = 0;
  ksim::Duration max_ticket_lifetime = 8 * ksim::kHour;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  // V5 permits tickets without addresses when the client asks.
  bool allow_address_omission = true;
  // Retransmit-safe reply cache (see krb4::KdcOptions::reply_cache_window):
  // a duplicated request returns the stored reply instead of minting a
  // second ticket. Zero disables; the chaos testbeds enable it.
  ksim::Duration reply_cache_window = 0;
  // Draft-era behaviour: "Clients may be treated as services, and tickets
  // to the client, encrypted by K_c, may be obtained by any user." When
  // false, service tickets naming user principals are refused (E15); the
  // supported alternative is registering separate instances with truly
  // random keys (the keystore supplies them).
  bool allow_tickets_for_user_principals = true;
  // Route the Bind handlers through HandleAsBatch/HandleTgsBatch (with
  // single-request batches) instead of HandleAs/HandleTgs, so the sim's
  // one-at-a-time delivery exercises the batched dispatch path. Verdicts
  // are pinned identical to sequential serving by the chaos tests.
  bool serve_batched = false;
};

class KdcCore5 {
 public:
  KdcCore5(ksim::HostClock clock, std::string realm, KdcDatabase db, KdcPolicy5 policy);

  kerb::Result<kerb::Bytes> HandleAs(const ksim::Message& msg, KdcContext& ctx);
  kerb::Result<kerb::Bytes> HandleTgs(const ksim::Message& msg, KdcContext& ctx);

  // Batched dispatch, same contract as KdcCore4::HandleAsBatch: decode the
  // whole batch, resolve its principal keys through one LookupMany pass,
  // then serve strictly in request order. Replies are appended to
  // `replies`, byte-identical to the one-at-a-time handlers (pinned by
  // tests/integration/kdc_batch_test.cc). Falls back to the sequential
  // handlers while tracing is enabled.
  void HandleAsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                     std::vector<kerb::Result<kerb::Bytes>>& replies);
  void HandleTgsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                      std::vector<kerb::Result<kerb::Bytes>>& replies);

  // Enables the public-key preauthenticated AS variant (kMsgAsPkReq) over
  // `group`. Builds the group's cached modexp engine — Montgomery context
  // plus fixed-base g^x comb table — up front; call before serving, the
  // group is read-only once requests flow.
  void EnablePkPreauth(kcrypto::DhGroup group);
  bool pk_preauth_enabled() const { return pk_group_.has_value(); }

  const std::string& realm() const { return realm_; }
  KdcDatabase& database() { return db_; }
  KdcPolicy5& policy() { return policy_; }

  void AddInterRealmKey(const std::string& other_realm, const kcrypto::DesKey& key);
  void AddRealmRoute(const std::string& target_realm, const std::string& via_neighbor);

  uint64_t as_requests_served() const { return as_requests_.load(std::memory_order_relaxed); }
  uint64_t pk_as_requests_served() const {
    return pk_as_requests_.load(std::memory_order_relaxed);
  }
  uint64_t as_requests_rate_limited() const {
    return as_rate_limited_.load(std::memory_order_relaxed);
  }
  uint64_t tgs_requests_served() const { return tgs_requests_.load(std::memory_order_relaxed); }
  uint64_t reply_cache_hits() const { return reply_cache_hits_.load(std::memory_order_relaxed); }

 private:
  // The protocol logic, unchanged; the public handlers wrap it in request
  // and issue/deny trace events when a kobs::Trace is installed.
  kerb::Result<kerb::Bytes> DoHandleAs(const ksim::Message& msg, KdcContext& ctx);
  kerb::Result<kerb::Bytes> DoHandleTgs(const ksim::Message& msg, KdcContext& ctx);
  kerb::Result<kerb::Bytes> TracedHandle(bool tgs, const ksim::Message& msg, KdcContext& ctx);

  // Everything after the decode — shared by the one-at-a-time handlers and
  // the serve phase of the batch path.
  kerb::Result<kerb::Bytes> ServeAs(const ksim::Message& msg, const AsRequest5& req,
                                    KdcContext& ctx);
  kerb::Result<kerb::Bytes> ServeAsPk(const ksim::Message& msg, const AsPkRequest5& req,
                                      KdcContext& ctx);
  kerb::Result<kerb::Bytes> ServeTgs(const ksim::Message& msg, const TgsRequest5& req,
                                     KdcContext& ctx);

  // Pre-resolves the batch's principals into the context's key cache via
  // PrincipalStore::LookupMany. Purely a cache warm: serve-phase lookups
  // observe identical keys either way.
  void WarmKeyCache(const std::vector<const krb4::Principal*>& principals,
                    KdcContext& ctx) const;

  kerb::Result<kcrypto::DesKey> CachedLookup(const krb4::Principal& principal,
                                             KdcContext& ctx) const;
  // Serves a fresh duplicate from the context's reply cache, if enabled.
  const kerb::Bytes* CachedReply(const ksim::Message& msg, KdcContext& ctx);
  // Remembers a successful reply for retransmission, then returns it.
  kerb::Bytes RememberReply(const ksim::Message& msg, const kerb::Bytes& reply, KdcContext& ctx);

  // Which neighbor realm leads toward `target`; empty if unknown.
  std::string RouteToward(const std::string& target) const;

  ksim::HostClock clock_;
  std::string realm_;
  krb4::Principal tgs_principal_;
  KdcDatabase db_;
  KdcPolicy5 policy_;
  // DH group for PK preauth, engine pre-built; immutable while serving, so
  // worker threads share it without locks.
  std::optional<kcrypto::DhGroup> pk_group_;

  std::map<std::string, kcrypto::DesKey> interrealm_keys_;
  std::map<std::string, std::string> realm_routes_;

  // Sliding-window rate limiter state per source host.
  std::mutex rate_mu_;
  std::map<uint32_t, std::vector<ksim::Time>> as_request_times_;

  std::atomic<uint64_t> as_requests_{0};
  std::atomic<uint64_t> pk_as_requests_{0};
  std::atomic<uint64_t> as_rate_limited_{0};
  std::atomic<uint64_t> tgs_requests_{0};
  std::atomic<uint64_t> reply_cache_hits_{0};
};

}  // namespace krb5

#endif  // SRC_KRB5_KDCCORE_H_
