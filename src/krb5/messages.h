// Kerberos Version 5 Draft 3 message model.
//
// Everything is a tagged TLV message (src/encoding/tlv.h) — the paper's
// recommendation (b), which Draft 3 adopted via ASN.1: "all encrypted data
// is labeled with the message type prior to encryption." Encrypted parts go
// through the Draft 3 encryption layer (src/krb5/enclayer.h).
//
// Draft 3 behaviours preserved for study:
//   * the TGS request's additional-tickets and authorization-data fields
//     travel OUTSIDE the encryption, protected only by a checksum sealed in
//     the authenticator (the Appendix's cut-and-paste surface, E9);
//   * the ENC-TKT-IN-SKEY and REUSE-SKEY options;
//   * tickets may omit the client network address;
//   * ticket forwarding with a FORWARDED flag but no original source;
//   * a transited-realms list for hierarchical inter-realm authentication.

#ifndef SRC_KRB5_MESSAGES_H_
#define SRC_KRB5_MESSAGES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/crypto/checksum.h"
#include "src/encoding/tlv.h"
#include "src/krb4/principal.h"
#include "src/krb5/enclayer.h"
#include "src/sim/clock.h"

namespace krb5 {

using krb4::Principal;

// Message types (the context labels sealed inside encryptions).
enum MsgType5 : uint16_t {
  kMsgTicket = 1,
  kMsgAuthenticator = 2,
  kMsgAsReq = 10,
  kMsgAsRep = 11,
  kMsgTgsReq = 12,
  kMsgTgsRep = 13,
  kMsgApReq = 14,
  kMsgApRep = 15,
  kMsgEncAsRepPart = 25,
  kMsgEncTgsRepPart = 26,
  kMsgEncApRepPart = 27,
  kMsgSafe = 20,
  kMsgPriv = 21,
  kMsgError = 30,
  kMsgPreauth = 40,    // padata: {nonce, timestamp}K_c
  kMsgChallenge = 41,  // challenge/response AP option payloads
  kMsgAsPkReq = 42,    // public-key preauthenticated AS request
  kMsgAsPkRep = 43,    // its reply
  kMsgPkEncWrap = 44,  // DH-layer wrapper around the sealed enc-part
  // Clustered serving (src/cluster): the V5 spelling of the referral reply.
  // Carries one kClusterBody field holding an encoded kcluster::ReferralBody
  // (the same bytes the V4 frame carries), so both protocol stacks share a
  // single referral codec.
  kMsgClusterReferral = 45,
};

// Field tags.
namespace tag {
constexpr uint16_t kCname = 1;
constexpr uint16_t kCinstance = 2;
constexpr uint16_t kCrealm = 3;
constexpr uint16_t kSname = 4;
constexpr uint16_t kSinstance = 5;
constexpr uint16_t kSrealm = 6;
constexpr uint16_t kAddress = 7;
constexpr uint16_t kIssuedAt = 8;
constexpr uint16_t kLifetime = 9;
constexpr uint16_t kSessionKey = 10;
constexpr uint16_t kNonce = 11;
constexpr uint16_t kTimestamp = 12;
constexpr uint16_t kChecksum = 13;
constexpr uint16_t kChecksumType = 14;
constexpr uint16_t kFlags = 15;
constexpr uint16_t kOptions = 16;
constexpr uint16_t kAdditionalTicket = 17;
constexpr uint16_t kAuthorizationData = 18;
constexpr uint16_t kPadata = 19;
constexpr uint16_t kTransited = 20;
constexpr uint16_t kSubkey = 21;
constexpr uint16_t kSeqNumber = 22;
constexpr uint16_t kEData = 23;
constexpr uint16_t kTicketBlob = 24;
constexpr uint16_t kAuthBlob = 25;
constexpr uint16_t kErrorCode = 26;
constexpr uint16_t kErrorText = 27;
constexpr uint16_t kAppData = 28;
constexpr uint16_t kMutual = 29;
constexpr uint16_t kSealedPart = 30;
constexpr uint16_t kServiceNameCheck = 31;
constexpr uint16_t kDirection = 32;
constexpr uint16_t kTgtRealm = 33;
constexpr uint16_t kAname = 34;
constexpr uint16_t kAinstance = 35;
constexpr uint16_t kArealm = 36;
constexpr uint16_t kChallengeResponse = 37;
constexpr uint16_t kPkPublic = 38;
constexpr uint16_t kClusterBody = 39;  // encoded kcluster::ReferralBody
}  // namespace tag

// Ticket flags.
constexpr uint32_t kFlagForwardable = 1u << 0;
constexpr uint32_t kFlagForwarded = 1u << 1;

// TGS request options.
constexpr uint32_t kOptEncTktInSkey = 1u << 0;
constexpr uint32_t kOptReuseSkey = 1u << 1;
constexpr uint32_t kOptForward = 1u << 2;
constexpr uint32_t kOptOmitAddress = 1u << 3;

// KRB_ERROR codes used by the model.
constexpr uint32_t kErrMethod = 48;  // KRB_AP_ERR_METHOD: use another auth method

// Helpers for principals in TLV messages.
void PutClient(kenc::TlvMessage& msg, const Principal& p);
void PutServer(kenc::TlvMessage& msg, const Principal& p);
kerb::Result<Principal> GetClient(const kenc::TlvMessage& msg);
kerb::Result<Principal> GetServer(const kenc::TlvMessage& msg);

// ---------------------------------------------------------------------------
struct Ticket5 {
  Principal service;
  Principal client;
  uint32_t flags = 0;
  std::optional<uint32_t> client_addr;  // V5 may omit the address
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
  kcrypto::DesBlock session_key{};
  std::vector<std::string> transited;  // realms crossed, oldest first

  kenc::TlvMessage ToTlv() const;
  // Streams the same bytes as ToTlv().Encode() without building a field map.
  void AppendTlvTo(kenc::Writer& w) const;
  static kerb::Result<Ticket5> FromTlv(const kenc::TlvMessage& msg);

  kerb::Bytes Seal(const kcrypto::DesKey& key, const EncLayerConfig& config,
                   kcrypto::Prng& prng) const;
  static kerb::Result<Ticket5> Unseal(const kcrypto::DesKey& key, kerb::BytesView sealed,
                                      const EncLayerConfig& config);

  bool Expired(ksim::Time now) const { return now > issued_at + lifetime; }
};

// ---------------------------------------------------------------------------
struct Authenticator5 {
  Principal client;
  ksim::Time timestamp = 0;
  // Checksum over the unencrypted request fields (TGS request) — the seal
  // whose strength experiment E9 probes.
  std::optional<kcrypto::ChecksumType> checksum_type;
  std::optional<kerb::Bytes> request_checksum;
  // Recommendation (e): material for negotiating a true session key.
  std::optional<kcrypto::DesBlock> subkey;
  // Appendix: initial sequence number for KRB_SAFE/KRB_PRIV channels.
  std::optional<uint32_t> initial_seq;
  // The fix for REUSE-SKEY redirection: name the intended service.
  std::optional<std::string> service_name_check;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<Authenticator5> FromTlv(const kenc::TlvMessage& msg);

  kerb::Bytes Seal(const kcrypto::DesKey& key, const EncLayerConfig& config,
                   kcrypto::Prng& prng) const;
  static kerb::Result<Authenticator5> Unseal(const kcrypto::DesKey& key, kerb::BytesView sealed,
                                             const EncLayerConfig& config);
};

// ---------------------------------------------------------------------------
// AS exchange.
struct AsRequest5 {
  Principal client;
  std::string service_realm;
  ksim::Duration lifetime = 0;
  uint32_t options = 0;  // e.g. kOptOmitAddress
  uint64_t nonce = 0;    // Draft 3's server-to-client challenge/response
  // Optional preauthentication data (padata): recommendation (g). When
  // present it is {nonce}K_c, proving the requester knows the password key.
  std::optional<kerb::Bytes> padata;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<AsRequest5> FromTlv(const kenc::TlvMessage& msg);
};

struct EncAsRepPart5 {
  kcrypto::DesBlock tgs_session_key{};
  uint64_t nonce = 0;  // must echo the request nonce
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;

  kenc::TlvMessage ToTlv() const;
  void AppendTlvTo(kenc::Writer& w) const;
  static kerb::Result<EncAsRepPart5> FromTlv(const kenc::TlvMessage& msg);
};

struct AsReply5 {
  kerb::Bytes sealed_tgt;       // {Ticket5}K_tgs
  kerb::Bytes sealed_enc_part;  // {EncAsRepPart5}K_c

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<AsReply5> FromTlv(const kenc::TlvMessage& msg);
};

// ---------------------------------------------------------------------------
// Public-key preauthenticated AS exchange (V5 shape of the paper's
// exponential-key-exchange fix). The client's TLV carries a fresh DH
// public value; the reply wraps the ordinary {EncAsRepPart5}K_c in one
// extra layer keyed by the negotiated DH secret, so the password-keyed
// ciphertext that drives offline guessing never crosses the wire bare.
//
// The DH wrapper alone only hides the inner layer from *passive*
// eavesdroppers; an active attacker could supply their own ephemeral key
// and strip it. The padata — {nonce, timestamp, md4(g^a)}K_c, a kMsgPreauth
// TLV sealed under the client's key — is therefore mandatory on this path
// regardless of KdcPolicy5::require_preauth: it proves possession of K_c
// and binds the attacker-controllable DH public to that proof.
struct AsPkRequest5 {
  Principal client;
  std::string service_realm;
  ksim::Duration lifetime = 0;
  uint32_t options = 0;
  uint64_t nonce = 0;
  kerb::Bytes client_pub;  // big-endian g^a mod p
  // Sealed kMsgPreauth TLV: kNonce (== nonce), kTimestamp, kChecksum =
  // md4(client_pub). Optional in the codec, required by the KDC.
  std::optional<kerb::Bytes> padata;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<AsPkRequest5> FromTlv(const kenc::TlvMessage& msg);
};

struct AsPkReply5 {
  kerb::Bytes server_pub;   // big-endian g^b mod p, plaintext
  kerb::Bytes sealed_tgt;   // {Ticket5}K_tgs, as in the ordinary reply
  // {kMsgPkEncWrap{ {EncAsRepPart5}K_c }}K_dh
  kerb::Bytes sealed_wrap;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<AsPkReply5> FromTlv(const kenc::TlvMessage& msg);
};

// ---------------------------------------------------------------------------
// TGS exchange. The checksum-bearing fields are canonically encoded by
// ChecksumInput(): exactly the unencrypted fields an adversary can rewrite.
struct TgsRequest5 {
  Principal service;
  ksim::Duration lifetime = 0;
  uint32_t options = 0;
  uint64_t nonce = 0;
  // Realm whose TGS sealed the enclosed TGT. Equal to the serving realm for
  // local requests; names the previous hop for inter-realm requests.
  std::string tgt_realm;
  kerb::Bytes additional_ticket;  // sealed ticket: ENC-TKT-IN-SKEY / REUSE-SKEY
  // Service whose key seals `additional_ticket` (REUSE-SKEY key lookup).
  std::optional<Principal> additional_ticket_service;
  kerb::Bytes authorization_data;  // free-form, outside the encryption
  kerb::Bytes sealed_tgt;            // {Ticket5}K_tgs
  kerb::Bytes sealed_authenticator;  // {Authenticator5}K_c,tgs

  // Canonical bytes covered by the authenticator's request checksum.
  kerb::Bytes ChecksumInput() const;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<TgsRequest5> FromTlv(const kenc::TlvMessage& msg);
};

struct EncTgsRepPart5 {
  kcrypto::DesBlock session_key{};
  uint64_t nonce = 0;
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;

  kenc::TlvMessage ToTlv() const;
  void AppendTlvTo(kenc::Writer& w) const;
  static kerb::Result<EncTgsRepPart5> FromTlv(const kenc::TlvMessage& msg);
};

struct TgsReply5 {
  kerb::Bytes sealed_ticket;    // {Ticket5}K_s (or K_skey under ENC-TKT-IN-SKEY)
  kerb::Bytes sealed_enc_part;  // {EncTgsRepPart5}K_c,tgs

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<TgsReply5> FromTlv(const kenc::TlvMessage& msg);
};

// ---------------------------------------------------------------------------
// AP exchange.
struct ApRequest5 {
  kerb::Bytes sealed_ticket;
  kerb::Bytes sealed_authenticator;
  bool want_mutual = false;
  kerb::Bytes app_data;
  // Present on the second leg of the challenge/response option: the
  // server's nonce + 1, sealed under the ticket's session key.
  std::optional<kerb::Bytes> challenge_response;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<ApRequest5> FromTlv(const kenc::TlvMessage& msg);
};

struct EncApRepPart5 {
  ksim::Time timestamp = 0;            // echoes the authenticator
  std::optional<kcrypto::DesBlock> subkey;  // server half of key negotiation
  std::optional<uint32_t> initial_seq;

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<EncApRepPart5> FromTlv(const kenc::TlvMessage& msg);
};

// ---------------------------------------------------------------------------
// KRB_ERROR.
struct KrbError5 {
  uint32_t code = 0;
  std::string text;
  kerb::Bytes e_data;  // e.g. challenge material for KRB_AP_ERR_METHOD

  kenc::TlvMessage ToTlv() const;
  static kerb::Result<KrbError5> FromTlv(const kenc::TlvMessage& msg);
};

}  // namespace krb5

#endif  // SRC_KRB5_MESSAGES_H_
