#include "src/krb5/appserver.h"

#include <cstdlib>

namespace krb5 {

AppServer5::AppServer5(ksim::Network* net, const ksim::NetAddress& addr, Principal self,
                       kcrypto::DesKey service_key, ksim::HostClock clock, kcrypto::Prng prng,
                       AppHandler app, AppServer5Options options)
    : self_(std::move(self)),
      service_key_(service_key),
      clock_(clock),
      prng_(prng),
      app_(std::move(app)),
      options_(options) {
  net->Bind(addr, [this](const ksim::Message& msg) { return Handle(msg); });
}

kerb::Result<VerifiedSession5> AppServer5::VerifyApRequest(const ApRequest5& req,
                                                           uint32_t src_addr,
                                                           kerb::Bytes* challenge_out) {
  auto fail = [this](kerb::ErrorCode code, const char* what) -> kerb::Error {
    ++rejected_;
    return kerb::MakeError(code, what);
  };

  auto ticket = Ticket5::Unseal(service_key_, req.sealed_ticket, options_.enc);
  if (!ticket.ok()) {
    return fail(kerb::ErrorCode::kAuthFailed, "ticket not sealed with our key");
  }
  if (!(ticket.value().service == self_)) {
    return fail(kerb::ErrorCode::kAuthFailed, "ticket names a different service");
  }
  ksim::Time now = clock_.Now();
  if (ticket.value().Expired(now)) {
    return fail(kerb::ErrorCode::kExpired, "ticket expired");
  }
  if (options_.transited_policy && !options_.transited_policy(ticket.value())) {
    return fail(kerb::ErrorCode::kPolicy, "transited path rejected");
  }

  kcrypto::DesKey session_key(ticket.value().session_key);
  auto auth = Authenticator5::Unseal(session_key, req.sealed_authenticator, options_.enc);
  if (!auth.ok()) {
    return fail(kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  if (!(auth.value().client == ticket.value().client)) {
    return fail(kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  if (options_.check_address && ticket.value().client_addr.has_value() &&
      *ticket.value().client_addr != src_addr) {
    return fail(kerb::ErrorCode::kAuthFailed, "address mismatch");
  }
  if (options_.verify_service_name_check) {
    if (!auth.value().service_name_check.has_value() ||
        *auth.value().service_name_check != self_.ToString()) {
      return fail(kerb::ErrorCode::kAuthFailed,
                  "authenticator not bound to this service");
    }
  }

  if (options_.mode == ApAuthMode::kTimestamp) {
    if (std::llabs(auth.value().timestamp - now) > options_.clock_skew_limit) {
      return fail(kerb::ErrorCode::kSkew, "authenticator outside skew window");
    }
    if (options_.replay_cache) {
      if (!seen_authenticators_.CheckAndInsert(auth.value().client.ToString(), 0,
                                               auth.value().timestamp, now,
                                               options_.clock_skew_limit)) {
        return fail(kerb::ErrorCode::kReplay, "authenticator replayed");
      }
    }
  } else {
    // Challenge/response: freshness comes from our nonce, not their clock.
    std::erase_if(challenges_, [&](const auto& entry) {
      return entry.second < now - options_.clock_skew_limit;
    });
    bool answered = false;
    if (req.challenge_response.has_value()) {
      auto response =
          UnsealTlv(session_key, kMsgChallenge, *req.challenge_response, options_.enc);
      if (response.ok()) {
        auto value = response.value().GetU64(tag::kNonce);
        if (value.ok()) {
          // The response must be (outstanding nonce) + 1. Single use.
          auto it = challenges_.find(value.value() - 1);
          if (it != challenges_.end()) {
            challenges_.erase(it);
            answered = true;
          }
        }
      }
    }
    if (!answered) {
      uint64_t nonce = prng_.NextU64();
      challenges_.emplace(nonce, now);
      if (challenge_out != nullptr) {
        kenc::TlvMessage challenge(kMsgChallenge);
        challenge.SetU64(tag::kNonce, nonce);
        *challenge_out = SealTlv(session_key, challenge, options_.enc, prng_);
      }
      ++rejected_;
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "challenge issued");
    }
  }

  ++accepted_;
  VerifiedSession5 session;
  session.client = auth.value().client;
  session.multi_session_key = session_key;
  session.channel_key = session_key;
  session.authenticator_time = auth.value().timestamp;
  session.client_initial_seq = auth.value().initial_seq;
  session.transited = ticket.value().transited;
  return session;
}

kerb::Result<kerb::Bytes> AppServer5::Handle(const ksim::Message& msg) {
  auto tlv = kenc::TlvMessage::DecodeExpecting(kMsgApReq, msg.payload);
  if (!tlv.ok()) {
    return tlv.error();
  }
  auto req = ApRequest5::FromTlv(tlv.value());
  if (!req.ok()) {
    return req.error();
  }

  kerb::Bytes challenge;
  auto session = VerifyApRequest(req.value(), msg.src.host, &challenge);
  if (!session.ok()) {
    if (!challenge.empty()) {
      // KRB_AP_ERR_METHOD: signal the client to use challenge/response.
      KrbError5 err;
      err.code = kErrMethod;
      err.text = "challenge/response required";
      err.e_data = challenge;
      return err.ToTlv().Encode();
    }
    return session.error();
  }

  // Session-key negotiation (recommendation e): channel key is the XOR of
  // the multi-session key with both parties' random subkeys.
  std::optional<kcrypto::DesBlock> server_subkey;
  if (options_.negotiate_subkey) {
    auto auth = Authenticator5::Unseal(session.value().multi_session_key,
                                       req.value().sealed_authenticator, options_.enc);
    kcrypto::DesBlock client_subkey{};
    if (auth.ok() && auth.value().subkey.has_value()) {
      client_subkey = *auth.value().subkey;
    }
    server_subkey = prng_.NextDesKey().bytes();
    kcrypto::DesBlock channel;
    const kcrypto::DesBlock& multi = session.value().multi_session_key.bytes();
    for (size_t i = 0; i < 8; ++i) {
      channel[i] = static_cast<uint8_t>(multi[i] ^ client_subkey[i] ^ (*server_subkey)[i]);
    }
    session.value().channel_key = kcrypto::DesKey(kcrypto::FixParity(channel));
  }

  kerb::Bytes app_reply =
      app_ ? app_(session.value(), req.value().app_data) : kerb::Bytes{};

  if (!req.value().want_mutual && !options_.negotiate_subkey) {
    return app_reply;
  }

  EncApRepPart5 part;
  part.timestamp = session.value().authenticator_time;
  part.subkey = server_subkey;
  kenc::TlvMessage reply(kMsgApRep);
  reply.SetBytes(tag::kSealedPart,
                 SealTlv(session.value().multi_session_key, part.ToTlv(), options_.enc, prng_));
  reply.SetBytes(tag::kAppData, app_reply);
  return reply.Encode();
}

}  // namespace krb5
