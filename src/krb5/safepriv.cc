#include "src/krb5/safepriv.h"

#include <cstdlib>

#include "src/crypto/checksum.h"
#include "src/krb5/messages.h"

namespace krb5 {

SecureChannel::SecureChannel(const kcrypto::DesKey& key, const ksim::HostClock* clock,
                             ChannelConfig config, uint32_t initial_seq)
    : key_(key),
      clock_(clock),
      config_(config),
      send_seq_(initial_seq),
      expect_seq_(initial_seq) {
  // The initial IV derives from the handshake material (here: the initial
  // sequence value), as the paper suggests: "Initial values for it should
  // be exchanged during (or derived from) the authentication handshake."
  send_iv_ = kcrypto::U64ToBlock(key_.EncryptBlock(initial_seq));
  recv_iv_ = send_iv_;
}

kerb::Bytes SecureChannel::SealMessage(kerb::BytesView data, kcrypto::Prng& prng) {
  kenc::TlvMessage msg(config_.private_messages ? kMsgPriv : kMsgSafe);
  msg.SetBytes(tag::kAppData, kerb::Bytes(data.begin(), data.end()));
  if (config_.protection == ReplayProtection::kTimestamp) {
    msg.SetU64(tag::kTimestamp, static_cast<uint64_t>(clock_->Now()));
  } else if (config_.protection == ReplayProtection::kSequence) {
    msg.SetU32(tag::kSeqNumber, send_seq_++);
  }

  if (config_.protection == ReplayProtection::kChainedIv) {
    // Position is encoded in the IV itself — no field needed at all.
    kerb::Bytes sealed = SealTlvWithIv(key_, send_iv_, msg, config_.enc, prng);
    send_iv_ = NextChainedIv(key_, send_iv_);
    return sealed;
  }
  if (config_.private_messages) {
    return SealTlv(key_, msg, config_.enc, prng);
  }
  // KRB_SAFE: plaintext body plus a keyed collision-proof checksum.
  kerb::Bytes body = msg.Encode();
  kerb::Bytes checksum =
      kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4Des, body, key_);
  kenc::Writer w;
  w.PutLengthPrefixed(body);
  w.PutBytes(checksum);
  return w.Take();
}

kerb::Result<kerb::Bytes> SecureChannel::OpenMessage(kerb::BytesView sealed) {
  kenc::TlvMessage msg(0);
  if (config_.protection == ReplayProtection::kChainedIv) {
    auto opened = UnsealTlvWithIv(key_, recv_iv_, kMsgPriv, sealed, config_.enc);
    if (!opened.ok()) {
      // Wrong IV position: a replay, a reordering, or a deletion upstream.
      ++replays_;
      return kerb::MakeError(kerb::ErrorCode::kReplay,
                             "message does not match the expected IV position");
    }
    recv_iv_ = NextChainedIv(key_, recv_iv_);
    auto chained_data = opened.value().GetBytes(tag::kAppData);
    if (!chained_data.ok()) {
      return chained_data.error();
    }
    return chained_data.value();
  }
  if (config_.private_messages) {
    auto opened = UnsealTlv(key_, kMsgPriv, sealed, config_.enc);
    if (!opened.ok()) {
      return opened.error();
    }
    msg = opened.value();
  } else {
    kenc::Reader r(sealed);
    auto body = r.GetLengthPrefixed();
    if (!body.ok()) {
      return body.error();
    }
    auto checksum = r.GetBytes(16);
    if (!checksum.ok()) {
      return checksum.error();
    }
    if (!kcrypto::VerifyChecksum(kcrypto::ChecksumType::kMd4Des, body.value(),
                                 checksum.value(), key_)) {
      return kerb::MakeError(kerb::ErrorCode::kIntegrity, "KRB_SAFE checksum mismatch");
    }
    auto decoded = kenc::TlvMessage::DecodeExpecting(kMsgSafe, body.value());
    if (!decoded.ok()) {
      return decoded.error();
    }
    msg = decoded.value();
  }

  if (config_.protection == ReplayProtection::kTimestamp) {
    auto ts = msg.GetU64(tag::kTimestamp);
    if (!ts.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "timestamp missing");
    }
    ksim::Time t = static_cast<ksim::Time>(ts.value());
    ksim::Time now = clock_->Now();
    if (std::llabs(t - now) > config_.clock_skew_limit) {
      ++replays_;
      return kerb::MakeError(kerb::ErrorCode::kSkew, "message timestamp outside window");
    }
    // Prune, then check-and-insert. The cache the paper worries about.
    std::erase_if(seen_timestamps_,
                  [&](ksim::Time seen) { return seen < now - config_.clock_skew_limit; });
    if (!seen_timestamps_.insert(t).second) {
      ++replays_;
      return kerb::MakeError(kerb::ErrorCode::kReplay, "message timestamp replayed");
    }
  } else {
    auto seq = msg.GetU32(tag::kSeqNumber);
    if (!seq.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "sequence number missing");
    }
    if (seq.value() < expect_seq_) {
      ++replays_;
      return kerb::MakeError(kerb::ErrorCode::kReplay, "sequence number reused");
    }
    if (seq.value() > expect_seq_) {
      ++gaps_;
      return kerb::MakeError(kerb::ErrorCode::kReplay, "sequence gap: message deleted?");
    }
    ++expect_seq_;
  }

  auto data = msg.GetBytes(tag::kAppData);
  if (!data.ok()) {
    return data.error();
  }
  return data.value();
}

}  // namespace krb5
