// kobs — deterministic structured tracing and metrics for the whole stack.
//
// The paper's critique is an argument about what happens on the wire and
// inside the KDC: replayed authenticators, double-issued tickets, skewed
// clocks. The attack experiments prove their claims through end-state
// assertions; this layer turns each run into an inspectable event stream so
// tests can pin *behaviour*, not just outcomes — the same shift from
// end-state to explicit message traces that formal-methods analyses of
// related protocols make.
//
// Design rules:
//   * Zero overhead when disabled. Every emit site costs one relaxed-ish
//     atomic load and a predicted branch while no trace is installed —
//     nothing else: no clock read, no formatting, no allocation.
//   * Virtual time only. Events carry the simulation clock (or a host's
//     skewed view of it), never wall time, so a trace is a pure function of
//     (seed, workload, fault plan).
//   * Thread-safe and schedule-independent. Emits go to per-thread buffers;
//     flush merges them into one stream ordered by (time, source, kind,
//     args). Two runs of the same workload produce the same merged stream
//     regardless of worker count or interleaving, PROVIDED the emitted
//     multiset is itself schedule-independent — which is why kinds are
//     split into two classes below.
//
// Digest-stable vs counter-only kinds: the FNV trace digest folds only
// kinds that describe protocol-visible behaviour (wire traffic, KDC
// verdicts, replay-cache admissions, retry/failover decisions). Kinds that
// report per-context implementation artifacts — key-cache and unseal-memo
// hits, reply-cache traffic, seal/unseal call counts — depend on how
// requests happen to be distributed over worker contexts, so they aggregate
// into counters and histograms but never into the digest. That split is
// what makes golden digests byte-stable across KERB_KDC_THREADS values.

#ifndef SRC_OBS_KOBS_H_
#define SRC_OBS_KOBS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace kobs {

// Event kinds, grouped by the subsystem that emits them. EvName() gives the
// ndjson spelling; DigestStable() gives the digest class (see header
// comment). Append new kinds at the end of their group and extend both
// tables in kobs.cc — the enum value itself is folded into digests, so
// reordering existing kinds invalidates every pinned golden trace.
enum class Ev : uint16_t {
  // ksim::Network — adversarial base layer. a = destination host,
  // b = payload/reply bytes.
  kNetCall = 0,   // request entered the network
  kNetDeliver,    // a bound handler produced a reply
  kNetNoRoute,    // no service bound at the destination
  kNetDatagram,   // one-way datagram entered the network

  // ksim::FaultyNetwork — fault overlay. a = destination host except where
  // noted.
  kNetDropRequest,
  kNetDropReply,
  kNetDuplicate,       // same wire bytes delivered twice back to back
  kNetReorder,         // stale copy held for later redelivery
  kNetRedeliver,       // held copy surfaced out of order
  kNetCorruptRequest,  // a = host, b = bit flips
  kNetCorruptReply,    // a = host, b = bit flips
  kNetBlackout,        // call refused: host scripted dark
  kNetStall,           // a = host, b = extra delay (µs)
  kNetDatagramDrop,
  // Duplicate-reply comparison — the double-issue detector. A kNetDupDiverge
  // at a KDC host means a duplicated request was answered with different
  // bytes: a double-issued ticket.
  kNetDupMatch,
  kNetDupDiverge,
  kNetDupReject,

  // ksim::Exchanger — client retry/backoff/failover. a = endpoint host
  // except where noted.
  kXchgAttempt,   // a = endpoint host, b = attempt index
  kXchgFailover,  // attempt went to a non-primary endpoint
  kXchgRetry,     // failed retryable attempt will be retried
  kXchgBackoff,   // a = backoff charged (µs)
  kXchgSuccess,
  kXchgTerminal,  // a = error code: server verdict, returned immediately
  kXchgExhausted,

  // KdcCore4 / KdcCore5 — serving verdicts. Request: a = source host,
  // b = request bytes. Issue: a = exchange (0 AS, 1 TGS), b = reply bytes.
  // Deny: a = exchange, b = error code.
  kKdcAsRequest,
  kKdcTgsRequest,
  kKdcIssue,
  kKdcDeny,
  // Per-context caches (counter-only: hit patterns depend on how requests
  // are spread over worker contexts).
  kKdcReplyCacheHit,
  kKdcReplyCacheStore,
  kKdcKeyCacheHit,
  kKdcKeyCacheMiss,
  kKdcUnsealMemoHit,
  kKdcUnsealMemoMiss,

  // ksim::ShardedReplayCache — authenticator replay verdicts. a = FNV-1a of
  // the identity, b = claimed address. Admissions are digest-stable: a tuple
  // is admitted exactly once no matter how many threads race on it.
  kCacheAdmit,
  kCacheReplay,
  kCachePrune,  // a = entries discarded (counter-only)

  // krb4 / krb5 seal paths (counter-only: memoisation elides repeat
  // unseals per context). a = bytes, b = mode (0 for V4 PCBC, checksum
  // type for the V5 encryption layer).
  kSeal,
  kUnsealOk,
  kUnsealFail,

  // kstore (src/store) — durable KDC database and propagation. The
  // digest-stable kinds describe the logical history and the wire protocol
  // (WAL appends carry LSNs; prop frames are network-visible); device-level
  // byte traffic, local snapshot/compaction timing, and crash/recovery
  // mechanics are storage-engine artifacts and stay counter-only.
  kStoreAppend,    // a = lsn, b = record bytes (digest-stable)
  kStoreSnapshot,  // a = snapshot version lsn, b = snapshot bytes
  kStoreRecover,   // a = recovered last lsn, b = WAL records replayed
  kStoreCrash,     // a = files affected, b = volatile bytes lost
  kStoreDevWrite,  // a = bytes written to the simulated device
  kStoreDevFlush,  // a = bytes made durable
  kPropShip,       // a = slave host, b = frame bytes (digest-stable)
  kPropApply,      // a = to_lsn, b = records applied (digest-stable)
  kPropStale,      // a = offered to_lsn, b = applied lsn (digest-stable)
  kPropReject,     // a = error code, b = offered from_lsn (digest-stable)
  kPropWholesale,  // a = snapshot lsn, b = entries loaded (digest-stable)

  // kadmin (src/admin) — admin-plane verdicts and the kvno lifecycle.
  // Verdicts and rotations are protocol-visible (digest-stable); cached-ack
  // service and old-key unseal fallbacks depend on retransmit timing and
  // per-context memo state, so they stay counter-only.
  kAdminRequest,      // a = source host, b = request bytes (digest-stable)
  kAdminApply,        // a = op, b = resulting kvno (digest-stable)
  kAdminDeny,         // a = op (0 before decode), b = error code (digest-stable)
  kAdminReplayServe,  // a = source host, b = 0 reply-cache / 1 ack-cache (counter-only)
  kKvnoRotate,        // a = FNV-1a of the principal, b = new kvno (digest-stable)
  kKvnoOldKeyAccept,  // a = accepted kvno (0 at app servers), b = ring index (counter-only)

  // kcluster (src/cluster) — clustered serving. Referrals and membership
  // transitions are protocol-visible and deterministic (digest-stable);
  // per-op routing decisions and latency samples depend on client cache
  // warmth and routing-table state, so they stay counter-only.
  kClusterRoute,      // a = owning node id, b = 0 AS / 1 TGS (counter-only)
  kClusterReferral,   // a = referring node id, b = owning node id (digest-stable)
  kClusterRebalance,  // a = ring epoch, b = entries shipped (digest-stable)
  kClusterNodeDown,   // a = node id, b = ring epoch after removal (digest-stable)
  kClusterNodeUp,     // a = node id, b = ring epoch after rejoin (digest-stable)
  kClusterOp,         // a = op latency (µs), b = 0 login / 1 TGS (counter-only)

  kCount
};

constexpr size_t kEvCount = static_cast<size_t>(Ev::kCount);

const char* EvName(Ev kind);

// True for kinds folded into the trace digest; false for counter-only
// kinds. See the header comment for the classification rule.
bool DigestStable(Ev kind);

// Well-known source ids. One id per subsystem, not per instance — the
// event's `a` argument carries the host where instance identity matters,
// and a stable small id space keeps merged ordering meaningful.
enum Source : uint32_t {
  kSrcNet = 1,
  kSrcFaults = 2,
  kSrcXchg = 3,
  kSrcReplay = 4,
  kSrcKdc4 = 5,
  kSrcKdc5 = 6,
  kSrcSeal4 = 7,
  kSrcSeal5 = 8,
  kSrcStore = 9,
  kSrcProp = 10,
  kSrcAdmin = 11,
  kSrcApp4 = 12,
  kSrcCluster = 13,
};

const char* SourceName(uint32_t source);

struct Event {
  int64_t t = 0;  // virtual microseconds — SimClock/HostClock, never wall time
  uint32_t source = 0;
  Ev kind = Ev::kCount;
  uint64_t a = 0;
  uint64_t b = 0;
};

// One tracing session. Install() makes it the process-wide active trace;
// emits land in per-thread buffers owned by the trace. The read-side
// accessors (events, digest, counters, ndjson) merge the buffers into one
// deterministically ordered stream; call them only after emitting threads
// have been joined — they are meant for the single-threaded phase after a
// run, mirroring how FaultyNetwork's schedule_digest is read.
class Trace {
 public:
  Trace();
  ~Trace();  // uninstalls itself if still active
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void Install();
  void Uninstall();
  bool installed() const;

  // Merged event stream, sorted by (t, source, kind, a, b). The full-tuple
  // order makes the stream — and everything derived from it — independent
  // of thread interleaving: equal events are interchangeable.
  const std::vector<Event>& events();

  // FNV-1a over the digest-stable events of the merged stream. Equal
  // digests mean behaviourally identical runs.
  uint64_t digest();

  // Aggregated counters over ALL events (both digest classes).
  uint64_t Count(Ev kind);
  uint64_t CountA(Ev kind, uint64_t a);  // restricted to events with a == a
  uint64_t SumA(Ev kind);                // sum of `a` (bytes, durations, ...)

  // Power-of-two histogram of `a` for one kind: bucket i counts events with
  // a in [2^(i-1), 2^i), bucket 0 counts a == 0.
  static constexpr size_t kHistBuckets = 65;
  std::vector<uint64_t> HistogramA(Ev kind);

  // One JSON object per line: every event, then per-kind counter and
  // histogram summaries, then a trailer with the digest.
  void WriteNdjson(std::ostream& os);
  bool WriteNdjsonFile(const std::string& path);

  // Discards all recorded events (buffers stay registered). For long
  // timing loops that would otherwise accumulate without bound.
  void Clear();

  // Emission plumbing — call through kobs::Emit / kobs::EmitNow.
  struct Buffer;  // per-thread event buffer, defined in kobs.cc
  void Record(uint32_t source, Ev kind, int64_t t, uint64_t a, uint64_t b);
  int64_t BoundClockNow() const {
    const ksim::SimClock* clock = clock_.load(std::memory_order_acquire);
    return clock != nullptr ? clock->Now() : 0;
  }

 private:
  friend void BindClock(const ksim::SimClock* clock);
  friend void UnbindClock(const ksim::SimClock* clock);

  void Merge();

  const uint64_t generation_;  // globally unique per Trace instance
  std::atomic<const ksim::SimClock*> clock_{nullptr};

  std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<Event> merged_;
};

// The active trace. Null (the default) disables every emit site.
extern std::atomic<Trace*> g_active_trace;

inline Trace* ActiveTrace() { return g_active_trace.load(std::memory_order_acquire); }
inline bool Enabled() { return ActiveTrace() != nullptr; }

// The hot-path guard: when no trace is installed this is a load and a
// branch. Callers that must compute arguments (clock reads, sizes) should
// guard the whole block with Enabled() first.
inline void Emit(uint32_t source, Ev kind, int64_t t, uint64_t a = 0, uint64_t b = 0) {
  Trace* trace = ActiveTrace();
  if (trace == nullptr) {
    return;
  }
  trace->Record(source, kind, t, a, b);
}

// Emit stamped with the trace's bound clock (0 when none is bound). For
// emit sites below the simulation layer — the seal paths — that have no
// clock of their own.
void EmitNow(uint32_t source, Ev kind, uint64_t a = 0, uint64_t b = 0);

// Clock binding: a World registers its SimClock with the active trace on
// construction (first binder wins) and clears it on destruction, so traces
// installed around a whole experiment stamp clockless emit sites with real
// virtual time. No-ops when no trace is active.
void BindClock(const ksim::SimClock* clock);
void UnbindClock(const ksim::SimClock* clock);

// FNV-1a of a string — the spelling used for identity arguments (replay
// cache identities) so events never carry raw principal names.
uint64_t FnvOf(const std::string& s);

// RAII install/uninstall for the common test shape:
//   kobs::ScopedTrace trace;
//   RunExperiment(...);
//   EXPECT_EQ(trace->digest(), kGolden);
class ScopedTrace {
 public:
  ScopedTrace() { trace_.Install(); }
  ~ScopedTrace() { trace_.Uninstall(); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  Trace& trace() { return trace_; }
  Trace* operator->() { return &trace_; }

 private:
  Trace trace_;
};

}  // namespace kobs

#endif  // SRC_OBS_KOBS_H_
