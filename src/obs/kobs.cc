#include "src/obs/kobs.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace kobs {

std::atomic<Trace*> g_active_trace{nullptr};

namespace {

// Globally monotonic trace ids, so a thread's cached buffer pointer can
// never be mistaken for one belonging to a new Trace allocated at the same
// address.
std::atomic<uint64_t> g_trace_generation{0};

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FoldU64(uint64_t digest, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (v >> (8 * i)) & 0xff;
    digest *= kFnvPrime;
  }
  return digest;
}

struct EvInfo {
  const char* name;
  bool digest_stable;
};

constexpr std::array<EvInfo, kEvCount> kEvTable = {{
    {"net_call", true},
    {"net_deliver", true},
    {"net_no_route", true},
    {"net_datagram", true},
    {"net_drop_request", true},
    {"net_drop_reply", true},
    {"net_duplicate", true},
    {"net_reorder", true},
    {"net_redeliver", true},
    {"net_corrupt_request", true},
    {"net_corrupt_reply", true},
    {"net_blackout", true},
    {"net_stall", true},
    {"net_datagram_drop", true},
    {"net_dup_match", true},
    {"net_dup_diverge", true},
    {"net_dup_reject", true},
    {"xchg_attempt", true},
    {"xchg_failover", true},
    {"xchg_retry", true},
    {"xchg_backoff", true},
    {"xchg_success", true},
    {"xchg_terminal", true},
    {"xchg_exhausted", true},
    {"kdc_as_request", true},
    {"kdc_tgs_request", true},
    {"kdc_issue", true},
    {"kdc_deny", true},
    {"kdc_reply_cache_hit", false},
    {"kdc_reply_cache_store", false},
    {"kdc_key_cache_hit", false},
    {"kdc_key_cache_miss", false},
    {"kdc_unseal_memo_hit", false},
    {"kdc_unseal_memo_miss", false},
    {"cache_admit", true},
    {"cache_replay", true},
    {"cache_prune", false},
    {"seal", false},
    {"unseal_ok", false},
    {"unseal_fail", false},
    {"store_append", true},
    {"store_snapshot", false},
    {"store_recover", false},
    {"store_crash", false},
    {"store_dev_write", false},
    {"store_dev_flush", false},
    {"prop_ship", true},
    {"prop_apply", true},
    {"prop_stale", true},
    {"prop_reject", true},
    {"prop_wholesale", true},
    {"admin_request", true},
    {"admin_apply", true},
    {"admin_deny", true},
    {"admin_replay_serve", false},
    {"kvno_rotate", true},
    {"kvno_old_key_accept", false},
    {"cluster_route", false},
    {"cluster_referral", true},
    {"cluster_rebalance", true},
    {"cluster_node_down", true},
    {"cluster_node_up", true},
    {"cluster_op", false},
}};

const EvInfo& InfoFor(Ev kind) { return kEvTable[static_cast<size_t>(kind)]; }

bool EventBefore(const Event& x, const Event& y) {
  if (x.t != y.t) return x.t < y.t;
  if (x.source != y.source) return x.source < y.source;
  if (x.kind != y.kind) return x.kind < y.kind;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

// Per-thread buffer binding. A thread re-resolves its buffer whenever the
// active trace's generation differs from the one it last registered with.
thread_local uint64_t tl_generation = 0;

}  // namespace

const char* EvName(Ev kind) {
  return kind < Ev::kCount ? InfoFor(kind).name : "invalid";
}

bool DigestStable(Ev kind) {
  return kind < Ev::kCount && InfoFor(kind).digest_stable;
}

const char* SourceName(uint32_t source) {
  switch (source) {
    case kSrcNet:
      return "net";
    case kSrcFaults:
      return "faults";
    case kSrcXchg:
      return "xchg";
    case kSrcReplay:
      return "replay";
    case kSrcKdc4:
      return "kdc4";
    case kSrcKdc5:
      return "kdc5";
    case kSrcSeal4:
      return "seal4";
    case kSrcSeal5:
      return "seal5";
    case kSrcStore:
      return "store";
    case kSrcProp:
      return "prop";
    case kSrcAdmin:
      return "admin";
    case kSrcApp4:
      return "app4";
    case kSrcCluster:
      return "cluster";
    default:
      return "other";
  }
}

uint64_t FnvOf(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

struct Trace::Buffer {
  std::vector<Event> events;
};

namespace {
thread_local Trace::Buffer* tl_buffer = nullptr;
}  // namespace

Trace::Trace() : generation_(g_trace_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

Trace::~Trace() { Uninstall(); }

void Trace::Install() { g_active_trace.store(this, std::memory_order_release); }

void Trace::Uninstall() {
  Trace* expected = this;
  g_active_trace.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

bool Trace::installed() const { return ActiveTrace() == this; }

void Trace::Record(uint32_t source, Ev kind, int64_t t, uint64_t a, uint64_t b) {
  if (tl_generation != generation_) {
    std::lock_guard lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    tl_buffer = buffers_.back().get();
    tl_generation = generation_;
  }
  tl_buffer->events.push_back(Event{t, source, kind, a, b});
}

void Trace::Merge() {
  std::lock_guard lock(mu_);
  for (auto& buffer : buffers_) {
    merged_.insert(merged_.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  // Full-tuple order: equal events are interchangeable, so the sorted
  // stream is a pure function of the emitted multiset — independent of
  // thread count and interleaving.
  std::sort(merged_.begin(), merged_.end(), EventBefore);
}

const std::vector<Event>& Trace::events() {
  Merge();
  return merged_;
}

uint64_t Trace::digest() {
  Merge();
  uint64_t digest = kFnvOffset;
  for (const Event& e : merged_) {
    if (!DigestStable(e.kind)) {
      continue;
    }
    digest = FoldU64(digest, static_cast<uint64_t>(e.t));
    digest = FoldU64(digest, e.source);
    digest = FoldU64(digest, static_cast<uint64_t>(e.kind));
    digest = FoldU64(digest, e.a);
    digest = FoldU64(digest, e.b);
  }
  return digest;
}

uint64_t Trace::Count(Ev kind) {
  Merge();
  uint64_t n = 0;
  for (const Event& e : merged_) {
    n += e.kind == kind ? 1 : 0;
  }
  return n;
}

uint64_t Trace::CountA(Ev kind, uint64_t a) {
  Merge();
  uint64_t n = 0;
  for (const Event& e : merged_) {
    n += (e.kind == kind && e.a == a) ? 1 : 0;
  }
  return n;
}

uint64_t Trace::SumA(Ev kind) {
  Merge();
  uint64_t sum = 0;
  for (const Event& e : merged_) {
    sum += e.kind == kind ? e.a : 0;
  }
  return sum;
}

std::vector<uint64_t> Trace::HistogramA(Ev kind) {
  Merge();
  std::vector<uint64_t> buckets(kHistBuckets, 0);
  for (const Event& e : merged_) {
    if (e.kind != kind) {
      continue;
    }
    size_t bucket = 0;
    for (uint64_t v = e.a; v != 0; v >>= 1) {
      ++bucket;
    }
    ++buckets[bucket];
  }
  return buckets;
}

void Trace::WriteNdjson(std::ostream& os) {
  Merge();
  char line[192];
  for (const Event& e : merged_) {
    std::snprintf(line, sizeof(line),
                  "{\"t\":%lld,\"src\":\"%s\",\"ev\":\"%s\",\"a\":%llu,\"b\":%llu}\n",
                  static_cast<long long>(e.t), SourceName(e.source), EvName(e.kind),
                  static_cast<unsigned long long>(e.a), static_cast<unsigned long long>(e.b));
    os << line;
  }
  for (size_t k = 0; k < kEvCount; ++k) {
    Ev kind = static_cast<Ev>(k);
    uint64_t count = Count(kind);
    if (count == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "{\"counter\":\"%s\",\"count\":%llu,\"sum_a\":%llu,\"digest_stable\":%s}\n",
                  EvName(kind), static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(SumA(kind)),
                  DigestStable(kind) ? "true" : "false");
    os << line;
    std::vector<uint64_t> buckets = HistogramA(kind);
    size_t last = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] != 0) {
        last = i;
      }
    }
    std::string hist = "{\"histogram\":\"";
    hist += EvName(kind);
    hist += "\",\"log2_a\":[";
    for (size_t i = 0; i <= last; ++i) {
      hist += (i == 0 ? "" : ",") + std::to_string(buckets[i]);
    }
    hist += "]}\n";
    os << hist;
  }
  std::snprintf(line, sizeof(line), "{\"trace\":{\"events\":%llu,\"digest\":\"%016llx\"}}\n",
                static_cast<unsigned long long>(merged_.size()),
                static_cast<unsigned long long>(digest()));
  os << line;
}

bool Trace::WriteNdjsonFile(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  WriteNdjson(os);
  return static_cast<bool>(os);
}

void Trace::Clear() {
  std::lock_guard lock(mu_);
  for (auto& buffer : buffers_) {
    buffer->events.clear();
  }
  merged_.clear();
}

void EmitNow(uint32_t source, Ev kind, uint64_t a, uint64_t b) {
  Trace* trace = ActiveTrace();
  if (trace == nullptr) {
    return;
  }
  trace->Record(source, kind, trace->BoundClockNow(), a, b);
}

void BindClock(const ksim::SimClock* clock) {
  Trace* trace = ActiveTrace();
  if (trace == nullptr) {
    return;
  }
  const ksim::SimClock* expected = nullptr;
  trace->clock_.compare_exchange_strong(expected, clock, std::memory_order_acq_rel);
}

void UnbindClock(const ksim::SimClock* clock) {
  Trace* trace = ActiveTrace();
  if (trace == nullptr) {
    return;
  }
  const ksim::SimClock* expected = clock;
  trace->clock_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

}  // namespace kobs
