#include "src/attacks/hsmleak.h"

#include <vector>

#include "src/attacks/testbed.h"
#include "src/hsm/encryption_unit.h"

namespace kattack {

HsmLeakReport RunEncryptionUnitLeakSweep(uint64_t seed, int fuzz_rounds) {
  HsmLeakReport report;
  kcrypto::Prng prng(seed);
  khsm::EncryptionUnit unit(seed ^ 0x0451);

  std::vector<kerb::Bytes> outputs;  // everything that ever leaves the unit
  auto capture = [&](kerb::BytesView bytes) {
    outputs.emplace_back(bytes.begin(), bytes.end());
  };

  // Provision a realistic key population.
  krb4::Principal alice = krb4::Principal::User("alice", "ATHENA.SIM");
  kcrypto::DesKey login_key = prng.NextDesKey();
  kcrypto::DesKey service_key = prng.NextDesKey();
  khsm::KeyHandle login = unit.LoadKey(login_key, khsm::KeyUsage::kLoginKey);
  khsm::KeyHandle service = unit.LoadKey(service_key, khsm::KeyUsage::kServiceKey);
  khsm::KeyHandle generated = unit.GenerateKey(khsm::KeyUsage::kSessionKey);

  // Honest protocol traffic through the unit: an AS reply, a TGS reply, a
  // ticket validation, sealed data.
  kcrypto::DesKey tgs_session = prng.NextDesKey();
  krb4::Ticket4 tgt;
  tgt.service = krb4::TgsPrincipal("ATHENA.SIM");
  tgt.client = alice;
  tgt.session_key = tgs_session.bytes();
  tgt.lifetime = ksim::kHour;
  krb4::AsReplyBody4 as_body;
  as_body.tgs_session_key = tgs_session.bytes();
  as_body.sealed_tgt = tgt.Seal(prng.NextDesKey());
  kerb::Bytes sealed_as = krb4::Seal4(login_key, as_body.Encode());

  kerb::Bytes tgt_out;
  auto tgs_handle = unit.OpenAsReply(login, sealed_as, &tgt_out);
  ++report.operations_attempted;
  capture(tgt_out);

  if (tgs_handle.ok()) {
    auto auth = unit.MakeAuthenticator(tgs_handle.value(), alice, 0x0a000101, 0);
    ++report.operations_attempted;
    if (auth.ok()) {
      capture(auth.value());
    }
    kcrypto::DesKey svc_session = prng.NextDesKey();
    krb4::TgsReplyBody4 tgs_body;
    tgs_body.session_key = svc_session.bytes();
    tgs_body.sealed_ticket = prng.NextBytes(48);
    kerb::Bytes sealed_tgs = krb4::Seal4(tgs_session, tgs_body.Encode());
    kerb::Bytes ticket_out;
    auto session_handle = unit.OpenTgsReply(tgs_handle.value(), sealed_tgs, &ticket_out);
    ++report.operations_attempted;
    capture(ticket_out);
    if (session_handle.ok()) {
      auto sealed = unit.SealData(session_handle.value(), kerb::ToBytes("payload"));
      ++report.operations_attempted;
      if (sealed.ok()) {
        capture(sealed.value());
        auto opened = unit.OpenData(session_handle.value(), sealed.value());
        ++report.operations_attempted;
        if (opened.ok()) {
          capture(opened.value());
        }
      }
    }
  }

  // Server side: validate a ticket under the service key.
  krb4::Ticket4 service_ticket;
  service_ticket.service = krb4::Principal::Service("nfs", "fs", "ATHENA.SIM");
  service_ticket.client = alice;
  service_ticket.session_key = prng.NextDesKey().bytes();
  service_ticket.lifetime = ksim::kHour;
  auto info = unit.DecryptTicket(service, service_ticket.Seal(service_key));
  ++report.operations_attempted;
  if (info.ok()) {
    capture(kerb::ToBytes(info.value().client.ToString()));
  }

  // Hostile phase: misuse every entry point — wrong usages, wrong handles,
  // garbage ciphertext, attempts to get keys decrypted under other keys.
  std::vector<khsm::KeyHandle> handles = {login, service, generated, 9999};
  for (int round = 0; round < fuzz_rounds; ++round) {
    khsm::KeyHandle handle = handles[prng.NextBelow(handles.size())];
    kerb::Bytes garbage = prng.NextBytes(8 * (1 + prng.NextBelow(8)));
    switch (prng.NextBelow(6)) {
      case 0: {
        auto r = unit.OpenAsReply(handle, garbage, nullptr);
        if (!r.ok() && r.error().code == kerb::ErrorCode::kPolicy) {
          ++report.usage_violations_blocked;
        }
        break;
      }
      case 1: {
        auto r = unit.MakeAuthenticator(handle, alice, 0, 0);
        if (r.ok()) {
          capture(r.value());
        } else if (r.error().code == kerb::ErrorCode::kPolicy) {
          ++report.usage_violations_blocked;
        }
        break;
      }
      case 2: {
        auto r = unit.OpenTgsReply(handle, garbage, nullptr);
        if (!r.ok() && r.error().code == kerb::ErrorCode::kPolicy) {
          ++report.usage_violations_blocked;
        }
        break;
      }
      case 3: {
        auto r = unit.DecryptTicket(handle, garbage);
        if (!r.ok() && r.error().code == kerb::ErrorCode::kPolicy) {
          ++report.usage_violations_blocked;
        }
        break;
      }
      case 4: {
        auto r = unit.SealData(handle, garbage);
        if (r.ok()) {
          capture(r.value());
        } else if (r.error().code == kerb::ErrorCode::kPolicy) {
          ++report.usage_violations_blocked;
        }
        break;
      }
      default: {
        auto r = unit.OpenData(handle, garbage);
        if (r.ok()) {
          capture(r.value());
        } else if (r.error().code == kerb::ErrorCode::kPolicy) {
          ++report.usage_violations_blocked;
        }
        break;
      }
    }
    ++report.operations_attempted;
  }
  for (const auto& entry : unit.operation_log()) {
    capture(kerb::ToBytes(entry));
  }

  // The scan: does any output contain any key octet sequence?
  auto keys = unit.DangerouslyExportAllKeyMaterialForLeakScan();
  report.keys_in_unit = keys.size();
  for (const auto& output : outputs) {
    ++report.outputs_scanned;
    for (const auto& key : keys) {
      if (kerb::ContainsSubsequence(output, key)) {
        ++report.key_octet_leaks;
        report.detail = "leak of key material in an output buffer";
      }
    }
  }

  // Contrast: the all-software client. A host compromise that reads the
  // credential cache gets the raw session key immediately.
  TestbedConfig config;
  config.seed = seed;
  Testbed4 bed(config);
  if (bed.alice().Login(Testbed4::kAlicePassword).ok() &&
      bed.alice().GetServiceTicket(bed.file_principal()).ok()) {
    const auto& cache = bed.alice().credentials();
    report.software_cache_leaks = !cache.empty();  // keys are right there
  }
  return report;
}

}  // namespace kattack
