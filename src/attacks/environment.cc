#include "src/attacks/environment.h"

#include "src/attacks/testbed.h"
#include "src/encoding/io.h"

namespace kattack {

DisklessCacheReport RunDisklessTmpCacheTheft(uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  Testbed4 bed(config);
  DisklessCacheReport report;

  if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
    return report;
  }
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  if (!creds.ok()) {
    return report;
  }

  // The diskless workstation "writes /tmp" to its file server: the
  // credential cache — raw session key and ticket — crosses the wire.
  const ksim::NetAddress nfs_tmp{0x0a000011, 2051};
  std::map<std::string, kerb::Bytes> server_side_tmp;
  bed.world().network().Bind(nfs_tmp,
                             [&](const ksim::Message& msg) -> kerb::Result<kerb::Bytes> {
                               server_side_tmp["/tmp/krb4cc_alice"] = msg.payload;
                               return kerb::ToBytes("written");
                             });

  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  {
    kenc::Writer cache;
    const kcrypto::DesBlock& key = creds.value().session_key.bytes();
    cache.PutBytes(kerb::BytesView(key.data(), key.size()));
    cache.PutLengthPrefixed(creds.value().sealed_ticket);
    (void)bed.world().network().Call(Testbed4::kAliceAddr, nfs_tmp, cache.Peek());
  }
  bed.world().network().SetAdversary(nullptr);
  report.cache_written_over_network = !recorder.exchanges().empty();

  // The wiretapper reads the session key straight out of the NFS write.
  kcrypto::DesKey stolen_key;
  kerb::Bytes stolen_ticket;
  for (const auto& exchange : recorder.exchanges()) {
    if (!(exchange.request.dst == nfs_tmp)) {
      continue;
    }
    kenc::Reader r(exchange.request.payload);
    auto key_bytes = r.GetBytes(8);
    auto ticket = r.GetLengthPrefixed();
    if (key_bytes.ok() && ticket.ok()) {
      kcrypto::DesBlock block;
      std::copy(key_bytes.value().begin(), key_bytes.value().end(), block.begin());
      stolen_key = kcrypto::DesKey(block);
      stolen_ticket = ticket.value();
      report.session_key_recovered_from_wire = true;
    }
  }
  if (!report.session_key_recovered_from_wire) {
    return report;
  }

  // Impersonation with the stolen material (spoofing alice's address, which
  // E12 showed is free).
  krb4::Authenticator4 auth;
  auth.client = bed.alice_principal();
  auth.client_addr = Testbed4::kAliceAddr.host;
  auth.timestamp = bed.world().clock().Now();
  krb4::ApRequest4 req;
  req.sealed_ticket = stolen_ticket;
  req.sealed_auth = auth.Seal(stolen_key);
  req.app_data = kerb::ToBytes("read inbox");
  auto verdict =
      bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr,
                                 krb4::Frame4(krb4::MsgType::kApRequest, req.Encode()));
  report.impersonation_succeeded = verdict.ok();
  if (!bed.mail_log().empty()) {
    report.evidence = bed.mail_log().back();
  }
  return report;
}

HostExposureReport RunHostExposureStudy(uint64_t seed) {
  HostExposureReport report;

  // Multi-user host: the attacker's process reads the cache while the user
  // is logged in.
  {
    TestbedConfig config;
    config.seed = seed;
    Testbed4 bed(config);
    if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
      return report;
    }
    (void)bed.alice().GetServiceTicket(bed.mail_principal());
    // Concurrent access: live credentials, right there.
    report.concurrent_theft_succeeded = !bed.alice().credentials().empty() &&
                                        bed.alice().tgs_credentials().has_value();
  }

  // Workstation: the attacker only reaches the machine after the user
  // leaves — and logout wiped the keys.
  {
    TestbedConfig config;
    config.seed = seed + 1;
    Testbed4 bed(config);
    if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
      return report;
    }
    (void)bed.alice().GetServiceTicket(bed.mail_principal());
    bed.alice().Logout();  // "leaving the attacker to sift through the debris"
    report.post_logout_theft_succeeded =
        !bed.alice().credentials().empty() || bed.alice().tgs_credentials().has_value();
  }
  return report;
}

}  // namespace kattack
