// Experiments E4/E5 — password guessing, with and without eavesdropping.
//
// E4: "an intruder recording login dialogs in order to mount a
// password-guessing assault ... A guess at the user's password can be
// confirmed by calculating K_c and using it to decrypt the recorded
// answer."
//
// E5: "an attacker could simply request ticket-granting tickets for many
// different users" — no wiretap needed, because V4's initial exchange is
// unauthenticated.

#ifndef SRC_ATTACKS_HARVEST_H_
#define SRC_ATTACKS_HARVEST_H_

#include <cstdint>

#include "src/crypto/dh.h"

namespace kattack {

struct CrackReport {
  int population = 0;
  int weak_users = 0;        // users whose password is in the dictionary
  int replies_obtained = 0;  // sealed AS replies the attacker collected
  int cracked = 0;           // passwords recovered offline
  uint64_t guess_attempts = 0;
  int rejected_by_kdc = 0;   // preauth / rate-limit refusals (E5 defences)
};

struct HarvestScenario {
  int population = 40;
  double weak_fraction = 0.5;
  uint64_t seed = 2025;
};

// E4: everyone logs in once; a passive wiretapper records the AS replies
// and runs the dictionary against each.
CrackReport RunEavesdropCrackV4(const HarvestScenario& scenario);

// E4 + recommendation (h): the same population logs in through the
// exponential-key-exchange layer. A passive recorder gets nothing usable —
// unless the group is small enough to solve discrete logs, in which case
// the attacker strips the layer first (the LaMacchia–Odlyzko trade-off).
struct DhCrackScenario {
  HarvestScenario base;
  // 0 = use Oakley Group 1 (infeasible to break here); otherwise a toy
  // safe-prime group of this many bits, which the attacker CAN break.
  int toy_group_bits = 0;
};
CrackReport RunEavesdropCrackAgainstDhLogin(const DhCrackScenario& scenario);

// E5: no eavesdropping — the attacker asks the AS directly for every user.
struct ActiveHarvestScenario {
  HarvestScenario base;
  bool kdc_requires_preauth = false;     // recommendation (g)
  uint32_t kdc_rate_limit_per_minute = 0;  // server-side throttle
};
CrackReport RunActiveHarvest(const ActiveHarvestScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_HARVEST_H_
