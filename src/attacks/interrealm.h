// Experiment E13 — cascading trust across realms.
//
// "A host A may be willing to trust credentials from host B, and B may be
// willing to trust host C, but A may not be willing to accept tickets
// originally created on host C ... to assess the validity of a request, a
// server needs global knowledge of the trustworthiness of all possible
// transit realms. In a large internet, such knowledge is probably not
// possible."
//
// A compromised transit realm (CORP) holds the inter-realm key with the
// target realm (SALES.CORP) and can mint cross-realm TGTs naming any client
// with any transited history it likes.

#ifndef SRC_ATTACKS_INTERREALM_H_
#define SRC_ATTACKS_INTERREALM_H_

#include <string>

namespace kattack {

struct InterRealmForgeReport {
  bool honest_access_ok = false;      // baseline: alice reaches payroll
  std::string honest_transited;       // the honest path the service saw
  bool forged_access_ok = false;      // the compromised realm's fabrication
  std::string forged_client;          // who the service THINKS it served
  std::string forged_transited;       // the laundered path
  bool strict_policy_blocks_forgery = false;
  bool strict_policy_blocks_honest = false;  // the collateral cost
};

// `forge_realm_of_client`: the realm the fabricated identity claims. Using
// "ENG.CORP" leaves a path inconsistency a careful policy can catch; using
// "CORP" itself is indistinguishable from honest CORP-origin traffic.
InterRealmForgeReport RunTransitRealmForgery(const std::string& forged_client_realm,
                                             uint64_t seed = 99);

}  // namespace kattack

#endif  // SRC_ATTACKS_INTERREALM_H_
