#include "src/attacks/address.h"

#include "src/attacks/testbed.h"

namespace kattack {

AddressBindingReport RunAddressBindingStudy(uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  Testbed4 bed(config);
  AddressBindingReport report;

  if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
    return report;
  }
  auto creds = bed.alice().GetServiceTicket(bed.file_principal());
  if (!creds.ok()) {
    return report;
  }

  // Host compromise: eve reads alice's credential cache ("they are stored
  // in some area accessible to root").
  kerb::Bytes stolen_ticket = creds.value().sealed_ticket;
  kcrypto::DesKey stolen_key = creds.value().session_key;

  auto make_request = [&](uint32_t claimed_addr) {
    krb4::Authenticator4 auth;
    auth.client = bed.alice_principal();
    auth.client_addr = claimed_addr;
    auth.timestamp = bed.world().clock().Now();
    krb4::ApRequest4 req;
    req.sealed_ticket = stolen_ticket;
    req.sealed_auth = auth.Seal(stolen_key);
    req.app_data = kerb::ToBytes("read /home/alice/secrets");
    return krb4::Frame4(krb4::MsgType::kApRequest, req.Encode());
  };

  // Naive reuse: the packet honestly carries eve's address. The address
  // check earns its keep against THIS adversary only.
  auto naive = bed.world().network().Call(Testbed4::kEveAddr, Testbed4::kFileAddr,
                                          make_request(Testbed4::kEveAddr.host));
  report.naive_reuse_rejected = !naive.ok();

  // Spoofed reuse: same credentials, source forged to alice's address.
  auto spoofed = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kFileAddr,
                                            make_request(Testbed4::kAliceAddr.host));
  report.spoofed_reuse_accepted = spoofed.ok();

  // Post-authentication hijack: after alice authenticates, the session's
  // follow-up commands are gated only on source address (a pattern the
  // address binding invites). Eve injects one.
  std::vector<std::string> session_commands;
  const ksim::NetAddress session_port{0x0a000011, 2050};
  ksim::NetAddress authenticated_peer{};
  bed.world().network().Bind(
      session_port, [&](const ksim::Message& msg) -> kerb::Result<kerb::Bytes> {
        if (!(msg.src == authenticated_peer)) {
          return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "wrong source");
        }
        session_commands.push_back(kerb::ToString(msg.payload));
        return kerb::ToBytes("done");
      });

  // Alice authenticates (full Kerberos exchange), establishing the session.
  if (bed.alice().CallService(Testbed4::kFileAddr, bed.file_principal(), true).ok()) {
    authenticated_peer = Testbed4::kAliceAddr;
    (void)bed.world().network().Call(Testbed4::kAliceAddr, session_port,
                                     kerb::ToBytes("ls /home/alice"));
  }
  // Eve takes the session over with a spoofed source.
  auto hijack = bed.world().network().Call(Testbed4::kAliceAddr, session_port,
                                           kerb::ToBytes("cat /home/alice/secrets"));
  report.hijack_accepted = hijack.ok();
  if (!session_commands.empty()) {
    report.hijack_evidence = session_commands.back();
  }
  return report;
}

}  // namespace kattack
