// Experiment E10 — REUSE-SKEY shared-key ticket redirection.
//
// "If two tickets, T1 and T2, share the same key, the attacker can
// intercept a request for one service, and redirect it to the other. Since
// the two tickets share the same key, the authenticator will be accepted.
// ... If, say, a file server and a backup server were invoked this way, an
// attacker might redirect some requests to destroy archival copies of files
// being edited. A solution ... is to include either the service name, a
// collision-proof checksum of the ticket, or both, in the authenticator."

#ifndef SRC_ATTACKS_REUSESKEY_H_
#define SRC_ATTACKS_REUSESKEY_H_

#include <string>

namespace kattack {

struct ReuseSkeyReport {
  bool shared_key_issued = false;    // T_file and T_backup share a session key
  bool splice_accepted = false;      // backup honoured the spliced request
  std::string backup_action;         // what the backup server executed
};

struct ReuseSkeyScenario {
  // The fix: clients bind authenticators to the intended service name and
  // servers verify the binding.
  bool service_name_binding = false;
  uint64_t seed = 606;
};

ReuseSkeyReport RunReuseSkeyRedirection(const ReuseSkeyScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_REUSESKEY_H_
