#include "src/attacks/userasservice.h"

#include "src/attacks/passwords.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/str2key.h"

namespace kattack {

namespace {

// Dictionary trial against a ticket sealed under a password-derived key.
std::optional<std::string> CrackSealedTicket(kerb::BytesView sealed,
                                             const krb4::Principal& victim,
                                             const std::vector<std::string>& dictionary) {
  krb5::EncLayerConfig enc;
  for (const auto& candidate : dictionary) {
    kcrypto::DesKey guess = kcrypto::StringToKey(candidate, victim.Salt());
    if (krb5::Ticket5::Unseal(guess, sealed, enc).ok()) {
      return candidate;
    }
  }
  return std::nullopt;
}

}  // namespace

UserAsServiceReport RunUserAsServiceHarvest(const UserAsServiceScenario& scenario) {
  Testbed5Config config;
  config.seed = scenario.seed;
  config.kdc_policy.allow_tickets_for_user_principals =
      !scenario.forbid_user_principal_tickets;
  Testbed5 bed(config);
  UserAsServiceReport report;

  // The alternative the paper prefers: bob registers a separate mail
  // instance with a truly random key (in a full deployment it comes from
  // the keystore / random-key service).
  krb5::Principal bob_email{"bob", "email", bed.realm};
  bed.kdc().database().AddServiceWithRandomKey(bob_email, bed.world().prng());

  if (!bed.eve().Login(Testbed5::kEvePassword).ok()) {
    return report;
  }

  // Eve, a perfectly ordinary authenticated user, asks for a "service"
  // ticket naming bob's USER principal.
  krb5::TgsRequest5 req;
  req.service = bed.bob_principal();
  req.lifetime = ksim::kHour;
  auto reply = bed.eve().RawTgsRequest(bed.realm, req);
  if (reply.ok()) {
    report.ticket_issued = true;
    // The ticket blob is sealed under bob's password key — grist for the
    // mill, no eavesdropping required.
    auto cracked = CrackSealedTicket(reply.value().sealed_ticket, bed.bob_principal(),
                                     CommonPasswordDictionary());
    if (cracked.has_value()) {
      report.password_recovered = true;
      report.recovered_password = *cracked;
    }
  }

  // Against the registered instance, the same harvest yields a ticket
  // sealed under a random key: nothing to guess.
  krb5::TgsRequest5 inst_req;
  inst_req.service = bob_email;
  inst_req.lifetime = ksim::kHour;
  auto inst_reply = bed.eve().RawTgsRequest(bed.realm, inst_req);
  if (inst_reply.ok()) {
    report.instance_ticket_issued = true;
    report.instance_password_recovered =
        CrackSealedTicket(inst_reply.value().sealed_ticket, bob_email,
                          CommonPasswordDictionary())
            .has_value();
  }
  return report;
}

}  // namespace kattack
