#include "src/attacks/testbed.h"

#include "src/attacks/passwords.h"

namespace kattack {

namespace {

krb4::AppServerOptions ServerOptions(const TestbedConfig& config) {
  krb4::AppServerOptions options;
  options.replay_cache = config.server_replay_cache;
  options.check_address = config.server_check_address;
  options.clock_skew_limit = config.clock_skew_limit;
  return options;
}

}  // namespace

Testbed4::Testbed4(TestbedConfig config) : config_(config) {
  world_ = config.faults.has_value()
               ? std::make_unique<ksim::World>(config.seed, *config.faults)
               : std::make_unique<ksim::World>(config.seed);
  // Start the simulation at a plausible "afternoon" so negative skews stay
  // positive in absolute time.
  world_->clock().Set(1000000 * ksim::kSecond);

  krb4::KdcDatabase db;
  kcrypto::Prng key_prng = world_->prng().Fork();

  // TGS key.
  db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
  // Application services.
  mail_key_ = db.AddServiceWithRandomKey(mail_principal(), key_prng);
  file_key_ = db.AddServiceWithRandomKey(file_principal(), key_prng);
  backup_key_ = db.AddServiceWithRandomKey(backup_principal(), key_prng);
  // Admin plane (off by default so the historical key stream stays pinned).
  if (config.enable_kadmin) {
    db.AddServiceWithRandomKey(kadmin::AdminPrincipal(realm), key_prng);
    db.AddUser(oper_principal(), kOperPassword);
  }

  // Users.
  users_.emplace_back(alice_principal(), kAlicePassword);
  users_.emplace_back(bob_principal(), kBobPassword);
  kcrypto::Prng pop_prng = world_->prng().Fork();
  auto population =
      MakePopulation(pop_prng, PopulationConfig{config.extra_users, config.weak_fraction});
  for (int i = 0; i < static_cast<int>(population.size()); ++i) {
    krb4::Principal user = krb4::Principal::User("user" + std::to_string(i), realm);
    users_.emplace_back(user, population[i].first);
  }
  for (const auto& [principal, password] : users_) {
    db.AddUser(principal, password);
  }

  krb4::KdcOptions kdc_options;
  kdc_options.reply_cache_window = config.kdc_reply_cache_window;
  kdc_options.serve_batched = config.kdc_serve_batched;
  // With zero slaves the replica set passes its PRNG fork straight through
  // to the primary, so default-config reply bytes stay pinned
  // (tests/integration/kdc_capture_test.cc).
  kdcs_ = std::make_unique<krb4::KdcReplicaSet4>(&world_->network(), kAsAddr, kTgsAddr,
                                                 world_->MakeHostClock(0), realm, std::move(db),
                                                 world_->prng().Fork(), config.kdc_slaves,
                                                 kdc_options);

  mail_server_ = std::make_unique<krb4::AppServer4>(
      &world_->network(), kMailAddr, mail_principal(), mail_key_, world_->MakeHostClock(0),
      [this](const krb4::VerifiedSession& session, const kerb::Bytes&) {
        mail_log_.push_back("mail-check " + session.client.ToString());
        return kerb::ToBytes("You have 3 messages.");
      },
      ServerOptions(config));

  file_server_ = std::make_unique<krb4::AppServer4>(
      &world_->network(), kFileAddr, file_principal(), file_key_, world_->MakeHostClock(0),
      [this](const krb4::VerifiedSession& session, const kerb::Bytes& op) {
        std::string operation = op.empty() ? std::string("mount-home") : kerb::ToString(op);
        file_log_.push_back(operation + " by " + session.client.ToString());
        return kerb::ToBytes("ok: " + operation);
      },
      ServerOptions(config));

  backup_server_ = std::make_unique<krb4::AppServer4>(
      &world_->network(), kBackupAddr, backup_principal(), backup_key_,
      world_->MakeHostClock(0),
      [this](const krb4::VerifiedSession& session, const kerb::Bytes& op) {
        std::string operation = op.empty() ? std::string("list-archives") : kerb::ToString(op);
        backup_log_.push_back(operation + " by " + session.client.ToString());
        return kerb::ToBytes("backup-ok: " + operation);
      },
      ServerOptions(config));

  if (config.enable_kadmin) {
    kadmin::AdminPolicy admin_policy;
    admin_policy.clock_skew_limit = config.clock_skew_limit;
    kadmin_server_ = std::make_unique<kadmin::KadminServer>(
        &world_->network(), kAdminAddr, realm, &kdcs_->primary().database(),
        world_->MakeHostClock(0), world_->prng().Fork(), admin_policy);
  }

  alice_ = MakeClient(alice_principal(), kAliceAddr);
  bob_ = MakeClient(bob_principal(), kBobAddr);
}

krb4::Principal Testbed4::mail_principal() const {
  return krb4::Principal::Service("pop", "mailhub", realm);
}
krb4::Principal Testbed4::file_principal() const {
  return krb4::Principal::Service("nfs", "fileserver", realm);
}
krb4::Principal Testbed4::backup_principal() const {
  return krb4::Principal::Service("backup", "vault", realm);
}
krb4::Principal Testbed4::alice_principal() const {
  return krb4::Principal::User("alice", realm);
}
krb4::Principal Testbed4::bob_principal() const { return krb4::Principal::User("bob", realm); }
krb4::Principal Testbed4::oper_principal() const {
  return krb4::Principal{"oper", "admin", realm};
}

std::unique_ptr<kadmin::AdminClient> Testbed4::MakeAdminClient(krb4::Client4& client) {
  auto admin = std::make_unique<kadmin::AdminClient>(&client, &world_->network(),
                                                     world_->MakeHostClock(0), kAdminAddr,
                                                     kcrypto::Prng(world_->prng().NextU64()));
  if (config_.client_retry.has_value()) {
    admin->ConfigureRetry(&world_->clock(), *config_.client_retry, world_->prng().NextU64());
  }
  return admin;
}

std::unique_ptr<krb4::Client4> Testbed4::MakeClient(const krb4::Principal& user,
                                                    const ksim::NetAddress& addr) {
  auto client = std::make_unique<krb4::Client4>(&world_->network(), addr,
                                                world_->MakeHostClock(0), user, kAsAddr,
                                                kTgsAddr);
  if (config_.client_retry.has_value()) {
    client->ConfigureRetry(&world_->clock(), *config_.client_retry, world_->prng().NextU64());
    kdcs_->AttachClient(*client);
  }
  return client;
}

}  // namespace kattack
