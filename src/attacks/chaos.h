// Experiment B12 — chaos study: the full protocol stack under a faulty
// network.
//
// The paper treats the network as "completely open": packets may be lost,
// duplicated, reordered, corrupted, or delayed, and KDCs go down ("there
// are several slave Kerberos servers which can respond to ticket
// requests"). This harness sweeps seeded fault rates over a live testbed —
// clients logging in, fetching tickets, and calling the mail service with
// mutual authentication — and checks the robustness invariant the rest of
// this PR exists to uphold:
//
//   every exchange either succeeds with exactly the honest payload, or
//   fails closed with a clean protocol error. Never a forged or corrupted
//   acceptance, never an internal error, never a hang, and never a
//   double-issued ticket (a duplicated KDC request answered with different
//   bytes).
//
// Faults, retries, and timeouts all run on the seeded PRNG and the virtual
// clock, so a whole chaos run is a deterministic function of (config, seed)
// — chaos_test replays runs and compares fault-schedule digests.

#ifndef SRC_ATTACKS_CHAOS_H_
#define SRC_ATTACKS_CHAOS_H_

#include <cstdint>

#include "src/sim/faults.h"
#include "src/sim/retry.h"

namespace kattack {

struct ChaosConfig {
  uint64_t seed = 31337;
  int exchanges = 40;  // mail calls attempted (plus the logins they need)

  // Per-call fault probabilities, fed symmetrically into the FaultPlan
  // (drop applies to both request and reply, corrupt likewise).
  double drop = 0;
  double duplicate = 0;
  double reorder = 0;
  double corrupt = 0;
  ksim::Duration delay = 5 * ksim::kMillisecond;
  ksim::Duration delay_jitter = 20 * ksim::kMillisecond;

  // Deployment shape.
  int kdc_slaves = 1;
  bool primary_blackout = false;  // KDC host dark for the middle third
  ksim::RetryPolicy retry;
  ksim::Duration kdc_reply_cache_window = 30 * ksim::kSecond;
  bool server_replay_cache = true;  // authenticator replay detection stays on
  bool preauth = false;             // V5 only: hardened AS exchange
  // Routes the KDCs through the batched dispatch entry points (n=1
  // batches). The chaos tests pin batched and sequential serving to
  // identical reports — same verdicts, same digests.
  bool batched = false;
};

struct ChaosReport {
  uint64_t attempted = 0;      // mail exchanges the scenario tried
  uint64_t succeeded = 0;      // exact expected payload came back
  uint64_t failed_closed = 0;  // clean protocol error (incl. login failure)
  uint64_t bad_successes = 0;  // accepted reply with wrong bytes — forgery
  uint64_t internal_errors = 0;  // kInternal anywhere — invariant breach
  uint64_t logins = 0;

  // Double-issue accounting: divergences at KDC hosts must be zero when the
  // reply cache is on; divergences elsewhere (app servers without a reply
  // cache) are expected and recorded for contrast.
  uint64_t kdc_divergences = 0;
  uint64_t kdc_reply_cache_hits = 0;

  uint64_t schedule_digest = 0;  // FaultyNetwork's fault-schedule FNV digest
  ksim::FaultyNetwork::Stats net;
  ksim::RetryStats retry;
};

// Drives the V4 testbed (alice against the mail server) through
// `config.exchanges` mutually-authenticated mail calls under the configured
// faults. Deterministic per (config, seed).
ChaosReport RunChaosStudy4(const ChaosConfig& config);

// The same study over the V5 stack (Testbed5, TLV encodings, optional
// preauthentication).
ChaosReport RunChaosStudy5(const ChaosConfig& config);

}  // namespace kattack

#endif  // SRC_ATTACKS_CHAOS_H_
