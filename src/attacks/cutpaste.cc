#include "src/attacks/cutpaste.h"

#include "src/attacks/testbed5.h"
#include "src/crypto/crc32.h"

namespace kattack {

namespace {

using krb5::TgsRequest5;

// The man in the middle. Phase 1: rewrite alice's TGS request and capture
// the issued ticket. Phase 2: intercept her AP request to the service and
// impersonate the server.
class EncTktMitm : public ksim::Adversary {
 public:
  EncTktMitm(const CutPasteScenario& scenario, Testbed5& bed)
      : scenario_(scenario), bed_(bed) {}

  Decision OnRequest(ksim::Message& msg) override {
    if (msg.dst == Testbed5::kTgsAddr && msg.src == Testbed5::kAliceAddr) {
      RewriteTgsRequest(msg);
      return {};
    }
    if (msg.dst == Testbed5::kMailAddr && msg.src == Testbed5::kAliceAddr &&
        session_key_.has_value()) {
      return ImpersonateServer(msg);
    }
    return {};
  }

  bool OnReply(const ksim::Message& request, kerb::Bytes& reply) override {
    if (!(request.dst == Testbed5::kTgsAddr) || !modified_) {
      return false;
    }
    // Capture the issued ticket and open it with eve's TGT session key.
    auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgTgsRep, reply);
    if (!tlv.ok()) {
      return false;
    }
    auto rep = krb5::TgsReply5::FromTlv(tlv.value());
    if (!rep.ok()) {
      return false;
    }
    kdc_accepted_ = true;
    auto ticket = krb5::Ticket5::Unseal(bed_.eve().tgs_credentials()->session_key,
                                        rep.value().sealed_ticket, enc_);
    if (ticket.ok()) {
      session_key_ = kcrypto::DesKey(ticket.value().session_key);
    }
    return false;
  }

  bool modified() const { return modified_; }
  bool kdc_accepted() const { return kdc_accepted_; }
  bool session_key_recovered() const { return session_key_.has_value(); }
  bool mutual_auth_spoofed() const { return mutual_auth_spoofed_; }
  const std::string& intercepted_data() const { return intercepted_data_; }

 private:
  void RewriteTgsRequest(ksim::Message& msg) {
    auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgTgsReq, msg.payload);
    if (!tlv.ok()) {
      return;
    }
    auto decoded = TgsRequest5::FromTlv(tlv.value());
    if (!decoded.ok()) {
      return;
    }
    TgsRequest5 req = decoded.value();
    if (req.options & krb5::kOptEncTktInSkey) {
      return;  // already rewritten
    }

    // The checksum value sealed in the authenticator equals the checksum of
    // the original (fully public) request fields.
    kerb::Bytes original_input = req.ChecksumInput();

    // The rewrite.
    req.options |= krb5::kOptEncTktInSkey;
    req.additional_ticket = bed_.eve().tgs_credentials()->sealed_tgt;

    if (scenario_.request_checksum == kcrypto::ChecksumType::kCrc32) {
      // Steer the CRC back with four bytes of authorization data.
      uint32_t target = kcrypto::Crc32(original_input);
      kerb::Bytes original_authz = req.authorization_data;
      req.authorization_data = original_authz;
      req.authorization_data.insert(req.authorization_data.end(), 4, 0);
      kerb::Bytes padded_input = req.ChecksumInput();
      kerb::Bytes prefix(padded_input.begin(), padded_input.end() - 4);
      auto patch = kcrypto::ForgePatch(prefix, target);
      std::copy(patch.begin(), patch.end(), req.authorization_data.end() - 4);
    }
    // For a collision-proof checksum there is nothing the attacker can do;
    // the rewrite goes out anyway and the TGS will reject it.

    msg.payload = req.ToTlv().Encode();
    modified_ = true;
  }

  Decision ImpersonateServer(ksim::Message& msg) {
    auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgApReq, msg.payload);
    if (!tlv.ok()) {
      return {};
    }
    auto req = krb5::ApRequest5::FromTlv(tlv.value());
    if (!req.ok()) {
      return {};
    }
    auto auth =
        krb5::Authenticator5::Unseal(*session_key_, req.value().sealed_authenticator, enc_);
    if (!auth.ok()) {
      return {};
    }
    intercepted_data_ = kerb::ToString(req.value().app_data);

    // Forge the server half of bidirectional authentication.
    krb5::EncApRepPart5 part;
    part.timestamp = auth.value().timestamp;
    kenc::TlvMessage reply(krb5::kMsgApRep);
    reply.SetBytes(krb5::tag::kSealedPart, SealTlv(*session_key_, part.ToTlv(), enc_, prng_));
    reply.SetBytes(krb5::tag::kAppData, kerb::ToBytes("mail-ok: mail-check"));
    mutual_auth_spoofed_ = true;
    return Decision{false, reply.Encode()};
  }

  CutPasteScenario scenario_;
  Testbed5& bed_;
  krb5::EncLayerConfig enc_;  // Draft 3 defaults
  kcrypto::Prng prng_{0xe7e};
  bool modified_ = false;
  bool kdc_accepted_ = false;
  std::optional<kcrypto::DesKey> session_key_;
  bool mutual_auth_spoofed_ = false;
  std::string intercepted_data_;
};

}  // namespace

CutPasteReport RunEncTktInSkeyCutPaste(const CutPasteScenario& scenario) {
  Testbed5Config config;
  config.seed = scenario.seed;
  config.client_options.request_checksum = scenario.request_checksum;
  config.kdc_policy.enforce_enc_tkt_cname_match = scenario.enforce_cname_match;
  Testbed5 bed(config);
  CutPasteReport report;

  if (!bed.eve().Login(Testbed5::kEvePassword).ok()) {
    return report;
  }
  if (!bed.alice().Login(Testbed5::kAlicePassword).ok()) {
    return report;
  }

  EncTktMitm mitm(scenario, bed);
  bed.world().network().SetAdversary(&mitm);

  // Alice asks for a mail ticket and uses it with mutual authentication,
  // sending sensitive content once she "knows" it is the real server.
  auto result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true,
                                        kerb::ToBytes("FETCH inbox/secret-draft"));
  (void)result;
  bed.world().network().SetAdversary(nullptr);

  report.request_modified = mitm.modified();
  report.kdc_accepted = mitm.kdc_accepted();
  report.session_key_recovered = mitm.session_key_recovered();
  report.mutual_auth_spoofed = mitm.mutual_auth_spoofed();
  report.intercepted_data = mitm.intercepted_data();
  return report;
}

}  // namespace kattack
