#include "src/attacks/timespoof.h"

#include "src/attacks/testbed.h"
#include "src/encoding/io.h"
#include "src/sim/timeservice.h"

namespace kattack {

namespace {

// Fabricates unauthenticated time-service replies carrying `lie`.
class TimeLiar : public ksim::Adversary {
 public:
  explicit TimeLiar(ksim::Time lie) : lie_(lie) {}

  Decision OnRequest(ksim::Message& msg) override {
    if (msg.dst.port == 37) {  // the unauthenticated TIME port
      kenc::Writer w;
      w.PutU64(static_cast<uint64_t>(lie_));
      return Decision{false, w.Take()};
    }
    if (msg.dst.port == 4037) {  // the authenticated variant: best effort
      kenc::Reader r(msg.payload);
      auto nonce = r.GetU64();
      kenc::Writer w;
      w.PutU64(nonce.ok() ? nonce.value() : 0);  // echo the nonce — that part is easy
      w.PutU64(static_cast<uint64_t>(lie_));
      w.PutU64(0xdeadbeefdeadbeefull);  // but the MAC needs the key
      return Decision{false, w.Take()};
    }
    return {};
  }

 private:
  ksim::Time lie_;
};

}  // namespace

TimeSpoofReport RunTimeSpoofReplay(const TimeSpoofScenario& scenario) {
  TestbedConfig config;
  config.seed = scenario.seed;
  Testbed4 bed(config);
  TimeSpoofReport report;

  // A time service the mail server host syncs from, plus a key shared with
  // the server for the authenticated variant.
  const ksim::NetAddress time_addr{0x0a000037, 37};
  ksim::HostClock time_clock = bed.world().MakeHostClock(0);
  kcrypto::DesKey time_key = bed.world().prng().NextDesKey();
  ksim::UnauthTimeService unauth_svc(&bed.world().network(), time_addr, &time_clock);
  const ksim::NetAddress auth_time_addr{0x0a000038, 4037};
  ksim::AuthTimeService auth_svc(&bed.world().network(), auth_time_addr, &time_clock,
                                 time_key);

  const ksim::NetAddress server_host{0x0a000010, 219};  // the mail host itself
  auto sync_server_clock = [&]() -> bool {
    if (scenario.authenticated_time_service) {
      auto t = ksim::AuthTimeService::Query(&bed.world().network(), server_host,
                                            auth_time_addr, time_key,
                                            bed.world().prng().NextU64());
      if (!t.ok()) {
        return false;  // keeps its current clock
      }
      bed.mail_server().clock().AdjustTo(t.value());
      return true;
    }
    auto t = ksim::UnauthTimeService::Query(&bed.world().network(), server_host, time_addr);
    if (!t.ok()) {
      return false;
    }
    bed.mail_server().clock().AdjustTo(t.value());
    return true;
  };

  // Eve wiretaps alice's mail check and keeps the AP request.
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
    return report;
  }
  if (!bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false).ok()) {
    return report;
  }
  bed.world().network().SetAdversary(nullptr);
  ksim::Time capture_time = bed.world().clock().Now();
  kerb::Bytes stolen;
  for (const auto& exchange : recorder.exchanges()) {
    if (exchange.request.dst == Testbed4::kMailAddr) {
      stolen = exchange.request.payload;
    }
  }

  // Hours later the authenticator is stale; a straight replay fails.
  bed.world().clock().Advance(scenario.staleness);
  report.stale_replay_rejected_first =
      !bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr, stolen).ok();

  // Eve lies to the server's next time sync, rolling its clock back to the
  // capture time.
  TimeLiar liar(capture_time);
  bed.world().network().SetAdversary(&liar);
  report.time_sync_succeeded = sync_server_clock();
  bed.world().network().SetAdversary(nullptr);
  report.server_clock_corrupted =
      std::llabs(bed.mail_server().clock().Now() - capture_time) < ksim::kMinute;

  // Replay again against the misled server.
  auto replay = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr, stolen);
  report.stale_replay_accepted_after = replay.ok();
  if (!bed.mail_log().empty()) {
    report.evidence = bed.mail_log().back();
  }
  return report;
}

}  // namespace kattack
