#include "src/attacks/rotation.h"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "src/admin/kadmin.h"
#include "src/attacks/testbed.h"
#include "src/common/bytes.h"
#include "src/krb4/kdcstore.h"
#include "src/krb4/principal_store.h"

namespace kattack {

namespace {

kerb::BytesView StrView(std::string_view s) {
  return kerb::BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

// Terminal server verdicts are hard failures; anything the retry machinery
// classifies as retryable exhausted its budget and failed closed. Under
// in-flight corruption a flipped bit can survive framing and draw a
// terminal verdict (undecryptable ticket, unknown principal, skewed
// timestamp) that is indistinguishable from a genuine rejection, so
// corrupt runs only pin invariant breaches (kInternal) as hard; every
// fault shape that never alters bytes keeps the strict zero-terminal bar.
void ClassifyCall(kerb::ErrorCode code, bool strict, uint64_t& failed_closed,
                  uint64_t& hard) {
  if (kerb::IsRetryable(code) ||
      (!strict && code != kerb::ErrorCode::kInternal)) {
    ++failed_closed;
  } else {
    ++hard;
  }
}

bool RingEqual(const krb4::PrincipalEntry& a, const krb4::PrincipalEntry& b) {
  if (a.kind != b.kind || a.max_life != b.max_life || a.max_renew != b.max_renew ||
      a.keys.size() != b.keys.size()) {
    return false;
  }
  for (size_t i = 0; i < a.keys.size(); ++i) {
    if (a.keys[i].kvno != b.keys[i].kvno || a.keys[i].not_after != b.keys[i].not_after ||
        a.keys[i].key.bytes() != b.keys[i].key.bytes()) {
      return false;
    }
  }
  return true;
}

bool SameDatabase(krb4::KdcDatabase& a, krb4::KdcDatabase& b) {
  auto pa = a.Principals();
  auto pb = b.Principals();
  if (pa.size() != pb.size()) {
    return false;
  }
  for (const krb4::Principal& p : pa) {
    auto ea = a.LookupEntry(p);
    auto eb = b.LookupEntry(p);
    if (!ea.ok() || !eb.ok() || !RingEqual(ea.value(), eb.value())) {
      return false;
    }
  }
  return true;
}

// No replica may ever hold a half-applied rotation: at the same kvno the
// whole ring must match the primary, and no slave runs ahead of it.
bool NoHalfAppliedRing(krb4::KdcDatabase& primary, krb4::KdcDatabase& slave) {
  for (const krb4::Principal& p : slave.Principals()) {
    auto es = slave.LookupEntry(p);
    auto ep = primary.LookupEntry(p);
    if (!es.ok() || !ep.ok()) {
      return false;  // slave knows a principal the primary does not
    }
    if (es.value().kvno() > ep.value().kvno()) {
      return false;
    }
    if (es.value().kvno() == ep.value().kvno() && !RingEqual(es.value(), ep.value())) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool RotationInvariantsHold(const RotationReport& r) {
  return r.old_ticket_hard_failures == 0 && r.fresh_hard_failures == 0 &&
         r.admin_hard_failures == 0 && r.kdc_divergences == 0 &&
         r.replay_served_from_cache && r.stale_replay_rejected && r.intercept_rejected &&
         r.tamper_rejected && r.splice_no_apply && r.old_password_rejected &&
         r.new_password_accepted && r.rotation_atomic && r.replicas_converged &&
         r.recovery_consistent;
}

RotationReport RunRotationStudy(const RotationConfig& config) {
  // The fault plan starts with delays only; the chaotic rates switch on
  // after setup (logins and the old ticket must exist for the run to mean
  // anything), exactly as a deployment degrades after being healthy.
  ksim::FaultPlan plan;
  plan.link.delay = config.delay;
  plan.link.delay_jitter = config.delay_jitter;

  TestbedConfig tb;
  tb.seed = config.seed;
  tb.faults = plan;
  tb.kdc_slaves = config.kdc_slaves;
  tb.client_retry = config.retry;
  tb.kdc_reply_cache_window = config.kdc_reply_cache_window;
  tb.server_replay_cache = true;
  tb.enable_kadmin = true;
  tb.kdc_serve_batched = config.batched;
  tb.extra_users = 1;  // user0: the fresh-session workload
  Testbed4 bed(tb);

  RotationReport report;
  ksim::SimClock& clock = bed.world().clock();
  ksim::FaultyNetwork* faults = bed.world().faults();
  krb4::KdcDatabase& db = bed.kdc().database();
  kadmin::KadminServer* kadmin_srv = bed.kadmin_server();
  const krb4::Principal bob = bed.bob_principal();
  const krb4::Principal mail = bed.mail_principal();

  // --- Setup (healthy network) ---------------------------------------------
  auto oper = bed.MakeClient(bed.oper_principal(), Testbed4::kOperAddr);
  auto admin = bed.MakeAdminClient(*oper);
  (void)oper->Login(Testbed4::kOperPassword);
  (void)bed.alice().Login(Testbed4::kAlicePassword);
  // The OLD ticket: sealed under the mail key as of kvno 1.
  (void)bed.alice().GetServiceTicket(mail);
  const krb4::Principal fresh_user = bed.users()[2].first;
  const std::string fresh_password = bed.users()[2].second;
  auto fresh = bed.MakeClient(fresh_user, ksim::NetAddress{0x0a000104, 1023});

  // Chaos on.
  faults->plan().link.drop_request = config.drop;
  faults->plan().link.drop_reply = config.drop;
  faults->plan().link.duplicate_request = config.duplicate;
  faults->plan().link.reorder_request = config.reorder;
  faults->plan().link.corrupt_request = config.corrupt;
  faults->plan().link.corrupt_reply = config.corrupt;

  // Evenly spread admin schedule, collision-tolerant.
  std::vector<int> rotate_at;
  for (int j = 0; j < config.service_rotations; ++j) {
    rotate_at.push_back(config.exchanges * (j + 1) / (config.service_rotations + 1));
  }
  std::vector<int> change_at;
  std::vector<std::string> change_passwords;
  for (int j = 0; j < config.password_changes; ++j) {
    change_at.push_back(config.exchanges * (2 * j + 1) /
                        (2 * std::max(config.password_changes, 1)));
    change_passwords.push_back("rotated-Secret_" + std::to_string(j) + "!");
  }

  const bool strict = config.corrupt == 0;
  const uint32_t kdc_host = Testbed4::kAsAddr.host;
  // --- Chaotic phase -------------------------------------------------------
  for (int i = 0; i < config.exchanges; ++i) {
    if (config.primary_blackout && i == config.exchanges / 3) {
      faults->plan().blackouts.push_back(
          ksim::Blackout{kdc_host, 0, std::numeric_limits<ksim::Time>::max()});
    }
    if (config.primary_blackout && i == 2 * config.exchanges / 3) {
      faults->plan().blackouts.clear();
    }

    for (int j = 0; j < config.service_rotations; ++j) {
      if (rotate_at[j] != i) continue;
      ++report.rotations_attempted;
      auto ack = admin->RotateKey(mail);
      if (ack.ok()) {
        ++report.rotations_applied;
        // srvtab distribution, out of band: the service installs its new
        // key and grants the outgoing one the full drain window.
        auto entry = db.LookupEntry(mail);
        if (entry.ok()) {
          bed.mail_server().Rekey(entry.value().keys.front().key,
                                  clock.Now() + 8 * ksim::kHour);
        }
      } else {
        ClassifyCall(ack.error().code, strict, report.rotations_failed_closed,
                     report.admin_hard_failures);
      }
    }
    for (int j = 0; j < config.password_changes; ++j) {
      if (change_at[j] != i) continue;
      ++report.changes_attempted;
      auto ack = admin->ChangePassword(bob, change_passwords[j]);
      if (ack.ok()) {
        ++report.changes_applied;
      } else {
        ClassifyCall(ack.error().code, strict, report.changes_failed_closed,
                     report.admin_hard_failures);
      }
    }

    // The old-ticket holder's traffic: the cached mail ticket, no refresh.
    ++report.old_ticket_calls;
    auto reply = bed.alice().CallService(Testbed4::kMailAddr, mail, /*want_mutual=*/true);
    if (reply.ok() && kerb::ToString(reply.value()) == "You have 3 messages.") {
      ++report.old_ticket_successes;
    } else if (reply.ok()) {
      // Accepted bytes nobody honest sent. V4 application payload rides in
      // plaintext after the mutual-auth proof, so in-flight corruption CAN
      // reach the caller (the paper's KRB_SAFE/KRB_PRIV gap); with no
      // corruption configured it is a forgery and therefore hard.
      if (strict) {
        ++report.old_ticket_hard_failures;
      } else {
        ++report.payload_corruptions;
      }
    } else {
      ClassifyCall(reply.code(), strict, report.old_ticket_failed_closed,
                   report.old_ticket_hard_failures);
    }

    // Fresh sessions keep the AS/TGS path (and new-kvno tickets) in play.
    if (i % 4 == 2) {
      ++report.fresh_calls;
      fresh->Logout();
      kerb::Status login = fresh->Login(fresh_password);
      if (!login.ok()) {
        ClassifyCall(login.code(), strict, report.fresh_failed_closed,
                     report.fresh_hard_failures);
      } else {
        auto fresh_reply =
            fresh->CallService(Testbed4::kMailAddr, mail, /*want_mutual=*/true);
        if (fresh_reply.ok() && kerb::ToString(fresh_reply.value()) == "You have 3 messages.") {
          ++report.fresh_successes;
        } else if (fresh_reply.ok()) {
          if (strict) {
            ++report.fresh_hard_failures;
          } else {
            ++report.payload_corruptions;
          }
        } else {
          ClassifyCall(fresh_reply.code(), strict, report.fresh_failed_closed,
                       report.fresh_hard_failures);
        }
      }
    }

    if (!config.kprop_paused && i % 6 == 5) {
      bed.kdc_replicas().Propagate();
    }
    clock.Advance(2 * ksim::kSecond);
  }

  // --- Recovery: faults off ------------------------------------------------
  faults->plan().link = ksim::LinkFaults{};
  faults->plan().blackouts.clear();

  // Half-applied-ring check BEFORE the catch-up cycles: whatever state the
  // chaotic (possibly paused) propagation left behind must already be a
  // consistent prefix.
  report.rotation_atomic = true;
  for (int i = 0; i < bed.kdc_replicas().slave_count(); ++i) {
    report.rotation_atomic =
        report.rotation_atomic && NoHalfAppliedRing(db, bed.kdc_replicas().slave(i).database());
  }

  // --- Probes (deterministic, clean network) -------------------------------
  ksim::Network& net = bed.world().network();
  const ksim::NetAddress admin_addr = Testbed4::kAdminAddr;
  const uint64_t probe_nonce = 0x0ddba11c0ffee001ull;

  uint64_t applied_before = kadmin_srv->applied();
  auto wire_a = admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                    StrView("final-Probe_99!"), probe_nonce);
  if (wire_a.ok()) {
    auto r1 = net.Call(Testbed4::kOperAddr, admin_addr, wire_a.value());
    const uint32_t kvno_after = db.Kvno(bob);
    auto r2 = net.Call(Testbed4::kOperAddr, admin_addr, wire_a.value());
    report.replay_served_from_cache = r1.ok() && r2.ok() && r1.value() == r2.value() &&
                                      db.Kvno(bob) == kvno_after &&
                                      kadmin_srv->applied() == applied_before + 1;

    // Interception: eve re-originates honest bytes from her own host.
    auto wire_c = admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                      StrView("eve-Hostile_99!"), probe_nonce + 1);
    if (wire_c.ok()) {
      auto rc = net.Call(Testbed4::kEveAddr, admin_addr, wire_c.value());
      report.intercept_rejected = !rc.ok() && db.Kvno(bob) == kvno_after;
    }

    // Tampering: one flipped bit in the sealed body.
    auto wire_d = admin->BuildRequest(kadmin::AdminOp::kRotateKey, mail, {}, probe_nonce + 2);
    if (wire_d.ok()) {
      const uint32_t mail_kvno_before = db.Kvno(mail);
      kerb::Bytes bent = wire_d.value();
      bent.back() ^= 0x40;
      auto rd = net.Call(Testbed4::kOperAddr, admin_addr, bent);
      report.tamper_rejected = !rd.ok() && db.Kvno(mail) == mail_kvno_before;
    }

    // Let every freshness window (reply cache 2m, skew 5m) close, but stay
    // inside the 10m nonce window.
    clock.Advance(6 * ksim::kMinute);
    auto r3 = net.Call(Testbed4::kOperAddr, admin_addr, wire_a.value());
    report.stale_replay_rejected = !r3.ok() && db.Kvno(bob) == kvno_after;

    // Splice: fresh authenticator, applied nonce, different body — the ack
    // cache answers with the ORIGINAL verdict and nothing applies.
    uint64_t applied_mid = kadmin_srv->applied();
    auto wire_e = admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                      StrView("splice-Body_x77!"), probe_nonce);
    if (wire_e.ok() && r1.ok()) {
      auto re = net.Call(Testbed4::kOperAddr, admin_addr, wire_e.value());
      report.splice_no_apply = re.ok() && re.value() == r1.value() &&
                               db.Kvno(bob) == kvno_after &&
                               kadmin_srv->applied() == applied_mid;
    }
  }

  // Exactly one password opens bob's account, and (changes applied) it is
  // not the original one.
  std::vector<std::string> candidates;
  candidates.emplace_back(Testbed4::kBobPassword);
  for (const std::string& pw : change_passwords) candidates.push_back(pw);
  candidates.emplace_back("final-Probe_99!");
  int working = -1;
  int working_count = 0;
  for (int c = 0; c < static_cast<int>(candidates.size()); ++c) {
    bed.bob().Logout();
    if (bed.bob().Login(candidates[c]).ok()) {
      working = c;
      ++working_count;
    }
    clock.Advance(ksim::kSecond);
  }
  const bool changed = db.Kvno(bob) > 1;
  report.old_password_rejected = working_count == 1 && (changed ? working != 0 : working == 0);
  report.new_password_accepted = working_count == 1 && changed && working != 0;

  // --- Replica catch-up and durability -------------------------------------
  for (int k = 0; k < 3; ++k) {
    bed.kdc_replicas().Propagate();
  }
  report.replicas_converged = true;
  for (int i = 0; i < bed.kdc_replicas().slave_count(); ++i) {
    report.replicas_converged =
        report.replicas_converged && SameDatabase(db, bed.kdc_replicas().slave(i).database());
  }

  report.recovery_consistent = false;
  if (auto* prop = bed.kdc_replicas().propagation()) {
    prop->store().Crash();
    auto recovered = prop->store().Recover();
    if (recovered.ok()) {
      krb4::KdcDatabase rebuilt;
      bool ok = krb4::LoadSnapshotEntries(rebuilt, recovered.value().base).ok();
      for (const kstore::WalRecord& rec : recovered.value().records) {
        ok = ok && krb4::ApplyStoreRecord(rebuilt, rec.op, rec.payload).ok();
      }
      report.recovery_consistent = ok && SameDatabase(rebuilt, db);
    }
  } else {
    // Zero-slave deployments have no durable store to crash; vacuously ok.
    report.recovery_consistent = bed.kdc_replicas().slave_count() == 0;
  }

  // --- Bookkeeping ---------------------------------------------------------
  report.old_key_accepts = bed.mail_server().old_key_accepts();
  report.ack_replays = kadmin_srv->ack_replays();
  report.bob_kvno = db.Kvno(bob);
  report.mail_kvno = db.Kvno(mail);
  report.net = faults->stats();
  report.schedule_digest = faults->schedule_digest();
  report.kdc_divergences = faults->divergences_at(kdc_host);
  for (int i = 0; i < bed.kdc_replicas().slave_count(); ++i) {
    report.kdc_divergences += faults->divergences_at(kdc_host + 1 + static_cast<uint32_t>(i));
  }
  report.retry = bed.alice().retry_stats();
  return report;
}

}  // namespace kattack
