#include "src/attacks/morris.h"

#include "src/attacks/testbed.h"

namespace kattack {

MorrisReport RunMorrisSpoof(const MorrisScenario& scenario) {
  TestbedConfig config;
  config.seed = scenario.seed;
  Testbed4 bed(config);
  MorrisReport report;

  // The rsh-style service: data on an established connection is a framed V4
  // AP request whose app_data is the command to run. It reuses the file
  // server's principal and key.
  std::vector<std::string> executed;
  std::map<ksim::NetAddress, uint64_t> pending_challenges;

  ksim::TcpServer tcp(
      scenario.isn_policy, scenario.seed + 1,
      [&](const ksim::NetAddress& peer, const kerb::Bytes& data) {
        auto framed = krb4::Unframe4(data);
        if (!framed.ok() || framed.value().first != krb4::MsgType::kApRequest) {
          return;
        }
        auto req = krb4::ApRequest4::Decode(framed.value().second);
        if (!req.ok()) {
          return;
        }
        auto session = bed.file_server().VerifyApRequest(req.value(), peer.host);
        if (!session.ok()) {
          return;
        }
        if (scenario.challenge_response) {
          // The server answers with a nonce ON THE CONNECTION — which goes
          // to the claimed peer. Execution happens only after the client
          // echoes nonce+1 in a follow-up segment. A blind spoofer never
          // sees the nonce, so the command never runs. (The nonce "reply"
          // is modelled by storing it keyed by peer; the legitimate client
          // would read it from its socket.)
          pending_challenges[peer] = 0xC0FFEE ^ session.value().authenticator_time;
          return;
        }
        executed.push_back(kerb::ToString(req.value().app_data) + " as " +
                           session.value().client.ToString());
      });

  // Alice makes a legitimate connection (eve wiretaps the AP request bytes
  // elsewhere; here we take them straight from her client library — the
  // capture mechanics are exercised in E1).
  if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
    return report;
  }
  auto stolen =
      bed.alice().MakeApRequest(bed.file_principal(), false, kerb::ToBytes("rm thesis.tex"));
  if (!stolen.ok()) {
    return report;
  }

  // Eve probes with her own connection to learn the ISN counter.
  const ksim::NetAddress eve{Testbed4::kEveAddr};
  const ksim::NetAddress alice{Testbed4::kAliceAddr.host, 514};
  uint32_t probe_isn = tcp.Syn(eve);
  (void)tcp.Ack(eve, probe_isn + 1);
  uint32_t predicted = probe_isn + ksim::kIsnIncrement;

  // Blind spoof: SYN as alice (the SYN-ACK goes to alice, not eve), then
  // ACK and data using the predicted ISN. Eve sees nothing back.
  uint32_t actual = tcp.Syn(alice);
  report.isn_predicted = (actual == predicted);
  report.handshake_spoofed = tcp.Ack(alice, predicted + 1).ok();
  if (report.handshake_spoofed) {
    (void)tcp.Data(alice, predicted + 1, stolen.value());
  }
  report.command_executed = !executed.empty();
  if (!executed.empty()) {
    report.evidence = executed.back();
  } else if (scenario.challenge_response && !pending_challenges.empty()) {
    report.evidence = "server issued a challenge the blind attacker cannot read";
  }
  return report;
}

}  // namespace kattack
