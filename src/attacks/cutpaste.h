// Experiment E9 — the appendix's headline attack: CRC-32 fixup plus the
// ENC-TKT-IN-SKEY option negates bidirectional authentication.
//
// "The enemy intercepts this request and modifies it. First, the
// ENC-TKT-IN-SKEY bit is set ... Second, the attacker's own ticket-granting
// ticket is enclosed. Obviously, the attacker knows its session key.
// Finally, the additional authorization data field is filled in with
// whatever information is needed to make the CRC match the original
// version. ... since the attacker has decrypted the ticket, the session key
// for that service request is available. Consequently, the bidirectional
// authentication dialog may be spoofed without trouble."

#ifndef SRC_ATTACKS_CUTPASTE_H_
#define SRC_ATTACKS_CUTPASTE_H_

#include <string>

#include "src/crypto/checksum.h"

namespace kattack {

struct CutPasteReport {
  bool request_modified = false;       // the MITM rewrote the TGS request
  bool kdc_accepted = false;           // checksum verified at the TGS
  bool session_key_recovered = false;  // eve decrypted the issued ticket
  bool mutual_auth_spoofed = false;    // eve answered alice's mutual-auth check
  std::string intercepted_data;        // what alice then sent "to the server"
};

struct CutPasteScenario {
  // The client's TGS-request checksum (Draft 3 literal reading: CRC-32).
  kcrypto::ChecksumType request_checksum = kcrypto::ChecksumType::kCrc32;
  // The fix the designers intended but Draft 3 omitted.
  bool enforce_cname_match = false;
  uint64_t seed = 31337;
};

CutPasteReport RunEncTktInSkeyCutPaste(const CutPasteScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_CUTPASTE_H_
