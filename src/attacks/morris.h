// Experiment E2 — the Morris sequence-number attack carried into a
// Kerberos environment.
//
// "Morris described an attack based on the slow increment rate of the
// initial sequence number counter in some TCP implementations ... it was
// possible to spoof one half of a preauthenticated TCP connection without
// ever seeing any responses from the targeted host. In a Kerberos
// environment, his attack would still work if accompanied by a stolen live
// authenticator, but not if a challenge/response protocol was used."
//
// The model: an rsh-style service accepts a TCP connection and executes the
// command inside a V4 AP request arriving as connection data. The blind
// attacker holds a live captured AP request (from a wiretap elsewhere on
// the network) and spoofs the whole connection toward the claimed client
// address without seeing a single reply byte.

#ifndef SRC_ATTACKS_MORRIS_H_
#define SRC_ATTACKS_MORRIS_H_

#include <string>

#include "src/sim/tcpsim.h"

namespace kattack {

struct MorrisReport {
  bool isn_predicted = false;       // the probe + prediction matched
  bool handshake_spoofed = false;   // blind 3-way handshake completed
  bool command_executed = false;    // the AP request was honoured
  std::string evidence;
};

struct MorrisScenario {
  ksim::IsnPolicy isn_policy = ksim::IsnPolicy::kPredictableCounter;
  // With challenge/response the server's nonce goes to the spoofed address;
  // the blind attacker cannot answer it.
  bool challenge_response = false;
  uint64_t seed = 7;
};

MorrisReport RunMorrisSpoof(const MorrisScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_MORRIS_H_
