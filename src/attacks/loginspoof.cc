#include "src/attacks/loginspoof.h"

#include "src/attacks/testbed.h"
#include "src/hardened/handheld_login.h"
#include "src/hsm/keystore.h"

namespace kattack {

LoginSpoofReport RunLoginSpoofAgainstPassword(uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  Testbed4 bed(config);
  LoginSpoofReport report;

  // The trojaned login: records the keystrokes, then performs the real
  // login so the victim notices nothing.
  std::string keystrokes = Testbed4::kAlicePassword;  // what alice types
  report.captured_input = keystrokes;                 // the trojan's copy
  report.victim_login_ok = bed.alice().Login(keystrokes).ok();
  bed.alice().Logout();

  // A day later, from the attacker's own workstation.
  bed.world().clock().Advance(24 * ksim::kHour);
  auto attacker_session = bed.MakeClient(bed.alice_principal(), Testbed4::kEveAddr);
  report.later_reuse_succeeded = attacker_session->Login(report.captured_input).ok();
  return report;
}

LoginSpoofReport RunLoginSpoofAgainstHandheld(uint64_t seed) {
  LoginSpoofReport report;
  ksim::World world(seed);
  world.clock().Set(1000000 * ksim::kSecond);
  const std::string realm = "ATHENA.SIM";

  // Alice's device key is random — there is no password at all.
  kcrypto::Prng key_prng = world.prng().Fork();
  kcrypto::DesKey device_key = key_prng.NextDesKey();
  khsm::HandheldAuthenticator device(device_key);
  krb4::Principal alice = krb4::Principal::User("alice", realm);

  krb4::KdcDatabase db;
  db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
  db.AddService(alice, device_key);  // the AS shares the device key

  const ksim::NetAddress login_addr{0x0a000058, 790};
  const ksim::NetAddress alice_addr{0x0a000101, 1023};
  const ksim::NetAddress eve_addr{0x0a000666, 31337};
  khard::HandheldLoginServer server(&world.network(), login_addr, world.MakeHostClock(0),
                                    realm, std::move(db), world.prng().Fork());

  // The trojaned login on alice's workstation: shows her the challenge,
  // records the response she types, then completes the login normally.
  auto challenge = khard::RequestLoginChallenge(&world.network(), alice_addr, login_addr,
                                                alice);
  if (!challenge.ok()) {
    return report;
  }
  uint64_t typed_response = device.Respond(challenge.value());
  report.captured_input = std::to_string(typed_response);
  auto victim = khard::CompleteLoginWithResponse(&world.network(), alice_addr, login_addr,
                                                 alice, typed_response);
  report.victim_login_ok = victim.ok();

  // A day later the attacker replays the captured response against a fresh
  // challenge. The server seals its reply under {R_new}K_c; the captured
  // {R_old}K_c opens nothing.
  world.clock().Advance(24 * ksim::kHour);
  auto fresh = khard::RequestLoginChallenge(&world.network(), eve_addr, login_addr, alice);
  if (fresh.ok()) {
    auto attacker = khard::CompleteLoginWithResponse(&world.network(), eve_addr, login_addr,
                                                     alice, typed_response);
    report.later_reuse_succeeded = attacker.ok();
  }
  return report;
}

}  // namespace kattack
