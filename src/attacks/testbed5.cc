#include "src/attacks/testbed5.h"

namespace kattack {

Testbed5::Testbed5(Testbed5Config config) : config_(config) {
  world_ = config.faults.has_value()
               ? std::make_unique<ksim::World>(config.seed, *config.faults)
               : std::make_unique<ksim::World>(config.seed);
  world_->clock().Set(1000000 * ksim::kSecond);

  krb5::KdcDatabase db;
  kcrypto::Prng key_prng = world_->prng().Fork();
  db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
  mail_key_ = db.AddServiceWithRandomKey(mail_principal(), key_prng);
  file_key_ = db.AddServiceWithRandomKey(file_principal(), key_prng);
  backup_key_ = db.AddServiceWithRandomKey(backup_principal(), key_prng);
  db.AddUser(alice_principal(), kAlicePassword);
  db.AddUser(bob_principal(), kBobPassword);
  db.AddUser(eve_principal(), kEvePassword);

  // Zero slaves passes the PRNG fork straight through to the primary, so
  // default-config reply bytes stay pinned (kdc_capture_test).
  kdcs_ = std::make_unique<krb5::KdcReplicaSet5>(&world_->network(), kAsAddr, kTgsAddr,
                                                 world_->MakeHostClock(0), realm, std::move(db),
                                                 world_->prng().Fork(), config.kdc_slaves,
                                                 config.kdc_policy);

  auto make_server = [&](const ksim::NetAddress& addr, const krb5::Principal& principal,
                         const kcrypto::DesKey& key, std::vector<std::string>* log,
                         const std::string& verb, const std::string& reply_text) {
    return std::make_unique<krb5::AppServer5>(
        &world_->network(), addr, principal, key, world_->MakeHostClock(0),
        world_->prng().Fork(),
        [log, verb, reply_text](const krb5::VerifiedSession5& session,
                                const kerb::Bytes& op) {
          std::string operation = op.empty() ? verb : kerb::ToString(op);
          log->push_back(operation + " by " + session.client.ToString());
          return kerb::ToBytes(reply_text + operation);
        },
        config_.server_options);
  };

  mail_server_ = make_server(kMailAddr, mail_principal(), mail_key_, &mail_log_, "mail-check",
                             "mail-ok: ");
  file_server_ = make_server(kFileAddr, file_principal(), file_key_, &file_log_, "mount-home",
                             "file-ok: ");
  backup_server_ = make_server(kBackupAddr, backup_principal(), backup_key_, &backup_log_,
                               "list-archives", "backup-ok: ");

  alice_ = MakeClient(alice_principal(), kAliceAddr, config.client_options);
  bob_ = MakeClient(bob_principal(), kBobAddr, config.client_options);
  eve_ = MakeClient(eve_principal(), kEveAddr, config.client_options);
}

krb5::Principal Testbed5::mail_principal() const {
  return krb5::Principal::Service("pop", "mailhub", realm);
}
krb5::Principal Testbed5::file_principal() const {
  return krb5::Principal::Service("nfs", "fileserver", realm);
}
krb5::Principal Testbed5::backup_principal() const {
  return krb5::Principal::Service("backup", "vault", realm);
}
krb5::Principal Testbed5::alice_principal() const {
  return krb5::Principal::User("alice", realm);
}
krb5::Principal Testbed5::bob_principal() const { return krb5::Principal::User("bob", realm); }
krb5::Principal Testbed5::eve_principal() const { return krb5::Principal::User("eve", realm); }

std::unique_ptr<krb5::Client5> Testbed5::MakeClient(const krb5::Principal& user,
                                                    const ksim::NetAddress& addr,
                                                    const krb5::Client5Options& options) {
  auto client = std::make_unique<krb5::Client5>(&world_->network(), addr,
                                                world_->MakeHostClock(0), user, kAsAddr,
                                                world_->prng().Fork(), options);
  client->AddRealmTgs(realm, kTgsAddr);
  if (config_.client_retry.has_value()) {
    client->ConfigureRetry(&world_->clock(), *config_.client_retry, world_->prng().NextU64());
    kdcs_->AttachClient(*client);
  }
  return client;
}

// --------------------------------------------------------------------------- RealmTree5

RealmTree5::RealmTree5(uint64_t seed, krb5::KdcPolicy5 policy) : policy_(policy) {
  world_ = std::make_unique<ksim::World>(seed);
  world_->clock().Set(2000000 * ksim::kSecond);
  kcrypto::Prng key_prng = world_->prng().Fork();

  kcrypto::DesKey eng_corp_key = key_prng.NextDesKey();
  corp_sales_key_ = key_prng.NextDesKey();

  // ENG.CORP realm.
  krb5::KdcDatabase eng_db;
  eng_db.AddServiceWithRandomKey(krb4::TgsPrincipal("ENG.CORP"), key_prng);
  eng_db.AddUser(alice_principal(), kAlicePassword);
  eng_ = std::make_unique<krb5::Kdc5>(&world_->network(), kEngAs, kEngTgs,
                                      world_->MakeHostClock(0), "ENG.CORP", std::move(eng_db),
                                      world_->prng().Fork(), policy_);
  eng_->AddInterRealmKey("CORP", eng_corp_key);
  eng_->AddRealmRoute("SALES.CORP", "CORP");

  // CORP realm (the transit hop).
  krb5::KdcDatabase corp_db;
  corp_db.AddServiceWithRandomKey(krb4::TgsPrincipal("CORP"), key_prng);
  corp_ = std::make_unique<krb5::Kdc5>(&world_->network(), kCorpAs, kCorpTgs,
                                       world_->MakeHostClock(0), "CORP", std::move(corp_db),
                                       world_->prng().Fork(), policy_);
  corp_->AddInterRealmKey("ENG.CORP", eng_corp_key);
  corp_->AddInterRealmKey("SALES.CORP", corp_sales_key_);

  // SALES.CORP realm with the payroll service.
  krb5::KdcDatabase sales_db;
  sales_db.AddServiceWithRandomKey(krb4::TgsPrincipal("SALES.CORP"), key_prng);
  payroll_key_ = sales_db.AddServiceWithRandomKey(payroll_principal(), key_prng);
  sales_ = std::make_unique<krb5::Kdc5>(&world_->network(), kSalesAs, kSalesTgs,
                                        world_->MakeHostClock(0), "SALES.CORP",
                                        std::move(sales_db), world_->prng().Fork(), policy_);
  sales_->AddInterRealmKey("CORP", corp_sales_key_);

  krb5::AppServer5Options payroll_options;
  payroll_options.enc = policy_.enc;
  payroll_server_ = std::make_unique<krb5::AppServer5>(
      &world_->network(), kPayrollAddr, payroll_principal(), payroll_key_,
      world_->MakeHostClock(0), world_->prng().Fork(),
      [this](const krb5::VerifiedSession5& session, const kerb::Bytes& op) {
        std::string operation = op.empty() ? std::string("view-salary") : kerb::ToString(op);
        std::string path = "[";
        for (size_t i = 0; i < session.transited.size(); ++i) {
          path += (i ? "," : "") + session.transited[i];
        }
        path += "]";
        payroll_log_.push_back(operation + " by " + session.client.ToString() +
                               " transited " + path);
        return kerb::ToBytes("payroll-ok: " + operation);
      },
      payroll_options);

  krb5::Client5Options client_options;
  client_options.enc = policy_.enc;
  alice_ = std::make_unique<krb5::Client5>(&world_->network(), kAliceAddr,
                                           world_->MakeHostClock(0), alice_principal(), kEngAs,
                                           world_->prng().Fork(), client_options);
  alice_->AddRealmTgs("ENG.CORP", kEngTgs);
  alice_->AddRealmTgs("CORP", kCorpTgs);
  alice_->AddRealmTgs("SALES.CORP", kSalesTgs);
}

krb5::Principal RealmTree5::alice_principal() const {
  return krb5::Principal::User("alice", "ENG.CORP");
}

krb5::Principal RealmTree5::payroll_principal() const {
  return krb5::Principal::Service("payroll", "hr-host", "SALES.CORP");
}

}  // namespace kattack
