#include "src/attacks/interrealm.h"

#include "src/attacks/testbed5.h"
#include "src/crypto/checksum.h"

namespace kattack {

namespace {

std::string LastTransited(const std::vector<std::string>& log) {
  if (log.empty()) {
    return "";
  }
  const std::string& entry = log.back();
  size_t pos = entry.find("transited ");
  return pos == std::string::npos ? "" : entry.substr(pos + 10);
}

std::string LastClient(const std::vector<std::string>& log) {
  if (log.empty()) {
    return "";
  }
  const std::string& entry = log.back();
  size_t by = entry.find(" by ");
  size_t transited = entry.find(" transited ");
  if (by == std::string::npos || transited == std::string::npos) {
    return "";
  }
  return entry.substr(by + 4, transited - by - 4);
}

}  // namespace

InterRealmForgeReport RunTransitRealmForgery(const std::string& forged_client_realm,
                                             uint64_t seed) {
  RealmTree5 tree(seed);
  InterRealmForgeReport report;
  krb5::EncLayerConfig enc = tree.policy().enc;
  kcrypto::Prng prng(seed ^ 0xf0f0);

  // Honest baseline.
  if (tree.alice().Login(RealmTree5::kAlicePassword).ok() &&
      tree.alice()
          .CallService(RealmTree5::kPayrollAddr, tree.payroll_principal(), false)
          .ok()) {
    report.honest_access_ok = true;
    report.honest_transited = LastTransited(tree.payroll_log());
  }

  // The compromised CORP mints a cross-realm TGT for a fabricated identity,
  // laundering the transited path to mimic an honest origin.
  krb5::Principal forged_client = krb5::Principal::User("ceo", forged_client_realm);
  kcrypto::DesKey forged_session = prng.NextDesKey();
  krb5::Ticket5 forged_tgt;
  forged_tgt.service = krb5::Principal{"krbtgt", "SALES.CORP", "CORP"};
  forged_tgt.client = forged_client;
  forged_tgt.issued_at = tree.world().clock().Now();
  forged_tgt.lifetime = ksim::kHour;
  forged_tgt.session_key = forged_session.bytes();
  // No address (V5 permits omission), and a path that claims the client's
  // realm was honestly crossed.
  if (forged_client_realm != "CORP") {
    forged_tgt.transited = {forged_client_realm};
  }
  kerb::Bytes sealed_forged = forged_tgt.Seal(tree.corp_sales_key(), enc, prng);

  // Use it against SALES' TGS exactly as a real multi-hop client would.
  krb5::TgsRequest5 req;
  req.service = tree.payroll_principal();
  req.lifetime = ksim::kHour;
  req.nonce = prng.NextU64();
  req.tgt_realm = "CORP";
  req.sealed_tgt = sealed_forged;
  krb5::Authenticator5 auth;
  auth.client = forged_client;
  auth.timestamp = tree.world().clock().Now();
  auth.checksum_type = kcrypto::ChecksumType::kCrc32;
  auth.request_checksum = kcrypto::ComputeChecksum(kcrypto::ChecksumType::kCrc32,
                                                   req.ChecksumInput(), forged_session);
  req.sealed_authenticator = auth.Seal(forged_session, enc, prng);

  const ksim::NetAddress attacker{0x0a020066, 40000};  // a CORP-side host
  auto reply = tree.world().network().Call(attacker, RealmTree5::kSalesTgs,
                                           req.ToTlv().Encode());
  if (reply.ok()) {
    auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgTgsRep, reply.value());
    if (tlv.ok()) {
      auto rep = krb5::TgsReply5::FromTlv(tlv.value());
      auto part_tlv = rep.ok() ? UnsealTlv(forged_session, krb5::kMsgEncTgsRepPart,
                                           rep.value().sealed_enc_part, enc)
                               : kerb::Result<kenc::TlvMessage>(rep.error());
      if (rep.ok() && part_tlv.ok()) {
        auto part = krb5::EncTgsRepPart5::FromTlv(part_tlv.value());
        if (part.ok()) {
          kcrypto::DesKey service_session(part.value().session_key);
          krb5::ApRequest5 ap;
          ap.sealed_ticket = rep.value().sealed_ticket;
          krb5::Authenticator5 ap_auth;
          ap_auth.client = forged_client;
          ap_auth.timestamp = tree.world().clock().Now();
          ap.sealed_authenticator = ap_auth.Seal(service_session, enc, prng);
          ap.app_data = kerb::ToBytes("raise-salary ceo 40%");
          auto verdict = tree.world().network().Call(attacker, RealmTree5::kPayrollAddr,
                                                     ap.ToTlv().Encode());
          report.forged_access_ok = verdict.ok();
          if (verdict.ok()) {
            report.forged_client = LastClient(tree.payroll_log());
            report.forged_transited = LastTransited(tree.payroll_log());
          }
        }
      }
    }
  }

  // The only policy that stops a compromised CORP is to distrust CORP — at
  // the price of every honest path through it.
  tree.payroll_server().options().transited_policy = [](const krb5::Ticket5& ticket) {
    for (const auto& realm : ticket.transited) {
      if (realm == "CORP") {
        return false;
      }
    }
    return true;
  };
  // Re-run the forged AP exchange under the strict policy.
  {
    krb5::TgsRequest5 req2 = req;
    req2.nonce = prng.NextU64();
    krb5::Authenticator5 a2;
    a2.client = forged_client;
    a2.timestamp = tree.world().clock().Now();
    a2.checksum_type = kcrypto::ChecksumType::kCrc32;
    a2.request_checksum = kcrypto::ComputeChecksum(kcrypto::ChecksumType::kCrc32,
                                                   req2.ChecksumInput(), forged_session);
    req2.sealed_authenticator = a2.Seal(forged_session, enc, prng);
    auto reply2 = tree.world().network().Call(attacker, RealmTree5::kSalesTgs,
                                              req2.ToTlv().Encode());
    bool forged_again = false;
    if (reply2.ok()) {
      auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgTgsRep, reply2.value());
      auto rep = tlv.ok() ? krb5::TgsReply5::FromTlv(tlv.value())
                          : kerb::Result<krb5::TgsReply5>(tlv.error());
      auto part_tlv = rep.ok() ? UnsealTlv(forged_session, krb5::kMsgEncTgsRepPart,
                                           rep.value().sealed_enc_part, enc)
                               : kerb::Result<kenc::TlvMessage>(rep.error());
      if (rep.ok() && part_tlv.ok()) {
        auto part = krb5::EncTgsRepPart5::FromTlv(part_tlv.value());
        if (part.ok()) {
          kcrypto::DesKey service_session(part.value().session_key);
          krb5::ApRequest5 ap;
          ap.sealed_ticket = rep.value().sealed_ticket;
          krb5::Authenticator5 ap_auth;
          ap_auth.client = forged_client;
          ap_auth.timestamp = tree.world().clock().Now();
          ap.sealed_authenticator = ap_auth.Seal(service_session, enc, prng);
          forged_again = tree.world()
                             .network()
                             .Call(attacker, RealmTree5::kPayrollAddr, ap.ToTlv().Encode())
                             .ok();
        }
      }
    }
    report.strict_policy_blocks_forgery = !forged_again;
  }
  // And the honest path pays the same price.
  {
    auto honest = tree.alice().CallService(RealmTree5::kPayrollAddr,
                                           tree.payroll_principal(), false);
    report.strict_policy_blocks_honest = !honest.ok();
  }
  return report;
}

}  // namespace kattack
