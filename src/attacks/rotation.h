// Experiment B15 — the admin plane under chaos: live key rotation, protected
// password change, and the kvno drain window.
//
// The scenario the 1991 paper could not run: rotate service keys and change
// passwords WHILE the realm serves traffic over a faulty network, with the
// primary KDC blacking out mid-change and propagation to the slaves delayed
// or paused. The invariants under test:
//
//   * An unexpired ticket sealed under a rotated-out key keeps working for
//     its whole drain window — zero hard failures for old-ticket holders.
//     (Transport exhaustion under heavy faults is failing CLOSED and is
//     allowed; a terminal authentication verdict against a valid old ticket
//     is a hard failure and must never happen.)
//   * A password change or rotation either applies exactly once or fails
//     closed — never half-applies, never applies twice across retries,
//     duplicates, or splices.
//   * After recovery (faults cleared, kprop cycles run), every replica
//     holds the same key rings, no replica ever held a half-applied ring,
//     and a crash+recover rebuild of the primary's durable store matches
//     the live database.
//
// Everything runs on the seeded PRNG and virtual clock: a report is a
// deterministic function of its config, which the guard test relies on.

#ifndef SRC_ATTACKS_ROTATION_H_
#define SRC_ATTACKS_ROTATION_H_

#include <cstdint>

#include "src/sim/faults.h"
#include "src/sim/retry.h"

namespace kattack {

struct RotationConfig {
  uint64_t seed = 20260807;
  int exchanges = 60;  // old-ticket mail calls driven through the chaos loop

  // Per-call fault probabilities (symmetric request/reply, as in B12).
  double drop = 0;
  double duplicate = 0;
  double reorder = 0;
  double corrupt = 0;
  ksim::Duration delay = 5 * ksim::kMillisecond;
  ksim::Duration delay_jitter = 20 * ksim::kMillisecond;

  // Deployment shape.
  int kdc_slaves = 1;
  bool primary_blackout = false;  // KDC+kadmin host dark for the middle third
  bool kprop_paused = false;      // no propagation cycles until recovery
  bool batched = false;           // KDCs serve through the batched entry points
  ksim::RetryPolicy retry;
  ksim::Duration kdc_reply_cache_window = 30 * ksim::kSecond;

  // Admin workload spread evenly across the run.
  int password_changes = 3;   // oper changes bob's password
  int service_rotations = 3;  // oper rotates the mail service key
};

struct RotationReport {
  // Goodput of the OLD ticket: alice fetched her mail ticket before the
  // first rotation and never refreshes it.
  uint64_t old_ticket_calls = 0;
  uint64_t old_ticket_successes = 0;
  uint64_t old_ticket_failed_closed = 0;  // transport/corruption exhaustion
  uint64_t old_ticket_hard_failures = 0;  // terminal auth verdict — must be 0
  uint64_t old_key_accepts = 0;           // mail server drain-window unseals

  // Fresh sessions (login + new service ticket) riding the same chaos.
  uint64_t fresh_calls = 0;
  uint64_t fresh_successes = 0;
  uint64_t fresh_failed_closed = 0;
  uint64_t fresh_hard_failures = 0;  // must also be 0
  // Replies accepted with non-honest bytes when corruption is configured:
  // V4 application payload is plaintext after the mutual-auth proof, so a
  // corrupted payload can reach the caller (the paper's KRB_SAFE/KRB_PRIV
  // gap). With corrupt == 0 such a reply is a forgery and counts as a
  // hard failure instead.
  uint64_t payload_corruptions = 0;

  // Admin-plane outcomes during the chaotic phase.
  uint64_t changes_attempted = 0;
  uint64_t changes_applied = 0;
  uint64_t changes_failed_closed = 0;
  uint64_t rotations_attempted = 0;
  uint64_t rotations_applied = 0;
  uint64_t rotations_failed_closed = 0;
  uint64_t admin_hard_failures = 0;  // terminal denial of a legitimate op — must be 0
  uint64_t ack_replays = 0;          // exactly-once cache hits across retries

  uint32_t bob_kvno = 0;   // final key versions at the primary
  uint32_t mail_kvno = 0;

  // Post-chaos probes, run with faults cleared; each must end up true.
  bool replay_served_from_cache = false;  // byte-identical replay: same bytes, no re-apply
  bool stale_replay_rejected = false;     // replay after the windows close
  bool intercept_rejected = false;        // honest bytes re-sent from eve's host
  bool tamper_rejected = false;           // bit-flipped sealed body
  bool splice_no_apply = false;           // nonce reuse with a different body
  bool old_password_rejected = false;     // pre-change password stops working
  bool new_password_accepted = false;     // exactly one live password, a changed one

  // Replica and durability consistency.
  bool rotation_atomic = false;      // no half-applied ring on any replica (pre-catchup)
  bool replicas_converged = false;   // post-propagation rings identical everywhere
  bool recovery_consistent = false;  // crash+recover rebuild == live primary db

  uint64_t kdc_divergences = 0;  // double-issue detector at KDC hosts — must be 0
  uint64_t schedule_digest = 0;  // FaultyNetwork schedule FNV (rerun-stable)
  ksim::FaultyNetwork::Stats net;
  ksim::RetryStats retry;  // alice's exchanger
};

// True when every invariant the harness checks held.
bool RotationInvariantsHold(const RotationReport& report);

RotationReport RunRotationStudy(const RotationConfig& config);

}  // namespace kattack

#endif  // SRC_ATTACKS_ROTATION_H_
