// Experiment E17 — hosts as principals: the srvtab problem.
//
// "In Kerberos, a plaintext key must be used in the initial dialog to
// obtain a ticket-granting ticket. But storing plaintext keys in a machine
// is generally felt to be a bad idea; if a Kerberos key that a machine uses
// for itself is compromised, the intruder can likely impersonate any user
// on that computer, by impersonating requests vouched for by that machine
// (i.e., file mounts or cron jobs)."
//
// The scenario: an NFS-style file server trusts mount requests from the
// workstation's HOST principal, with the target user asserted in the
// request body — the identity-assertion pattern host-to-host Kerberos
// invites. One stolen srvtab and the attacker is everyone.

#ifndef SRC_ATTACKS_HOSTTRUST_H_
#define SRC_ATTACKS_HOSTTRUST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kattack {

struct HostTrustReport {
  bool srvtab_readable = false;          // the plaintext host key, on disk
  bool host_login_succeeded = false;     // attacker authenticates AS the host
  std::vector<std::string> impersonated; // users the attacker then "became"
  bool per_user_tickets_blocked = false; // the fix: no identity assertions
};

struct HostTrustScenario {
  // When true, the file server refuses host-asserted identities and demands
  // the ticket's own client match the affected user — the paper's implicit
  // recommendation ("Kerberos is not a host-to-host protocol").
  bool require_per_user_tickets = false;
  uint64_t seed = 1717;
};

HostTrustReport RunSrvtabCompromise(const HostTrustScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_HOSTTRUST_H_
