// Experiment E14 — adversarial sweep of the encryption unit and keystore.
//
// The paper's design goal for the hardware: "perform cryptographic
// operations without exposing any keys to compromise ... Looking at the
// message definitions, we see that only session keys are ever sent, and
// these are always sent encrypted ... thereby providing us with a very high
// level of assurance." The sweep drives every API with both honest and
// hostile inputs, collects every byte the unit ever emits, and scans for
// any 8-byte key it holds. The contrast case is the plain software client,
// whose credential cache hands the keys straight to a host compromise.

#ifndef SRC_ATTACKS_HSMLEAK_H_
#define SRC_ATTACKS_HSMLEAK_H_

#include <cstdint>
#include <string>

namespace kattack {

struct HsmLeakReport {
  uint64_t operations_attempted = 0;
  uint64_t outputs_scanned = 0;
  uint64_t keys_in_unit = 0;
  uint64_t key_octet_leaks = 0;        // must be zero
  uint64_t usage_violations_blocked = 0;  // purpose-tag enforcement fired
  bool software_cache_leaks = false;   // the contrast: plain client cache
  std::string detail;
};

HsmLeakReport RunEncryptionUnitLeakSweep(uint64_t seed = 1312, int fuzz_rounds = 200);

}  // namespace kattack

#endif  // SRC_ATTACKS_HSMLEAK_H_
