#include "src/attacks/passwords.h"

#include "src/crypto/str2key.h"
#include "src/krb4/messages.h"
#include "src/krb5/enclayer.h"
#include "src/krb5/messages.h"

namespace kattack {

const std::vector<std::string>& CommonPasswordDictionary() {
  static const std::vector<std::string> dictionary = [] {
    std::vector<std::string> base = {
        "password", "123456",   "12345678", "qwerty",   "letmein",  "monkey",   "dragon",
        "baseball", "football", "master",   "shadow",   "superman", "batman",   "trustno1",
        "abc123",   "welcome",  "login",    "admin",    "root",     "guest",    "hello",
        "secret",   "god",      "sex",      "money",    "love",     "freedom",  "whatever",
        "princess", "sunshine", "iloveyou", "starwars", "computer", "michelle", "jessica",
        "pepper",   "daniel",   "access",   "mustang",  "jordan",   "hunter",   "tigger",
        "joshua",   "pass",     "test",     "killer",   "george",   "andrew",   "charlie",
        "thomas",   "ranger",   "buster",   "hockey",   "soccer",   "harley",   "batman1",
        "wizard",   "maggie",   "summer",   "ashley",   "nicole",   "chelsea",  "biteme",
        "matthew",  "robert",   "danielle", "ferrari",  "cookie",   "athena",   "kerberos",
    };
    // Simple mutations: trailing digit, capitalized first letter.
    std::vector<std::string> out = base;
    for (const auto& word : base) {
      out.push_back(word + "1");
      std::string cap = word;
      cap[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(cap[0])));
      out.push_back(cap);
    }
    return out;
  }();
  return dictionary;
}

std::string RandomStrongPassword(kcrypto::Prng& prng) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$%^&*";
  std::string out;
  size_t len = 12 + prng.NextBelow(6);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[prng.NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::vector<std::pair<std::string, bool>> MakePopulation(kcrypto::Prng& prng,
                                                         const PopulationConfig& config) {
  const auto& dictionary = CommonPasswordDictionary();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(static_cast<size_t>(config.size));
  for (int i = 0; i < config.size; ++i) {
    bool weak = prng.NextBelow(1000) < static_cast<uint64_t>(config.weak_fraction * 1000);
    if (weak) {
      out.emplace_back(dictionary[prng.NextBelow(dictionary.size())], true);
    } else {
      out.emplace_back(RandomStrongPassword(prng), false);
    }
  }
  return out;
}

std::optional<std::string> CrackSealedReply(kerb::BytesView sealed_reply_body,
                                            const krb4::Principal& victim,
                                            const std::vector<std::string>& dictionary,
                                            uint64_t* attempts_out) {
  uint64_t attempts = 0;
  for (const auto& candidate : dictionary) {
    ++attempts;
    kcrypto::DesKey guess = kcrypto::StringToKey(candidate, victim.Salt());
    auto plain = krb4::Unseal4(guess, sealed_reply_body);
    if (plain.ok() && krb4::AsReplyBody4::Decode(plain.value()).ok()) {
      if (attempts_out != nullptr) {
        *attempts_out = attempts;
      }
      return candidate;
    }
  }
  if (attempts_out != nullptr) {
    *attempts_out = attempts;
  }
  return std::nullopt;
}

std::optional<std::string> CrackSealedReply5(kerb::BytesView sealed_enc_part,
                                             const krb4::Principal& victim,
                                             const std::vector<std::string>& dictionary,
                                             uint64_t* attempts_out) {
  krb5::EncLayerConfig enc;  // Draft 3 defaults, as on the wire
  uint64_t attempts = 0;
  for (const auto& candidate : dictionary) {
    ++attempts;
    kcrypto::DesKey guess = kcrypto::StringToKey(candidate, victim.Salt());
    if (krb5::UnsealTlv(guess, krb5::kMsgEncAsRepPart, sealed_enc_part, enc).ok()) {
      if (attempts_out != nullptr) {
        *attempts_out = attempts;
      }
      return candidate;
    }
  }
  if (attempts_out != nullptr) {
    *attempts_out = attempts;
  }
  return std::nullopt;
}

}  // namespace kattack
