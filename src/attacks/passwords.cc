#include "src/attacks/passwords.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>
#include <thread>

#include "src/crypto/checksum.h"
#include "src/crypto/des_slice.h"
#include "src/crypto/str2key.h"
#include "src/krb4/messages.h"
#include "src/krb5/enclayer.h"
#include "src/krb5/messages.h"
#include "src/obs/kobs.h"

namespace kattack {

namespace {

// Below this many candidates the thread-spawn overhead beats the win.
constexpr size_t kMinParallelCandidates = 64;

// Runs try_one(i) for i in [0, n) and returns the smallest matching index.
// With multiple workers, indices are claimed from a shared counter in order;
// once some worker records a hit at index h, every index ≥ h still
// unclaimed is abandoned (a worker's future claims are strictly increasing,
// so it can stop the moment its claim passes the best hit). Every index
// below the final best hit is fully tried, which makes the result — the
// minimal matching index — independent of the thread count.
template <typename TryFn>
std::optional<size_t> FirstMatch(size_t n, unsigned threads, const TryFn& try_one) {
  if (threads <= 1 || n < kMinParallelCandidates) {
    for (size_t i = 0; i < n; ++i) {
      if (try_one(i)) {
        return i;
      }
    }
    return std::nullopt;
  }

  std::atomic<size_t> next{0};
  std::atomic<size_t> best{n};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || i >= best.load(std::memory_order_relaxed)) {
        break;
      }
      if (try_one(i)) {
        size_t cur = best.load(std::memory_order_relaxed);
        while (i < cur && !best.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker number `threads`
  for (auto& th : pool) {
    th.join();
  }
  size_t hit = best.load(std::memory_order_relaxed);
  if (hit < n) {
    return hit;
  }
  return std::nullopt;
}

// Chunked variant of FirstMatch for the bitsliced sweep: workers claim
// contiguous chunks of kDesSliceLanes candidates and try_chunk(start, len)
// returns the lowest matching absolute index within its chunk (scanning
// survivors in ascending order). The determinism argument is unchanged:
// chunks are claimed off the shared counter in increasing start order, a
// worker abandons only chunks that start at-or-past the current best hit,
// and within a chunk the lowest index wins — so every candidate below the
// final best is fully tried and the minimal matching index is returned
// regardless of thread count.
template <typename TryChunkFn>
std::optional<size_t> FirstMatchChunked(size_t n, unsigned threads, const TryChunkFn& try_chunk) {
  constexpr size_t kChunk = kcrypto::kDesSliceLanes;
  if (threads <= 1 || n < kMinParallelCandidates) {
    for (size_t start = 0; start < n; start += kChunk) {
      if (auto hit = try_chunk(start, std::min(kChunk, n - start))) {
        return hit;
      }
    }
    return std::nullopt;
  }

  std::atomic<size_t> next{0};
  std::atomic<size_t> best{n};
  auto worker = [&] {
    for (;;) {
      size_t start = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= n || start >= best.load(std::memory_order_relaxed)) {
        break;
      }
      if (auto hit = try_chunk(start, std::min(kChunk, n - start))) {
        size_t cur = best.load(std::memory_order_relaxed);
        while (*hit < cur && !best.compare_exchange_weak(cur, *hit, std::memory_order_relaxed)) {
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) {
    pool.emplace_back(worker);
  }
  worker();
  for (auto& th : pool) {
    th.join();
  }
  size_t hit = best.load(std::memory_order_relaxed);
  if (hit < n) {
    return hit;
  }
  return std::nullopt;
}

// Batched V4 trial: derive candidate keys through the bitsliced engine,
// decrypt only the first sealed block under all of them at once (PCBC with
// zero IV: P0 = D(C0)), and reject every lane whose plaintext lacks the
// Seal4 magic — a 2^-32 false-positive filter that is a strict subset of
// Unseal4's own checks. Survivors are confirmed through the exact scalar
// accept predicate (Unseal4 + Decode), so the result is identical to the
// one-candidate-at-a-time path, lane for lane.
std::optional<size_t> TryChunk4(kerb::BytesView sealed, const std::string& salt,
                                const std::vector<std::string>& dictionary, size_t start,
                                size_t len) {
  if (sealed.size() < 8 || sealed.size() % 8 != 0) {
    return std::nullopt;  // Unseal4 rejects the framing for every candidate
  }
  kcrypto::DesBlock keys[kcrypto::kDesSliceLanes];
  kcrypto::DesSliceKeys ks;
  kcrypto::StringToKeyBatchSchedule(&dictionary[start], len, salt, keys, ks);

  kcrypto::DesSliceState st;
  kcrypto::DesSliceBroadcast(kcrypto::LoadU64BE(sealed.data()), st);
  kcrypto::DesSliceDecrypt(ks, st);
  uint64_t p0[kcrypto::kDesSliceLanes];
  kcrypto::DesSliceStore(st, p0, len);

  constexpr uint32_t kMagic4 = 0x4B524234;  // "KRB4"
  for (size_t i = 0; i < len; ++i) {
    if (static_cast<uint32_t>(p0[i] >> 32) != kMagic4) {
      continue;
    }
    kcrypto::DesKey guess(keys[i]);
    auto plain = krb4::Unseal4(guess, sealed);
    if (plain.ok() && krb4::AsReplyBody4::Decode(plain.value()).ok()) {
      return start + i;
    }
  }
  return std::nullopt;
}

// Batched V5 trial. The sealed EncAsRepPart is CBC under a zero IV with a
// random confounder up front, so the first plaintext block carries no
// structure — instead reject on (a) the checksum-type byte that directly
// follows the confounder and (b) PKCS#5 padding validity in the last block,
// both bitsliced single-block decrypts (P_i = D(C_i) ^ C_{i-1}) and both
// strict subsets of UnsealTlv's checks. Combined false-positive rate is
// ~2^-13, so a survivor costs one scalar UnsealTlv — the full predicate.
std::optional<size_t> TryChunk5(kerb::BytesView sealed, const std::string& salt,
                                const std::vector<std::string>& dictionary, size_t start,
                                size_t len, const krb5::EncLayerConfig& enc) {
  kcrypto::DesBlock keys[kcrypto::kDesSliceLanes];
  kcrypto::DesSliceKeys ks;
  kcrypto::StringToKeyBatchSchedule(&dictionary[start], len, salt, keys, ks);

  const size_t nblocks = sealed.size() / 8;
  const size_t type_offset = enc.use_confounder ? 8 : 0;
  const size_t type_block = type_offset / 8;
  auto confirm = [&](size_t i) {
    kcrypto::DesKey guess(keys[i]);
    return krb5::UnsealTlv(guess, krb5::kMsgEncAsRepPart, sealed, enc).ok();
  };
  if (sealed.empty() || sealed.size() % 8 != 0 || nblocks <= type_block) {
    // Degenerate framing: no bitsliced filter applies; run the scalar
    // predicate per lane (UnsealTlv rejects these cheaply anyway).
    for (size_t i = 0; i < len; ++i) {
      if (confirm(i)) {
        return start + i;
      }
    }
    return std::nullopt;
  }

  const uint8_t* data = sealed.data();
  auto plain_block = [&](size_t block, uint64_t out[kcrypto::kDesSliceLanes]) {
    kcrypto::DesSliceState st;
    kcrypto::DesSliceBroadcast(kcrypto::LoadU64BE(data + 8 * block), st);
    kcrypto::DesSliceDecrypt(ks, st);
    kcrypto::DesSliceStore(st, out, len);
    const uint64_t prev = block == 0 ? 0 : kcrypto::LoadU64BE(data + 8 * (block - 1));
    for (size_t i = 0; i < len; ++i) {
      out[i] ^= prev;
    }
  };

  uint64_t ptype[kcrypto::kDesSliceLanes];
  plain_block(type_block, ptype);
  uint64_t plast[kcrypto::kDesSliceLanes];
  const size_t last_block = nblocks - 1;
  if (last_block == type_block) {
    std::copy(ptype, ptype + len, plast);
  } else {
    plain_block(last_block, plast);
  }

  const auto expected_type = static_cast<uint8_t>(enc.checksum);
  for (size_t i = 0; i < len; ++i) {
    if (static_cast<uint8_t>(ptype[i] >> 56) != expected_type) {
      continue;
    }
    const unsigned pad = plast[i] & 0xff;
    if (pad < 1 || pad > 8) {
      continue;
    }
    bool pad_ok = true;
    for (unsigned b = 1; b < pad; ++b) {
      pad_ok = pad_ok && ((plast[i] >> (8 * b)) & 0xff) == pad;
    }
    if (!pad_ok) {
      continue;
    }
    if (confirm(i)) {
      return start + i;
    }
  }
  return std::nullopt;
}

}  // namespace

unsigned CrackWorkerThreads() {
  // Values above this add no throughput on any realistic dictionary and can
  // abort the process with std::system_error at thread creation.
  constexpr long kMaxThreads = 256;
  if (const char* env = std::getenv("KERB_CRACK_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<unsigned>(std::min(v, kMaxThreads));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

const std::vector<std::string>& CommonPasswordDictionary() {
  static const std::vector<std::string> dictionary = [] {
    std::vector<std::string> base = {
        "password", "123456",   "12345678", "qwerty",   "letmein",  "monkey",   "dragon",
        "baseball", "football", "master",   "shadow",   "superman", "batman",   "trustno1",
        "abc123",   "welcome",  "login",    "admin",    "root",     "guest",    "hello",
        "secret",   "god",      "sex",      "money",    "love",     "freedom",  "whatever",
        "princess", "sunshine", "iloveyou", "starwars", "computer", "michelle", "jessica",
        "pepper",   "daniel",   "access",   "mustang",  "jordan",   "hunter",   "tigger",
        "joshua",   "pass",     "test",     "killer",   "george",   "andrew",   "charlie",
        "thomas",   "ranger",   "buster",   "hockey",   "soccer",   "harley",   "batman1",
        "wizard",   "maggie",   "summer",   "ashley",   "nicole",   "chelsea",  "biteme",
        "matthew",  "robert",   "danielle", "ferrari",  "cookie",   "athena",   "kerberos",
    };
    // Simple mutations: trailing digit, capitalized first letter.
    std::vector<std::string> out = base;
    for (const auto& word : base) {
      out.push_back(word + "1");
      std::string cap = word;
      cap[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(cap[0])));
      out.push_back(cap);
    }
    return out;
  }();
  return dictionary;
}

std::string RandomStrongPassword(kcrypto::Prng& prng) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$%^&*";
  std::string out;
  size_t len = 12 + prng.NextBelow(6);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[prng.NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::vector<std::pair<std::string, bool>> MakePopulation(kcrypto::Prng& prng,
                                                         const PopulationConfig& config) {
  const auto& dictionary = CommonPasswordDictionary();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(static_cast<size_t>(config.size));
  for (int i = 0; i < config.size; ++i) {
    bool weak = prng.NextBelow(1000) < static_cast<uint64_t>(config.weak_fraction * 1000);
    if (weak) {
      out.emplace_back(dictionary[prng.NextBelow(dictionary.size())], true);
    } else {
      out.emplace_back(RandomStrongPassword(prng), false);
    }
  }
  return out;
}

std::optional<std::string> CrackSealedReply(kerb::BytesView sealed_reply_body,
                                            const krb4::Principal& victim,
                                            const std::vector<std::string>& dictionary,
                                            uint64_t* attempts_out) {
  const std::string salt = victim.Salt();
  std::optional<size_t> hit;
  if (kobs::Enabled()) {
    // Tracing observes each Unseal4 attempt; keep the one-candidate-at-a-time
    // path so the event stream (and golden traces) stay bit-exact.
    hit = FirstMatch(dictionary.size(), CrackWorkerThreads(), [&](size_t i) {
      kcrypto::DesKey guess = kcrypto::StringToKey(dictionary[i], salt);
      auto plain = krb4::Unseal4(guess, sealed_reply_body);
      return plain.ok() && krb4::AsReplyBody4::Decode(plain.value()).ok();
    });
  } else {
    hit = FirstMatchChunked(dictionary.size(), CrackWorkerThreads(),
                            [&](size_t start, size_t len) {
                              return TryChunk4(sealed_reply_body, salt, dictionary, start, len);
                            });
  }
  if (attempts_out != nullptr) {
    // Reported as the sequential early-exit cost — trials up to and
    // including the hit — so the figure is thread-count independent.
    *attempts_out = hit.has_value() ? static_cast<uint64_t>(*hit) + 1 : dictionary.size();
  }
  if (hit.has_value()) {
    return dictionary[*hit];
  }
  return std::nullopt;
}

std::optional<std::string> CrackSealedReply5(kerb::BytesView sealed_enc_part,
                                             const krb4::Principal& victim,
                                             const std::vector<std::string>& dictionary,
                                             uint64_t* attempts_out) {
  const krb5::EncLayerConfig enc;  // Draft 3 defaults, as on the wire
  const std::string salt = victim.Salt();
  std::optional<size_t> hit;
  if (kobs::Enabled()) {
    hit = FirstMatch(dictionary.size(), CrackWorkerThreads(), [&](size_t i) {
      kcrypto::DesKey guess = kcrypto::StringToKey(dictionary[i], salt);
      return krb5::UnsealTlv(guess, krb5::kMsgEncAsRepPart, sealed_enc_part, enc).ok();
    });
  } else {
    hit = FirstMatchChunked(dictionary.size(), CrackWorkerThreads(),
                            [&](size_t start, size_t len) {
                              return TryChunk5(sealed_enc_part, salt, dictionary, start, len, enc);
                            });
  }
  if (attempts_out != nullptr) {
    *attempts_out = hit.has_value() ? static_cast<uint64_t>(*hit) + 1 : dictionary.size();
  }
  if (hit.has_value()) {
    return dictionary[*hit];
  }
  return std::nullopt;
}

}  // namespace kattack
