#include "src/attacks/passwords.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "src/crypto/str2key.h"
#include "src/krb4/messages.h"
#include "src/krb5/enclayer.h"
#include "src/krb5/messages.h"

namespace kattack {

namespace {

// Below this many candidates the thread-spawn overhead beats the win.
constexpr size_t kMinParallelCandidates = 64;

// Runs try_one(i) for i in [0, n) and returns the smallest matching index.
// With multiple workers, indices are claimed from a shared counter in order;
// once some worker records a hit at index h, every index ≥ h still
// unclaimed is abandoned (a worker's future claims are strictly increasing,
// so it can stop the moment its claim passes the best hit). Every index
// below the final best hit is fully tried, which makes the result — the
// minimal matching index — independent of the thread count.
template <typename TryFn>
std::optional<size_t> FirstMatch(size_t n, unsigned threads, const TryFn& try_one) {
  if (threads <= 1 || n < kMinParallelCandidates) {
    for (size_t i = 0; i < n; ++i) {
      if (try_one(i)) {
        return i;
      }
    }
    return std::nullopt;
  }

  std::atomic<size_t> next{0};
  std::atomic<size_t> best{n};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || i >= best.load(std::memory_order_relaxed)) {
        break;
      }
      if (try_one(i)) {
        size_t cur = best.load(std::memory_order_relaxed);
        while (i < cur && !best.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker number `threads`
  for (auto& th : pool) {
    th.join();
  }
  size_t hit = best.load(std::memory_order_relaxed);
  if (hit < n) {
    return hit;
  }
  return std::nullopt;
}

}  // namespace

unsigned CrackWorkerThreads() {
  // Values above this add no throughput on any realistic dictionary and can
  // abort the process with std::system_error at thread creation.
  constexpr long kMaxThreads = 256;
  if (const char* env = std::getenv("KERB_CRACK_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<unsigned>(std::min(v, kMaxThreads));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

const std::vector<std::string>& CommonPasswordDictionary() {
  static const std::vector<std::string> dictionary = [] {
    std::vector<std::string> base = {
        "password", "123456",   "12345678", "qwerty",   "letmein",  "monkey",   "dragon",
        "baseball", "football", "master",   "shadow",   "superman", "batman",   "trustno1",
        "abc123",   "welcome",  "login",    "admin",    "root",     "guest",    "hello",
        "secret",   "god",      "sex",      "money",    "love",     "freedom",  "whatever",
        "princess", "sunshine", "iloveyou", "starwars", "computer", "michelle", "jessica",
        "pepper",   "daniel",   "access",   "mustang",  "jordan",   "hunter",   "tigger",
        "joshua",   "pass",     "test",     "killer",   "george",   "andrew",   "charlie",
        "thomas",   "ranger",   "buster",   "hockey",   "soccer",   "harley",   "batman1",
        "wizard",   "maggie",   "summer",   "ashley",   "nicole",   "chelsea",  "biteme",
        "matthew",  "robert",   "danielle", "ferrari",  "cookie",   "athena",   "kerberos",
    };
    // Simple mutations: trailing digit, capitalized first letter.
    std::vector<std::string> out = base;
    for (const auto& word : base) {
      out.push_back(word + "1");
      std::string cap = word;
      cap[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(cap[0])));
      out.push_back(cap);
    }
    return out;
  }();
  return dictionary;
}

std::string RandomStrongPassword(kcrypto::Prng& prng) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$%^&*";
  std::string out;
  size_t len = 12 + prng.NextBelow(6);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[prng.NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::vector<std::pair<std::string, bool>> MakePopulation(kcrypto::Prng& prng,
                                                         const PopulationConfig& config) {
  const auto& dictionary = CommonPasswordDictionary();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(static_cast<size_t>(config.size));
  for (int i = 0; i < config.size; ++i) {
    bool weak = prng.NextBelow(1000) < static_cast<uint64_t>(config.weak_fraction * 1000);
    if (weak) {
      out.emplace_back(dictionary[prng.NextBelow(dictionary.size())], true);
    } else {
      out.emplace_back(RandomStrongPassword(prng), false);
    }
  }
  return out;
}

std::optional<std::string> CrackSealedReply(kerb::BytesView sealed_reply_body,
                                            const krb4::Principal& victim,
                                            const std::vector<std::string>& dictionary,
                                            uint64_t* attempts_out) {
  const std::string salt = victim.Salt();
  auto hit = FirstMatch(dictionary.size(), CrackWorkerThreads(), [&](size_t i) {
    kcrypto::DesKey guess = kcrypto::StringToKey(dictionary[i], salt);
    auto plain = krb4::Unseal4(guess, sealed_reply_body);
    return plain.ok() && krb4::AsReplyBody4::Decode(plain.value()).ok();
  });
  if (attempts_out != nullptr) {
    // Reported as the sequential early-exit cost — trials up to and
    // including the hit — so the figure is thread-count independent.
    *attempts_out = hit.has_value() ? static_cast<uint64_t>(*hit) + 1 : dictionary.size();
  }
  if (hit.has_value()) {
    return dictionary[*hit];
  }
  return std::nullopt;
}

std::optional<std::string> CrackSealedReply5(kerb::BytesView sealed_enc_part,
                                             const krb4::Principal& victim,
                                             const std::vector<std::string>& dictionary,
                                             uint64_t* attempts_out) {
  const krb5::EncLayerConfig enc;  // Draft 3 defaults, as on the wire
  const std::string salt = victim.Salt();
  auto hit = FirstMatch(dictionary.size(), CrackWorkerThreads(), [&](size_t i) {
    kcrypto::DesKey guess = kcrypto::StringToKey(dictionary[i], salt);
    return krb5::UnsealTlv(guess, krb5::kMsgEncAsRepPart, sealed_enc_part, enc).ok();
  });
  if (attempts_out != nullptr) {
    *attempts_out = hit.has_value() ? static_cast<uint64_t>(*hit) + 1 : dictionary.size();
  }
  if (hit.has_value()) {
    return dictionary[*hit];
  }
  return std::nullopt;
}

}  // namespace kattack
