// Experiment E6 — login spoofing vs. the handheld-authenticator scheme.
//
// "It is quite simple for an intruder to replace the login command with a
// version that records users' passwords ... Kerberos makes no provision for
// such a challenge/response dialog at login time" — recommendation (c)
// fixes that with {R}K_c. The comparison:
//   * password login: the trojan's capture works forever;
//   * handheld login: the trojan captures one single-use response; a later
//     login attempt against a fresh challenge decrypts nothing.

#ifndef SRC_ATTACKS_LOGINSPOOF_H_
#define SRC_ATTACKS_LOGINSPOOF_H_

#include <cstdint>
#include <string>

namespace kattack {

struct LoginSpoofReport {
  bool victim_login_ok = false;        // the trojaned login still "works"
  std::string captured_input;          // what the trojan recorded
  bool later_reuse_succeeded = false;  // attacker logs in with the capture
};

// Password world: the trojan records the typed password, the attacker logs
// in with it a day later.
LoginSpoofReport RunLoginSpoofAgainstPassword(uint64_t seed = 11);

// Handheld world: the trojan records the typed device response.
LoginSpoofReport RunLoginSpoofAgainstHandheld(uint64_t seed = 11);

}  // namespace kattack

#endif  // SRC_ATTACKS_LOGINSPOOF_H_
