#include "src/attacks/replay.h"

#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"

namespace kattack {

ReplayReport RunMailCheckReplayV4(const ReplayScenario& scenario) {
  TestbedConfig config;
  config.seed = scenario.seed;
  config.server_replay_cache = scenario.server_replay_cache;
  config.clock_skew_limit = scenario.clock_skew_limit;
  Testbed4 bed(config);
  ReplayReport report;

  // Eve wiretaps everything.
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);

  // Alice's brief mail-check session.
  if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
    return report;
  }
  auto mail = bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false);
  if (!mail.ok()) {
    return report;
  }
  bed.alice().Logout();  // keys wiped; the wire capture remains
  bed.world().network().SetAdversary(nullptr);

  // Extract the live AP request from the capture.
  kerb::Bytes stolen_request;
  for (const auto& exchange : recorder.exchanges()) {
    if (exchange.request.dst == Testbed4::kMailAddr) {
      stolen_request = exchange.request.payload;
      report.captured = true;
    }
  }
  if (!report.captured) {
    return report;
  }

  // Replay after the configured delay, spoofing alice's source address —
  // "everything would be in place before the ticket-capture was attempted."
  bed.world().clock().Advance(scenario.replay_delay);
  auto replay =
      bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr, stolen_request);
  report.replay_accepted = replay.ok();
  report.server_accepted = bed.mail_server().accepted_requests();
  if (!bed.mail_log().empty()) {
    report.evidence = bed.mail_log().back();
  }
  return report;
}

ReplayReport RunReplayAgainstChallengeResponse(uint64_t seed) {
  Testbed5Config config;
  config.seed = seed;
  config.server_options.mode = krb5::ApAuthMode::kChallengeResponse;
  Testbed5 bed(config);
  ReplayReport report;

  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  if (!bed.alice().Login(Testbed5::kAlicePassword).ok()) {
    return report;
  }
  auto mail = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
  if (!mail.ok()) {
    return report;
  }
  bed.world().network().SetAdversary(nullptr);
  uint64_t accepted_before = bed.mail_server().accepted_requests();

  // Replay every captured mail-server message in order — including alice's
  // valid answer to the server's old challenge.
  bool any_accepted = false;
  for (const auto& exchange : recorder.exchanges()) {
    if (!(exchange.request.dst == Testbed5::kMailAddr)) {
      continue;
    }
    report.captured = true;
    auto replay = bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kMailAddr,
                                             exchange.request.payload);
    (void)replay;  // a KRB_ERROR carrying a fresh challenge still "succeeds"
                   // at the transport level; what matters is acceptance:
    if (bed.mail_server().accepted_requests() > accepted_before) {
      any_accepted = true;
    }
  }
  report.replay_accepted = any_accepted;
  report.server_accepted = bed.mail_server().accepted_requests();
  if (!bed.mail_log().empty()) {
    report.evidence = bed.mail_log().back();
  }
  return report;
}

}  // namespace kattack
