#include "src/attacks/kdcload.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace kattack {

unsigned KdcWorkerThreads() {
  constexpr long kMaxThreads = 256;
  if (const char* env = std::getenv("KERB_KDC_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<unsigned>(std::min(v, kMaxThreads));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t KdcBatchSize() {
  constexpr long kMaxBatch = 256;
  if (const char* env = std::getenv("KERB_KDC_BATCH")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<size_t>(std::min(v, kMaxBatch));
    }
  }
  return 16;
}

KdcLoadResult RunKdcLoad(const KdcHandler& handler, const ksim::Message& request,
                         unsigned threads, uint64_t requests_per_worker, uint64_t seed) {
  if (threads == 0) {
    threads = 1;
  }
  // Contexts are forked on the calling thread so their PRNG streams are a
  // pure function of (seed, worker index), not of scheduling.
  kcrypto::Prng master(seed);
  std::vector<krb4::KdcContext> contexts;
  contexts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    contexts.emplace_back(master.Fork());
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto worker = [&](unsigned t) {
    uint64_t local_ok = 0;
    uint64_t local_failed = 0;
    for (uint64_t i = 0; i < requests_per_worker; ++i) {
      if (handler(request, contexts[t]).ok()) {
        ++local_ok;
      } else {
        ++local_failed;
      }
    }
    ok.fetch_add(local_ok, std::memory_order_relaxed);
    failed.fetch_add(local_failed, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (auto& th : pool) {
    th.join();
  }
  return KdcLoadResult{ok.load(), failed.load()};
}

KdcLoadResult RunKdcLoadBatched(const KdcBatchHandler& handler, const ksim::Message& request,
                                unsigned threads, uint64_t requests_per_worker, uint64_t seed,
                                size_t batch) {
  if (threads == 0) {
    threads = 1;
  }
  if (batch == 0) {
    batch = KdcBatchSize();
  }
  kcrypto::Prng master(seed);
  std::vector<krb4::KdcContext> contexts;
  contexts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    contexts.emplace_back(master.Fork());
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto worker = [&](unsigned t) {
    // The pending queue is all copies of one request here, so a dispatch is
    // a window into one reusable array; the reply vector is reused across
    // dispatches (cleared, capacity kept).
    std::vector<ksim::Message> pending(std::min<uint64_t>(batch, requests_per_worker), request);
    std::vector<kerb::Result<kerb::Bytes>> replies;
    uint64_t local_ok = 0;
    uint64_t local_failed = 0;
    for (uint64_t done = 0; done < requests_per_worker;) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(batch, requests_per_worker - done));
      replies.clear();
      handler(pending.data(), take, contexts[t], replies);
      for (const auto& reply : replies) {
        if (reply.ok()) {
          ++local_ok;
        } else {
          ++local_failed;
        }
      }
      done += take;
    }
    ok.fetch_add(local_ok, std::memory_order_relaxed);
    failed.fetch_add(local_failed, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (auto& th : pool) {
    th.join();
  }
  return KdcLoadResult{ok.load(), failed.load()};
}

}  // namespace kattack
