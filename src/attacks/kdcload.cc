#include "src/attacks/kdcload.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/crypto/checksum.h"
#include "src/encoding/io.h"

namespace kattack {

unsigned KdcWorkerThreads() {
  constexpr long kMaxThreads = 256;
  if (const char* env = std::getenv("KERB_KDC_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<unsigned>(std::min(v, kMaxThreads));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t KdcBatchSize() {
  constexpr long kMaxBatch = 256;
  if (const char* env = std::getenv("KERB_KDC_BATCH")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<size_t>(std::min(v, kMaxBatch));
    }
  }
  return 16;
}

KdcLoadResult RunKdcLoad(const KdcHandler& handler, const ksim::Message& request,
                         unsigned threads, uint64_t requests_per_worker, uint64_t seed) {
  if (threads == 0) {
    threads = 1;
  }
  // Contexts are forked on the calling thread so their PRNG streams are a
  // pure function of (seed, worker index), not of scheduling.
  kcrypto::Prng master(seed);
  std::vector<krb4::KdcContext> contexts;
  contexts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    contexts.emplace_back(master.Fork());
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto worker = [&](unsigned t) {
    uint64_t local_ok = 0;
    uint64_t local_failed = 0;
    for (uint64_t i = 0; i < requests_per_worker; ++i) {
      if (handler(request, contexts[t]).ok()) {
        ++local_ok;
      } else {
        ++local_failed;
      }
    }
    ok.fetch_add(local_ok, std::memory_order_relaxed);
    failed.fetch_add(local_failed, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (auto& th : pool) {
    th.join();
  }
  return KdcLoadResult{ok.load(), failed.load()};
}

KdcLoadResult RunKdcLoadBatched(const KdcBatchHandler& handler, const ksim::Message& request,
                                unsigned threads, uint64_t requests_per_worker, uint64_t seed,
                                size_t batch) {
  if (threads == 0) {
    threads = 1;
  }
  if (batch == 0) {
    batch = KdcBatchSize();
  }
  kcrypto::Prng master(seed);
  std::vector<krb4::KdcContext> contexts;
  contexts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    contexts.emplace_back(master.Fork());
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto worker = [&](unsigned t) {
    // The pending queue is all copies of one request here, so a dispatch is
    // a window into one reusable array; the reply vector is reused across
    // dispatches (cleared, capacity kept).
    std::vector<ksim::Message> pending(std::min<uint64_t>(batch, requests_per_worker), request);
    std::vector<kerb::Result<kerb::Bytes>> replies;
    uint64_t local_ok = 0;
    uint64_t local_failed = 0;
    for (uint64_t done = 0; done < requests_per_worker;) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(batch, requests_per_worker - done));
      replies.clear();
      handler(pending.data(), take, contexts[t], replies);
      for (const auto& reply : replies) {
        if (reply.ok()) {
          ++local_ok;
        } else {
          ++local_failed;
        }
      }
      done += take;
    }
    ok.fetch_add(local_ok, std::memory_order_relaxed);
    failed.fetch_add(local_failed, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (auto& th : pool) {
    th.join();
  }
  return KdcLoadResult{ok.load(), failed.load()};
}

kerb::Result<krb4::AsReplyBody4> DoPkLogin4(const KdcHandler& handler,
                                            const krb4::Principal& user,
                                            const kcrypto::DesKey& user_key,
                                            const kcrypto::DhGroup& group, ksim::Time now,
                                            krb4::KdcContext& kdc_ctx,
                                            kcrypto::Prng& client_prng,
                                            const ksim::NetAddress& src) {
  kcrypto::DhKeyPair client_pair = kcrypto::DhGenerate(group, client_prng);

  krb4::AsPkRequest4 req;
  req.client = user;
  req.service_realm = user.realm;
  req.lifetime = 8 * ksim::kHour;
  req.client_pub = client_pair.public_key.ToBytes();
  // Proof of possession: {timestamp, md4(g^a)}K_c. The KDC refuses PK
  // requests without it — see AsPkRequest4 in src/krb4/messages.h.
  kenc::Writer pa;
  pa.PutU64(static_cast<uint64_t>(now));
  pa.PutLengthPrefixed(
      kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4, req.client_pub));
  req.sealed_padata = krb4::Seal4(user_key, pa.Take());

  ksim::Message msg;
  msg.src = src;
  msg.payload = krb4::Frame4(krb4::MsgType::kAsPkRequest, req.Encode());
  auto reply = handler(msg, kdc_ctx);
  if (!reply.ok()) {
    return reply.error();
  }

  auto framed = krb4::Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != krb4::MsgType::kAsPkReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected PK AS reply");
  }
  auto rep = krb4::AsPkReply4::Decode(framed.value().second);
  if (!rep.ok()) {
    return rep.error();
  }
  kcrypto::BigInt server_pub = kcrypto::BigInt::FromBytes(rep.value().server_pub);
  if (auto valid = kcrypto::ValidateDhPublic(group, server_pub); !valid.ok()) {
    return valid.error();
  }
  kcrypto::DesKey dh_key = kcrypto::DhDeriveKey(
      kcrypto::DhSharedSecret(group, client_pair.private_key, server_pub));
  auto inner = krb4::Unseal4(dh_key, rep.value().sealed_reply);
  if (!inner.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "DH layer decryption failed");
  }
  auto plain = krb4::Unseal4(user_key, inner.value());
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "password layer decryption failed");
  }
  return krb4::AsReplyBody4::Decode(plain.value());
}

PkLoginLoadResult RunPkLoginLoad(const KdcHandler& handler, const krb4::Principal& user,
                                 const kcrypto::DesKey& user_key, const kcrypto::DhGroup& group,
                                 ksim::Time now, unsigned threads, uint64_t logins_per_worker,
                                 uint64_t seed) {
  if (threads == 0) {
    threads = 1;
  }
  // Server contexts and client PRNGs forked on the calling thread, as in
  // RunKdcLoad: every stream is a pure function of (seed, worker index).
  kcrypto::Prng master(seed);
  std::vector<krb4::KdcContext> contexts;
  std::vector<kcrypto::Prng> client_prngs;
  contexts.reserve(threads);
  client_prngs.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    contexts.emplace_back(master.Fork());
    client_prngs.push_back(master.Fork());
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto worker = [&](unsigned t) {
    // Distinct claimed sources per worker keep any reply cache honest.
    const ksim::NetAddress src{0x0a000000u + t, static_cast<uint16_t>(40000 + t)};
    uint64_t local_ok = 0;
    uint64_t local_failed = 0;
    for (uint64_t i = 0; i < logins_per_worker; ++i) {
      if (DoPkLogin4(handler, user, user_key, group, now, contexts[t], client_prngs[t], src)
              .ok()) {
        ++local_ok;
      } else {
        ++local_failed;
      }
    }
    ok.fetch_add(local_ok, std::memory_order_relaxed);
    failed.fetch_add(local_failed, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (auto& th : pool) {
    th.join();
  }
  return PkLoginLoadResult{ok.load(), failed.load()};
}

}  // namespace kattack
