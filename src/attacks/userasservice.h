// Experiment E15 — clients treated as services: yet another
// password-guessing avenue.
//
// "We originally overlooked an alternative avenue for mounting a
// password-guessing attack. Clients may be treated as services, and
// tickets to the client, encrypted by K_c, may be obtained by any user.
// ... We would prefer to provide the same functionality by having clients
// register separate instances as services, with truly random keys. Keys
// could be supplied to the client by the keystore."

#ifndef SRC_ATTACKS_USERASSERVICE_H_
#define SRC_ATTACKS_USERASSERVICE_H_

#include <string>

namespace kattack {

struct UserAsServiceReport {
  bool ticket_issued = false;        // the TGS handed out a K_c-sealed ticket
  bool password_recovered = false;   // ...and the dictionary opened it
  std::string recovered_password;
  // The paper's alternative: a separate instance with a truly random key.
  bool instance_ticket_issued = false;
  bool instance_password_recovered = false;  // must stay false
};

struct UserAsServiceScenario {
  bool forbid_user_principal_tickets = false;  // the policy fix
  uint64_t seed = 2121;
};

UserAsServiceReport RunUserAsServiceHarvest(const UserAsServiceScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_USERASSERVICE_H_
