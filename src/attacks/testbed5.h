// Version 5 experiment testbeds: a single-realm deployment mirroring
// Testbed4, and a three-realm hierarchy for the inter-realm experiments.

#ifndef SRC_ATTACKS_TESTBED5_H_
#define SRC_ATTACKS_TESTBED5_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/krb5/appserver.h"
#include "src/krb5/client.h"
#include "src/krb5/kdc.h"
#include "src/krb5/replica.h"
#include "src/sim/world.h"

namespace kattack {

struct Testbed5Config {
  uint64_t seed = 4321;
  krb5::KdcPolicy5 kdc_policy;  // reply_cache_window lives here
  krb5::AppServer5Options server_options;
  krb5::Client5Options client_options;
  // Robustness knobs, mirroring TestbedConfig: seeded fault injection,
  // slave KDCs, client retry/failover. Defaults keep the lossless testbed.
  std::optional<ksim::FaultPlan> faults;
  int kdc_slaves = 0;
  std::optional<ksim::RetryPolicy> client_retry;
};

class Testbed5 {
 public:
  explicit Testbed5(Testbed5Config config = {});

  static constexpr ksim::NetAddress kAsAddr{0x0a000058, 88};
  static constexpr ksim::NetAddress kTgsAddr{0x0a000058, 750};
  static constexpr ksim::NetAddress kMailAddr{0x0a000010, 220};
  static constexpr ksim::NetAddress kFileAddr{0x0a000011, 2049};
  static constexpr ksim::NetAddress kBackupAddr{0x0a000012, 911};
  static constexpr ksim::NetAddress kAliceAddr{0x0a000101, 1023};
  static constexpr ksim::NetAddress kBobAddr{0x0a000102, 1023};
  static constexpr ksim::NetAddress kEveAddr{0x0a000666, 31337};

  const std::string realm = "ATHENA.SIM";
  static constexpr const char* kAlicePassword = "quantum-Leap_77";
  static constexpr const char* kBobPassword = "password";
  static constexpr const char* kEvePassword = "evil-but-registered";

  ksim::World& world() { return *world_; }
  krb5::Kdc5& kdc() { return kdcs_->primary(); }
  krb5::KdcReplicaSet5& kdc_replicas() { return *kdcs_; }
  krb5::Client5& alice() { return *alice_; }
  krb5::Client5& bob() { return *bob_; }
  // Eve holds a legitimate account — the paper's adversary "may be in
  // league with some subset of servers [and] clients".
  krb5::Client5& eve() { return *eve_; }
  krb5::AppServer5& mail_server() { return *mail_server_; }
  krb5::AppServer5& file_server() { return *file_server_; }
  krb5::AppServer5& backup_server() { return *backup_server_; }

  krb5::Principal mail_principal() const;
  krb5::Principal file_principal() const;
  krb5::Principal backup_principal() const;
  krb5::Principal alice_principal() const;
  krb5::Principal bob_principal() const;
  krb5::Principal eve_principal() const;

  const kcrypto::DesKey& mail_key() const { return mail_key_; }
  const kcrypto::DesKey& file_key() const { return file_key_; }
  const kcrypto::DesKey& backup_key() const { return backup_key_; }

  const std::vector<std::string>& mail_log() const { return mail_log_; }
  const std::vector<std::string>& file_log() const { return file_log_; }
  const std::vector<std::string>& backup_log() const { return backup_log_; }

  std::unique_ptr<krb5::Client5> MakeClient(const krb5::Principal& user,
                                            const ksim::NetAddress& addr,
                                            const krb5::Client5Options& options);

 private:
  Testbed5Config config_;
  std::unique_ptr<ksim::World> world_;
  std::unique_ptr<krb5::KdcReplicaSet5> kdcs_;
  kcrypto::DesKey mail_key_;
  kcrypto::DesKey file_key_;
  kcrypto::DesKey backup_key_;
  std::unique_ptr<krb5::AppServer5> mail_server_;
  std::unique_ptr<krb5::AppServer5> file_server_;
  std::unique_ptr<krb5::AppServer5> backup_server_;
  std::unique_ptr<krb5::Client5> alice_;
  std::unique_ptr<krb5::Client5> bob_;
  std::unique_ptr<krb5::Client5> eve_;
  std::vector<std::string> mail_log_;
  std::vector<std::string> file_log_;
  std::vector<std::string> backup_log_;
};

// ---------------------------------------------------------------------------
// Three realms in a hierarchy:  ENG.CORP ← CORP → SALES.CORP, with
// inter-realm keys along the edges; alice lives in ENG.CORP, the payroll
// service in SALES.CORP. Reaching payroll transits CORP — the topology of
// the paper's cascading-trust discussion.
class RealmTree5 {
 public:
  explicit RealmTree5(uint64_t seed = 99, krb5::KdcPolicy5 policy = {});

  static constexpr ksim::NetAddress kEngAs{0x0a010058, 88};
  static constexpr ksim::NetAddress kEngTgs{0x0a010058, 750};
  static constexpr ksim::NetAddress kCorpAs{0x0a020058, 88};
  static constexpr ksim::NetAddress kCorpTgs{0x0a020058, 750};
  static constexpr ksim::NetAddress kSalesAs{0x0a030058, 88};
  static constexpr ksim::NetAddress kSalesTgs{0x0a030058, 750};
  static constexpr ksim::NetAddress kPayrollAddr{0x0a030010, 7000};
  static constexpr ksim::NetAddress kAliceAddr{0x0a010101, 1023};

  static constexpr const char* kAlicePassword = "engineering-rules-1";

  ksim::World& world() { return *world_; }
  krb5::Kdc5& eng() { return *eng_; }
  krb5::Kdc5& corp() { return *corp_; }
  krb5::Kdc5& sales() { return *sales_; }
  krb5::Client5& alice() { return *alice_; }
  krb5::AppServer5& payroll_server() { return *payroll_server_; }

  krb5::Principal alice_principal() const;
  krb5::Principal payroll_principal() const;

  // The CORP↔SALES inter-realm key — what a compromised CORP holds. Exposed
  // so experiment E13 can model the compromise.
  const kcrypto::DesKey& corp_sales_key() const { return corp_sales_key_; }
  const krb5::KdcPolicy5& policy() const { return policy_; }

  const std::vector<std::string>& payroll_log() const { return payroll_log_; }

 private:
  krb5::KdcPolicy5 policy_;
  std::unique_ptr<ksim::World> world_;
  std::unique_ptr<krb5::Kdc5> eng_;
  std::unique_ptr<krb5::Kdc5> corp_;
  std::unique_ptr<krb5::Kdc5> sales_;
  kcrypto::DesKey corp_sales_key_;
  kcrypto::DesKey payroll_key_;
  std::unique_ptr<krb5::AppServer5> payroll_server_;
  std::unique_ptr<krb5::Client5> alice_;
  std::vector<std::string> payroll_log_;
};

}  // namespace kattack

#endif  // SRC_ATTACKS_TESTBED5_H_
