// Experiment E12 — the futility of binding tickets to network addresses.
//
// "Given our assumption that the network is under full control of the
// attacker, no extra security is gained by relying on the network address.
// ... an attacker can always wait until the connection is set up and
// authenticated, and then take it over."

#ifndef SRC_ATTACKS_ADDRESS_H_
#define SRC_ATTACKS_ADDRESS_H_

#include <string>

namespace kattack {

struct AddressBindingReport {
  bool naive_reuse_rejected = false;   // stolen creds from eve's own address
  bool spoofed_reuse_accepted = false;  // same creds, forged source address
  bool hijack_accepted = false;         // post-auth session command injected
  std::string hijack_evidence;
};

// Steals alice's credential cache (host compromise), tries them from eve's
// host with and without source spoofing, then hijacks an authenticated
// session whose subsequent commands are protected only by source address.
AddressBindingReport RunAddressBindingStudy(uint64_t seed = 12);

}  // namespace kattack

#endif  // SRC_ATTACKS_ADDRESS_H_
