#include "src/attacks/reuseskey.h"

#include "src/attacks/testbed5.h"

namespace kattack {

ReuseSkeyReport RunReuseSkeyRedirection(const ReuseSkeyScenario& scenario) {
  Testbed5Config config;
  config.seed = scenario.seed;
  config.client_options.send_service_name_check = scenario.service_name_binding;
  config.server_options.verify_service_name_check = scenario.service_name_binding;
  Testbed5 bed(config);
  ReuseSkeyReport report;

  if (!bed.alice().Login(Testbed5::kAlicePassword).ok()) {
    return report;
  }

  // Alice legitimately uses REUSE-SKEY (its multicast purpose): her backup
  // ticket reuses the session key of her file-server ticket.
  auto file_creds = bed.alice().GetServiceTicket(bed.file_principal());
  if (!file_creds.ok()) {
    return report;
  }
  krb5::TgsRequest5 req;
  req.service = bed.backup_principal();
  req.lifetime = ksim::kHour;
  req.options = krb5::kOptReuseSkey;
  req.additional_ticket = file_creds.value().sealed_ticket;
  req.additional_ticket_service = bed.file_principal();
  auto reply = bed.alice().RawTgsRequest(bed.realm, req);
  if (!reply.ok()) {
    return report;
  }
  // Eve can read the backup ticket blob off the wire; here we take it from
  // the reply (it is not encrypted under any client key).
  kerb::Bytes backup_ticket = reply.value().sealed_ticket;

  // Confirm the shared key (from the servers' vantage, via the DB keys).
  krb5::EncLayerConfig enc;
  auto t_backup = krb5::Ticket5::Unseal(bed.backup_key(), backup_ticket, enc);
  if (t_backup.ok() &&
      t_backup.value().session_key == kcrypto::DesKey(file_creds.value().session_key).bytes()) {
    report.shared_key_issued = true;
  }

  // Eve wiretaps alice's next file-server request...
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  (void)bed.alice().CallService(Testbed5::kFileAddr, bed.file_principal(), false,
                                kerb::ToBytes("save /archive/thesis.tex"));
  bed.world().network().SetAdversary(nullptr);

  kerb::Bytes file_request;
  for (const auto& exchange : recorder.exchanges()) {
    if (exchange.request.dst == Testbed5::kFileAddr) {
      file_request = exchange.request.payload;
    }
  }
  if (file_request.empty()) {
    return report;
  }

  // ...and splices: backup ticket + the LIVE authenticator from the file
  // request + a destructive command, delivered to the backup server.
  auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgApReq, file_request);
  if (!tlv.ok()) {
    return report;
  }
  auto original = krb5::ApRequest5::FromTlv(tlv.value());
  if (!original.ok()) {
    return report;
  }
  krb5::ApRequest5 spliced;
  spliced.sealed_ticket = backup_ticket;
  spliced.sealed_authenticator = original.value().sealed_authenticator;
  spliced.app_data = kerb::ToBytes("DELETE /archive/thesis.tex");

  auto verdict = bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kBackupAddr,
                                            spliced.ToTlv().Encode());
  report.splice_accepted = verdict.ok();
  if (!bed.backup_log().empty()) {
    report.backup_action = bed.backup_log().back();
  }
  return report;
}

}  // namespace kattack
