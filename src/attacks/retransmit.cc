#include "src/attacks/retransmit.h"

#include "src/attacks/testbed.h"

namespace kattack {

namespace {

// Loses the first reply from the mail server, then behaves.
class ReplyDropper : public ksim::Adversary {
 public:
  bool OnReply(const ksim::Message& request, kerb::Bytes&) override {
    if (request.dst == Testbed4::kMailAddr && !dropped_) {
      dropped_ = true;
      return true;
    }
    return false;
  }
  bool dropped() const { return dropped_; }

 private:
  bool dropped_ = false;
};

}  // namespace

RetransmitReport RunRetransmissionStudy(bool fresh_authenticator_per_retry, uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.server_replay_cache = true;  // the E1 fix, now under test itself
  Testbed4 bed(config);
  RetransmitReport report;

  if (!bed.alice().Login(Testbed4::kAlicePassword).ok()) {
    return report;
  }
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  if (!creds.ok()) {
    return report;
  }

  auto build_request = [&]() {
    krb4::Authenticator4 auth;
    auth.client = bed.alice_principal();
    auth.client_addr = Testbed4::kAliceAddr.host;
    auth.timestamp = bed.world().clock().Now();
    krb4::ApRequest4 req;
    req.sealed_ticket = creds.value().sealed_ticket;
    req.sealed_auth = auth.Seal(creds.value().session_key);
    return krb4::Frame4(krb4::MsgType::kApRequest, req.Encode());
  };

  ReplyDropper dropper;
  bed.world().network().SetAdversary(&dropper);

  // First attempt: the server processes the request; the reply is lost.
  kerb::Bytes first_request = build_request();
  auto first =
      bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr, first_request);
  report.first_attempt_lost = !first.ok() && dropper.dropped();
  report.server_acted_once = bed.mail_server().accepted_requests() == 1;

  // The client retransmits (UDP semantics: application-level retry). A tick
  // of clock passes, as it would.
  bed.world().clock().Advance(ksim::kSecond);
  kerb::Bytes retry = fresh_authenticator_per_retry ? build_request() : first_request;
  auto second = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr, retry);
  report.retransmission_accepted = second.ok();
  report.false_alarms = bed.mail_server().rejected_requests();
  return report;
}

}  // namespace kattack
