// Experiment E3 — defeating authenticator freshness by attacking time
// synchronization.
//
// "If a host can be misled about the correct time, a stale authenticator
// can be replayed without any trouble at all. Since some time
// synchronization protocols are unauthenticated, and hosts are still using
// these protocols ... such attacks are not difficult."

#ifndef SRC_ATTACKS_TIMESPOOF_H_
#define SRC_ATTACKS_TIMESPOOF_H_

#include <string>

#include "src/sim/clock.h"

namespace kattack {

struct TimeSpoofReport {
  bool stale_replay_rejected_first = false;  // sanity: before the spoof
  bool time_sync_succeeded = false;          // the server accepted a time
  bool server_clock_corrupted = false;       // ...and it was the lie
  bool stale_replay_accepted_after = false;  // the attack's payoff
  std::string evidence;
};

struct TimeSpoofScenario {
  bool authenticated_time_service = false;  // the fix under test
  ksim::Duration staleness = 2 * ksim::kHour;  // age of the captured authenticator
  uint64_t seed = 42;
};

TimeSpoofReport RunTimeSpoofReplay(const TimeSpoofScenario& scenario);

}  // namespace kattack

#endif  // SRC_ATTACKS_TIMESPOOF_H_
