// Experiment E16 — the authenticator cache vs. legitimate retransmissions.
//
// "UDP-based query servers can store the authenticators more easily ...
// however, they might have problems with legitimate retransmissions of the
// client's request if the answer was lost. ... Legitimate requests could be
// rejected, and a security alarm raised inappropriately. One possible
// solution would be for the application to generate a new authenticator
// when retransmitting a request."
//
// Not an attack but a functionality failure: the replay cache — itself a
// fix for E1 — misfires under packet loss unless clients refresh their
// authenticators.

#ifndef SRC_ATTACKS_RETRANSMIT_H_
#define SRC_ATTACKS_RETRANSMIT_H_

#include <cstdint>

namespace kattack {

struct RetransmitReport {
  bool first_attempt_lost = false;     // the reply was dropped in transit
  bool server_acted_once = false;      // the server DID process the request
  bool retransmission_accepted = false;
  uint64_t false_alarms = 0;           // replay rejections of honest traffic
};

// `fresh_authenticator_per_retry` is the paper's suggested client fix.
RetransmitReport RunRetransmissionStudy(bool fresh_authenticator_per_retry,
                                        uint64_t seed = 777);

}  // namespace kattack

#endif  // SRC_ATTACKS_RETRANSMIT_H_
