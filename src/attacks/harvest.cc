#include "src/attacks/harvest.h"

#include <algorithm>

#include "src/attacks/passwords.h"
#include "src/attacks/testbed.h"
#include "src/crypto/dlog.h"
#include "src/crypto/primes.h"
#include "src/encoding/io.h"
#include "src/hardened/dh_login.h"
#include "src/krb5/kdc.h"

namespace kattack {

namespace {

bool IsDictionaryWord(const std::string& password) {
  const auto& dictionary = CommonPasswordDictionary();
  return std::find(dictionary.begin(), dictionary.end(), password) != dictionary.end();
}

}  // namespace

CrackReport RunEavesdropCrackV4(const HarvestScenario& scenario) {
  TestbedConfig config;
  config.seed = scenario.seed;
  config.extra_users = scenario.population;
  config.weak_fraction = scenario.weak_fraction;
  Testbed4 bed(config);
  CrackReport report;

  // The wiretap.
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);

  // The synthetic population logs in over the course of a day.
  ksim::NetAddress workstation{0x0a007000, 1023};
  for (const auto& [principal, password] : bed.users()) {
    if (principal.name == "alice" || principal.name == "bob") {
      continue;
    }
    ++report.population;
    if (IsDictionaryWord(password)) {
      ++report.weak_users;
    }
    ++workstation.host;
    auto client = bed.MakeClient(principal, workstation);
    (void)client->Login(password);
    bed.world().clock().Advance(ksim::kMinute);
  }
  bed.world().network().SetAdversary(nullptr);

  // Offline: for each recorded AS exchange, identify the principal from the
  // plaintext request and run the dictionary against the sealed reply.
  for (const auto& exchange : recorder.exchanges()) {
    if (!(exchange.request.dst == Testbed4::kAsAddr) || !exchange.has_reply) {
      continue;
    }
    auto req_frame = krb4::Unframe4(exchange.request.payload);
    auto rep_frame = krb4::Unframe4(exchange.reply);
    if (!req_frame.ok() || !rep_frame.ok()) {
      continue;
    }
    auto req = krb4::AsRequest4::Decode(req_frame.value().second);
    if (!req.ok()) {
      continue;
    }
    ++report.replies_obtained;
    uint64_t attempts = 0;
    auto password = CrackSealedReply(rep_frame.value().second, req.value().client,
                                     CommonPasswordDictionary(), &attempts);
    report.guess_attempts += attempts;
    if (password.has_value()) {
      ++report.cracked;
    }
  }
  return report;
}

CrackReport RunEavesdropCrackAgainstDhLogin(const DhCrackScenario& scenario) {
  CrackReport report;
  ksim::World world(scenario.base.seed);
  world.clock().Set(1000000 * ksim::kSecond);

  const std::string realm = "ATHENA.SIM";
  kcrypto::Prng pop_prng = world.prng().Fork();
  auto population =
      MakePopulation(pop_prng, PopulationConfig{scenario.base.population,
                                                scenario.base.weak_fraction});

  krb4::KdcDatabase db;
  kcrypto::Prng key_prng = world.prng().Fork();
  db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
  std::vector<std::pair<krb4::Principal, std::string>> users;
  for (int i = 0; i < static_cast<int>(population.size()); ++i) {
    krb4::Principal user = krb4::Principal::User("user" + std::to_string(i), realm);
    db.AddUser(user, population[i].first);
    users.emplace_back(user, population[i].first);
  }

  kcrypto::Prng group_prng(scenario.base.seed ^ 0x5a5a);
  kcrypto::DhGroup group = scenario.toy_group_bits == 0
                               ? kcrypto::OakleyGroup1()
                               : kcrypto::MakeToyGroup(group_prng, scenario.toy_group_bits);

  const ksim::NetAddress login_addr{0x0a000058, 789};
  khard::DhLoginServer server(&world.network(), login_addr, world.MakeHostClock(0), realm,
                              std::move(db), world.prng().Fork(), group);

  ksim::RecordingAdversary recorder;
  world.network().SetAdversary(&recorder);
  ksim::NetAddress workstation{0x0a007000, 1023};
  kcrypto::Prng client_prng = world.prng().Fork();
  for (const auto& [principal, password] : users) {
    ++report.population;
    if (IsDictionaryWord(password)) {
      ++report.weak_users;
    }
    ++workstation.host;
    (void)khard::DhLogin(&world.network(), workstation, login_addr, principal, password,
                         group, client_prng);
    world.clock().Advance(ksim::kMinute);
  }
  world.network().SetAdversary(nullptr);

  // Offline phase. The attacker sees: principal, client_pub (request),
  // server_pub + DH-wrapped blob (reply).
  kcrypto::Prng attacker_prng(scenario.base.seed ^ 0xa77ac);
  for (const auto& exchange : recorder.exchanges()) {
    if (!(exchange.request.dst == login_addr) || !exchange.has_reply) {
      continue;
    }
    kenc::Reader req_reader(exchange.request.payload);
    auto principal = krb4::Principal::DecodeFrom(req_reader);
    auto client_pub_bytes = req_reader.GetLengthPrefixed();
    kenc::Reader rep_reader(exchange.reply);
    auto server_pub_bytes = rep_reader.GetLengthPrefixed();
    auto outer = rep_reader.GetLengthPrefixed();
    if (!principal.ok() || !client_pub_bytes.ok() || !server_pub_bytes.ok() || !outer.ok()) {
      continue;
    }
    ++report.replies_obtained;

    kerb::Bytes inner;
    if (scenario.toy_group_bits == 0) {
      // Large group: no way in; the dictionary runs against the DH-wrapped
      // blob and confirms nothing.
      uint64_t attempts = 0;
      auto cracked = CrackSealedReply(outer.value(), principal.value(),
                                      CommonPasswordDictionary(), &attempts);
      report.guess_attempts += attempts;
      if (cracked.has_value()) {
        ++report.cracked;  // should never happen
      }
      continue;
    }

    // Toy group: solve the discrete log of the client's public value, then
    // derive K_dh exactly as the parties did and strip the layer.
    uint64_t p = group.p.LowU64();
    uint64_t g = group.g.LowU64();
    uint64_t client_pub = kcrypto::BigInt::FromBytes(client_pub_bytes.value()).LowU64();
    auto exponent = kcrypto::DlogBabyStepGiantStep(g, client_pub, p);
    if (!exponent.has_value()) {
      continue;
    }
    uint64_t server_pub = kcrypto::BigInt::FromBytes(server_pub_bytes.value()).LowU64();
    uint64_t shared = kcrypto::PowMod64(server_pub, *exponent, p);
    kcrypto::DesKey dh_key = kcrypto::DhDeriveKey(kcrypto::BigInt(shared));
    auto stripped = krb4::Unseal4(dh_key, outer.value());
    if (!stripped.ok()) {
      continue;
    }
    uint64_t attempts = 0;
    auto cracked = CrackSealedReply(stripped.value(), principal.value(),
                                    CommonPasswordDictionary(), &attempts);
    report.guess_attempts += attempts;
    if (cracked.has_value()) {
      ++report.cracked;
    }
  }
  (void)attacker_prng;
  return report;
}

CrackReport RunActiveHarvest(const ActiveHarvestScenario& scenario) {
  CrackReport report;
  ksim::World world(scenario.base.seed);
  world.clock().Set(1000000 * ksim::kSecond);

  const std::string realm = "ATHENA.SIM";
  kcrypto::Prng pop_prng = world.prng().Fork();
  auto population =
      MakePopulation(pop_prng, PopulationConfig{scenario.base.population,
                                                scenario.base.weak_fraction});

  krb5::KdcDatabase db;
  kcrypto::Prng key_prng = world.prng().Fork();
  db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
  std::vector<krb4::Principal> principals;
  for (int i = 0; i < static_cast<int>(population.size()); ++i) {
    krb4::Principal user = krb4::Principal::User("user" + std::to_string(i), realm);
    db.AddUser(user, population[i].first);
    principals.push_back(user);
    ++report.population;
    if (IsDictionaryWord(population[i].first)) {
      ++report.weak_users;
    }
  }

  krb5::KdcPolicy5 policy;
  policy.require_preauth = scenario.kdc_requires_preauth;
  policy.as_rate_limit_per_minute = scenario.kdc_rate_limit_per_minute;
  const ksim::NetAddress as_addr{0x0a000058, 88};
  const ksim::NetAddress tgs_addr{0x0a000058, 750};
  krb5::Kdc5 kdc(&world.network(), as_addr, tgs_addr, world.MakeHostClock(0), realm,
                 std::move(db), world.prng().Fork(), policy);

  // Eve, from her own host, simply asks. No eavesdropping anywhere.
  const ksim::NetAddress eve{0x0a000666, 31337};
  kcrypto::Prng eve_prng(scenario.base.seed ^ 0xeeee);
  for (const auto& principal : principals) {
    krb5::AsRequest5 req;
    req.client = principal;
    req.service_realm = realm;
    req.lifetime = ksim::kHour;
    req.nonce = eve_prng.NextU64();
    auto reply = world.network().Call(eve, as_addr, req.ToTlv().Encode());
    if (!reply.ok()) {
      ++report.rejected_by_kdc;
      continue;
    }
    auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgAsRep, reply.value());
    if (!tlv.ok()) {
      ++report.rejected_by_kdc;
      continue;
    }
    auto rep = krb5::AsReply5::FromTlv(tlv.value());
    if (!rep.ok()) {
      continue;
    }
    ++report.replies_obtained;
    uint64_t attempts = 0;
    auto cracked = CrackSealedReply5(rep.value().sealed_enc_part, principal,
                                     CommonPasswordDictionary(), &attempts);
    report.guess_attempts += attempts;
    if (cracked.has_value()) {
      ++report.cracked;
    }
  }
  return report;
}

}  // namespace kattack
