#include "src/attacks/chaos.h"

#include <limits>
#include <string>

#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/common/bytes.h"

namespace kattack {

namespace {

ksim::FaultPlan PlanFor(const ChaosConfig& config) {
  ksim::FaultPlan plan;
  plan.link.drop_request = config.drop;
  plan.link.drop_reply = config.drop;
  plan.link.duplicate_request = config.duplicate;
  plan.link.reorder_request = config.reorder;
  plan.link.corrupt_request = config.corrupt;
  plan.link.corrupt_reply = config.corrupt;
  plan.link.delay = config.delay;
  plan.link.delay_jitter = config.delay_jitter;
  return plan;
}

void Classify(kerb::ErrorCode code, ChaosReport& report) {
  if (code == kerb::ErrorCode::kInternal) {
    ++report.internal_errors;
  } else {
    ++report.failed_closed;
  }
}

// Scripts the primary-KDC outage over the middle third of the exchange
// schedule by mutating the live plan — deterministic because the loop index,
// not wall time, decides the boundaries.
void UpdateBlackout(const ChaosConfig& config, int exchange, uint32_t kdc_host,
                    ksim::FaultyNetwork* faults) {
  if (!config.primary_blackout || faults == nullptr) return;
  const int start = config.exchanges / 3;
  const int end = 2 * config.exchanges / 3;
  if (exchange == start) {
    faults->plan().blackouts.push_back(
        ksim::Blackout{kdc_host, 0, std::numeric_limits<ksim::Time>::max()});
  } else if (exchange == end) {
    faults->plan().blackouts.clear();
  }
}

// Shared per-exchange skeleton: ensure a login, run one mail call through
// `call_mail`, compare against the expected honest payload. The V4/V5
// studies differ only in the client objects and encodings.
template <typename LoginFn, typename CallFn>
void DriveExchanges(const ChaosConfig& config, ksim::SimClock& clock, uint32_t kdc_host,
                    ksim::FaultyNetwork* faults, bool& logged_in, LoginFn login,
                    CallFn call_mail, const std::string& expected, ChaosReport& report) {
  for (int i = 0; i < config.exchanges; ++i) {
    UpdateBlackout(config, i, kdc_host, faults);
    ++report.attempted;

    // Periodically start a fresh session so AS exchanges stay in the
    // workload (and exercise the reply cache) throughout the run.
    if (i > 0 && i % 5 == 0) logged_in = false;

    if (!logged_in) {
      ++report.logins;
      kerb::Status st = login();
      if (!st.ok()) {
        // The whole exchange fails closed at the login step.
        Classify(st.code(), report);
        clock.Advance(2 * ksim::kSecond);
        continue;
      }
      logged_in = true;
    }

    kerb::Result<kerb::Bytes> reply = call_mail();
    if (reply.ok()) {
      if (kerb::ToString(reply.value()) == expected) {
        ++report.succeeded;
      } else {
        ++report.bad_successes;  // accepted bytes nobody honest sent
      }
    } else {
      Classify(reply.code(), report);
    }
    clock.Advance(2 * ksim::kSecond);
  }
}

void FillNetworkReport(ksim::FaultyNetwork* faults, uint32_t kdc_host, int slaves,
                       ChaosReport& report) {
  if (faults == nullptr) return;
  report.net = faults->stats();
  report.schedule_digest = faults->schedule_digest();
  report.kdc_divergences = faults->divergences_at(kdc_host);
  for (int i = 0; i < slaves; ++i) {
    report.kdc_divergences += faults->divergences_at(kdc_host + 1 + static_cast<uint32_t>(i));
  }
}

}  // namespace

ChaosReport RunChaosStudy4(const ChaosConfig& config) {
  TestbedConfig tb;
  tb.seed = config.seed;
  tb.faults = PlanFor(config);
  tb.kdc_slaves = config.kdc_slaves;
  tb.client_retry = config.retry;
  tb.kdc_reply_cache_window = config.kdc_reply_cache_window;
  tb.server_replay_cache = config.server_replay_cache;
  tb.kdc_serve_batched = config.batched;
  Testbed4 bed(tb);

  ChaosReport report;
  const uint32_t kdc_host = Testbed4::kAsAddr.host;
  bool logged_in = false;
  DriveExchanges(
      config, bed.world().clock(), kdc_host, bed.world().faults(), logged_in,
      [&] {
        bed.alice().Logout();
        return bed.alice().Login(Testbed4::kAlicePassword);
      },
      [&] {
        return bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(),
                                       /*want_mutual=*/true);
      },
      "You have 3 messages.", report);

  FillNetworkReport(bed.world().faults(), kdc_host, bed.kdc_replicas().slave_count(), report);
  report.kdc_reply_cache_hits = bed.kdc().core().reply_cache_hits();
  for (int i = 0; i < bed.kdc_replicas().slave_count(); ++i) {
    report.kdc_reply_cache_hits += bed.kdc_replicas().slave(i).core().reply_cache_hits();
  }
  report.retry = bed.alice().retry_stats();
  return report;
}

ChaosReport RunChaosStudy5(const ChaosConfig& config) {
  Testbed5Config tb;
  tb.seed = config.seed;
  tb.faults = PlanFor(config);
  tb.kdc_slaves = config.kdc_slaves;
  tb.client_retry = config.retry;
  tb.kdc_policy.reply_cache_window = config.kdc_reply_cache_window;
  tb.kdc_policy.require_preauth = config.preauth;
  tb.kdc_policy.serve_batched = config.batched;
  tb.client_options.use_preauth = config.preauth;
  tb.server_options.replay_cache = config.server_replay_cache;
  Testbed5 bed(tb);

  ChaosReport report;
  const uint32_t kdc_host = Testbed5::kAsAddr.host;
  bool logged_in = false;
  DriveExchanges(
      config, bed.world().clock(), kdc_host, bed.world().faults(), logged_in,
      [&] {
        bed.alice().Logout();
        return bed.alice().Login(Testbed5::kAlicePassword);
      },
      [&]() -> kerb::Result<kerb::Bytes> {
        auto result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(),
                                              /*want_mutual=*/true);
        if (!result.ok()) return result.error();
        return std::move(result).value().app_reply;
      },
      "mail-ok: mail-check", report);

  FillNetworkReport(bed.world().faults(), kdc_host, bed.kdc_replicas().slave_count(), report);
  report.kdc_reply_cache_hits = bed.kdc().core().reply_cache_hits();
  for (int i = 0; i < bed.kdc_replicas().slave_count(); ++i) {
    report.kdc_reply_cache_hits += bed.kdc_replicas().slave(i).core().reply_cache_hits();
  }
  report.retry = bed.alice().retry_stats();
  return report;
}

}  // namespace kattack
