// Experiment E0 — the Kerberos environment assumptions (§THE KERBEROS
// ENVIRONMENT).
//
// Three of the paper's environmental observations, made executable:
//
//   1. "Since all of the Project Athena machines have local disks, the
//      original code used /tmp. But this is highly insecure on diskless
//      workstations, where /tmp exists on a file server" — the credential
//      cache written over the network is a wiretapper's prize.
//   2. Workstations: "only when the legitimate user leaves can the attacker
//      attempt to find the keys. But the keys are no longer available;
//      Kerberos attempts to wipe out old keys at logoff time."
//   3. Multi-user hosts: "an attacker has concurrent access to the keys if
//      there are flaws in the host's security."

#ifndef SRC_ATTACKS_ENVIRONMENT_H_
#define SRC_ATTACKS_ENVIRONMENT_H_

#include <cstdint>
#include <string>

namespace kattack {

struct DisklessCacheReport {
  bool cache_written_over_network = false;
  bool session_key_recovered_from_wire = false;
  bool impersonation_succeeded = false;  // attacker used the recovered key
  std::string evidence;
};

// The diskless-workstation /tmp scenario: the credential cache is written
// to a network file server in the clear; a wiretapper lifts the session key
// and impersonates the user.
DisklessCacheReport RunDisklessTmpCacheTheft(uint64_t seed = 303);

struct HostExposureReport {
  bool concurrent_theft_succeeded = false;  // multi-user host, user present
  bool post_logout_theft_succeeded = false;  // workstation, after key wipe
};

// Compares the multi-user-host and workstation threat windows for the
// in-memory credential cache.
HostExposureReport RunHostExposureStudy(uint64_t seed = 304);

}  // namespace kattack

#endif  // SRC_ATTACKS_ENVIRONMENT_H_
