#include "src/attacks/hosttrust.h"

#include "src/attacks/testbed.h"
#include "src/encoding/io.h"

namespace kattack {

HostTrustReport RunSrvtabCompromise(const HostTrustScenario& scenario) {
  TestbedConfig config;
  config.seed = scenario.seed;
  Testbed4 bed(config);
  HostTrustReport report;

  // The workstation has an identity of its own — a host principal whose
  // key sits in /etc/srvtab, readable by anyone who roots the box.
  krb4::Principal host = krb4::Principal::Service("host", "ws1", bed.realm);
  kcrypto::DesKey host_key =
      bed.kdc().database().AddServiceWithRandomKey(host, bed.world().prng());
  kerb::Bytes srvtab(host_key.bytes().begin(), host_key.bytes().end());

  // An NFS-like mount service that trusts the host principal to assert
  // which user a mount is for. Rebind the file address with this policy.
  std::vector<std::string> mounts;
  krb4::AppServerOptions server_options;
  auto file_server = std::make_unique<krb4::AppServer4>(
      &bed.world().network(), ksim::NetAddress{0x0a000011, 2052},
      bed.file_principal(), bed.file_key(), bed.world().MakeHostClock(0),
      [&](const krb4::VerifiedSession& session, const kerb::Bytes& op) {
        kenc::Reader r(op);
        auto asserted_user = r.GetString();
        if (!asserted_user.ok()) {
          return kerb::ToBytes("bad request");
        }
        if (scenario.require_per_user_tickets) {
          // The fix: the ticket itself must belong to the affected user.
          if (session.client.name != asserted_user.value()) {
            return kerb::ToBytes("refused: per-user credentials required");
          }
        } else if (session.client.name != "host") {
          return kerb::ToBytes("refused: not a host principal");
        }
        mounts.push_back("mounted /home/" + asserted_user.value() + " vouched by " +
                         session.client.ToString());
        return kerb::ToBytes("mounted");
      },
      server_options);
  const ksim::NetAddress mount_addr{0x0a000011, 2052};

  // Eve roots the workstation and reads the srvtab.
  report.srvtab_readable = srvtab.size() == 8;
  kcrypto::DesBlock stolen;
  std::copy(srvtab.begin(), srvtab.end(), stolen.begin());

  // She authenticates AS THE HOST from the workstation's own address (she
  // is on the machine, after all).
  const ksim::NetAddress ws1{0x0a000201, 1023};
  krb4::Client4 host_session(&bed.world().network(), ws1, bed.world().MakeHostClock(0),
                             host, Testbed4::kAsAddr, Testbed4::kTgsAddr);
  report.host_login_succeeded = host_session.LoginWithKey(kcrypto::DesKey(stolen)).ok();
  if (!report.host_login_succeeded) {
    return report;
  }

  // And "becomes" every user on the box via vouched mounts.
  for (const char* user : {"alice", "bob", "carol"}) {
    kenc::Writer w;
    w.PutString(user);
    auto reply =
        host_session.CallService(mount_addr, bed.file_principal(), false, w.Peek());
    if (reply.ok() && kerb::ToString(reply.value()) == "mounted") {
      report.impersonated.emplace_back(user);
    }
  }
  report.per_user_tickets_blocked =
      scenario.require_per_user_tickets && report.impersonated.empty();
  return report;
}

}  // namespace kattack
