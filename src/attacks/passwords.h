// Password populations and the offline dictionary attack.
//
// "An intruder who has recorded many such login dialogs has good odds of
// finding several new passwords; empirically, users do not pick good
// passwords unless forced to." [Morr79, Gram84, Stol88]
//
// MakePopulation draws passwords with a configurable weak fraction: weak
// passwords come from a fixed common-password dictionary (plus trivial
// mutations), strong ones are random. CrackSealedReply is the attacker's
// inner loop: derive K_c from a candidate, attempt to unseal the recorded
// AS reply, and accept on structural validity — exactly the confirmation
// step the paper describes.

#ifndef SRC_ATTACKS_PASSWORDS_H_
#define SRC_ATTACKS_PASSWORDS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/prng.h"
#include "src/krb4/principal.h"

namespace kattack {

// The attacker's dictionary: common passwords and simple variants. Public —
// both the population generator and the cracker draw from it, which is the
// point: users and attackers share the same priors.
const std::vector<std::string>& CommonPasswordDictionary();

struct PopulationConfig {
  int size = 100;
  double weak_fraction = 0.5;  // fraction choosing dictionary passwords
};

// (password, was_drawn_from_dictionary) pairs.
std::vector<std::pair<std::string, bool>> MakePopulation(kcrypto::Prng& prng,
                                                         const PopulationConfig& config);

// A strong random password (outside the dictionary).
std::string RandomStrongPassword(kcrypto::Prng& prng);

// Number of worker threads the dictionary sweep fans out to: the
// KERB_CRACK_THREADS environment variable if set (≥1), otherwise the
// hardware concurrency. The sweep's result is deterministic regardless of
// the thread count — workers race through the dictionary in index order and
// the lowest-index hit always wins, with everyone past that index bailing
// out early.
unsigned CrackWorkerThreads();

// Offline attack on one recorded AS reply body (the V4 sealed AsReplyBody
// bytes). Returns the recovered password, or nullopt if no dictionary word
// matches. `attempts_out`, if given, receives the number of string-to-key
// trials performed.
std::optional<std::string> CrackSealedReply(kerb::BytesView sealed_reply_body,
                                            const krb4::Principal& victim,
                                            const std::vector<std::string>& dictionary,
                                            uint64_t* attempts_out = nullptr);

// Same attack against a Version 5 sealed EncAsRepPart (the encryption-layer
// checksum doubles as the guess confirmation).
std::optional<std::string> CrackSealedReply5(kerb::BytesView sealed_enc_part,
                                             const krb4::Principal& victim,
                                             const std::vector<std::string>& dictionary,
                                             uint64_t* attempts_out = nullptr);

}  // namespace kattack

#endif  // SRC_ATTACKS_PASSWORDS_H_
