// Experiment E1 — authenticator replay within the clock-skew window.
//
// "An intruder may simply watch for a mail-checking session, wherein a user
// logs in briefly, reads a few messages, and logs out. A number of valuable
// tickets would be exposed by such a session ... Note that the lifetime of
// the authenticators — 5 minutes — contributes considerably to this
// attack."

#ifndef SRC_ATTACKS_REPLAY_H_
#define SRC_ATTACKS_REPLAY_H_

#include <string>

#include "src/sim/clock.h"

namespace kattack {

struct ReplayReport {
  bool captured = false;          // the wiretap saw a live AP request
  bool replay_accepted = false;   // the replayed copy was honoured
  uint64_t server_accepted = 0;   // total requests the server honoured
  std::string evidence;           // the action the server performed
};

struct ReplayScenario {
  bool server_replay_cache = false;  // "never implemented" historically
  // How long the attacker waits before replaying. Within the skew window
  // the timestamp check alone cannot help.
  ksim::Duration replay_delay = 2 * ksim::kMinute;
  // The servers' clock-skew tolerance — the attacker's budget (bench B10
  // sweeps it).
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  uint64_t seed = 1234;
};

// Kerberos V4, timestamp authentication: records alice's brief mail-check
// session, then replays her AP request from a spoofed source address.
ReplayReport RunMailCheckReplayV4(const ReplayScenario& scenario);

// Version 5 with the challenge/response option: the attacker replays the
// complete recorded two-leg exchange (initial request + challenge answer).
ReplayReport RunReplayAgainstChallengeResponse(uint64_t seed = 1234);

}  // namespace kattack

#endif  // SRC_ATTACKS_REPLAY_H_
