// Parallel KDC load harness.
//
// Drives a KdcCore handler from a pool of worker threads, one KdcContext
// per worker — the multi-threaded serving configuration the deterministic
// simulation never exercises (it owns a single context). Used by the
// bench_b11_kdcparallel benchmark and the threaded stress tests.
//
// Thread count comes from KERB_KDC_THREADS when set (mirroring the PR-1
// KERB_CRACK_THREADS convention for the cracking harness), else from
// hardware concurrency.

#ifndef SRC_ATTACKS_KDCLOAD_H_
#define SRC_ATTACKS_KDCLOAD_H_

#include <cstdint>
#include <functional>

#include "src/krb4/kdccore.h"
#include "src/sim/network.h"

namespace kattack {

// KERB_KDC_THREADS (≥ 1, capped at 256) when set, else hardware
// concurrency.
unsigned KdcWorkerThreads();

struct KdcLoadResult {
  uint64_t requests_ok = 0;
  uint64_t requests_failed = 0;
};

using KdcHandler =
    std::function<kerb::Result<kerb::Bytes>(const ksim::Message&, krb4::KdcContext&)>;

// Presents `requests_per_worker` copies of `request` to `handler` from
// `threads` workers, each with its own KdcContext whose PRNG is forked
// deterministically from `seed`. Returns aggregate accept/fail counts.
KdcLoadResult RunKdcLoad(const KdcHandler& handler, const ksim::Message& request,
                         unsigned threads, uint64_t requests_per_worker, uint64_t seed);

}  // namespace kattack

#endif  // SRC_ATTACKS_KDCLOAD_H_
