// Parallel KDC load harness.
//
// Drives a KdcCore handler from a pool of worker threads, one KdcContext
// per worker — the multi-threaded serving configuration the deterministic
// simulation never exercises (it owns a single context). Used by the
// bench_b11_kdcparallel benchmark and the threaded stress tests.
//
// Thread count comes from KERB_KDC_THREADS when set (mirroring the PR-1
// KERB_CRACK_THREADS convention for the cracking harness), else from
// hardware concurrency.

#ifndef SRC_ATTACKS_KDCLOAD_H_
#define SRC_ATTACKS_KDCLOAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/krb4/kdccore.h"
#include "src/sim/network.h"

namespace kattack {

// KERB_KDC_THREADS (≥ 1, capped at 256) when set, else hardware
// concurrency.
unsigned KdcWorkerThreads();

// Requests drained per batched dispatch: KERB_KDC_BATCH (≥ 1, capped at
// 256) when set, else 16.
size_t KdcBatchSize();

struct KdcLoadResult {
  uint64_t requests_ok = 0;
  uint64_t requests_failed = 0;
};

using KdcHandler =
    std::function<kerb::Result<kerb::Bytes>(const ksim::Message&, krb4::KdcContext&)>;

// Presents `requests_per_worker` copies of `request` to `handler` from
// `threads` workers, each with its own KdcContext whose PRNG is forked
// deterministically from `seed`. Returns aggregate accept/fail counts.
KdcLoadResult RunKdcLoad(const KdcHandler& handler, const ksim::Message& request,
                         unsigned threads, uint64_t requests_per_worker, uint64_t seed);

// A batch handler serves msgs[0..n) through one context and appends one
// reply per message (KdcCore4/5::HandleAsBatch and friends fit directly).
using KdcBatchHandler = std::function<void(const ksim::Message* msgs, size_t n,
                                           krb4::KdcContext& ctx,
                                           std::vector<kerb::Result<kerb::Bytes>>& replies)>;

// As RunKdcLoad, but each worker drains its queue in dispatches of up to
// `batch` requests (0 = KdcBatchSize()), handing every dispatch to the
// batch handler in one call — the amortized serving path. Contexts fork
// from `seed` exactly as in RunKdcLoad, so a batch handler that preserves
// the sequential reply stream makes the two harnesses byte-equivalent.
KdcLoadResult RunKdcLoadBatched(const KdcBatchHandler& handler, const ksim::Message& request,
                                unsigned threads, uint64_t requests_per_worker, uint64_t seed,
                                size_t batch = 0);

// ---------------------------------------------------------------------------
// Bulk public-key preauthenticated logins (V4 shape).

// One complete PK AS exchange against `handler`: generates a fresh client
// DH pair from `client_prng`, frames an AsPkRequest4 carrying the
// mandatory proof-of-possession padata ({timestamp, md4(g^a)}K_c, stamped
// with `now`, the client's view of KDC time), and verifies the reply end
// to end — server public validated, DH layer and password layer unsealed,
// reply body decoded. `src` is the claimed client address.
kerb::Result<krb4::AsReplyBody4> DoPkLogin4(const KdcHandler& handler,
                                            const krb4::Principal& user,
                                            const kcrypto::DesKey& user_key,
                                            const kcrypto::DhGroup& group, ksim::Time now,
                                            krb4::KdcContext& kdc_ctx,
                                            kcrypto::Prng& client_prng,
                                            const ksim::NetAddress& src);

struct PkLoginLoadResult {
  uint64_t logins_ok = 0;
  uint64_t logins_failed = 0;
};

// Drives `logins_per_worker` full PK AS exchanges per worker through
// `handler` from `threads` workers. Each worker owns a KdcContext (the
// server side's per-thread state) and a client PRNG, both forked
// deterministically from `seed` on the calling thread. Every login is
// verified end to end as in DoPkLogin4; the result counts verified logins,
// so a throughput number from this harness is also a correctness check.
PkLoginLoadResult RunPkLoginLoad(const KdcHandler& handler, const krb4::Principal& user,
                                 const kcrypto::DesKey& user_key, const kcrypto::DhGroup& group,
                                 ksim::Time now, unsigned threads, uint64_t logins_per_worker,
                                 uint64_t seed);

}  // namespace kattack

#endif  // SRC_ATTACKS_KDCLOAD_H_
