// A complete simulated Athena-style deployment for experiments.
//
// One realm, a KDC, three application servers (mail, file, backup — the
// services the paper's attack narratives use), two named users plus an
// optional synthetic user population, and an attacker host. Tests, example
// programs, and every bench build on this.

#ifndef SRC_ATTACKS_TESTBED_H_
#define SRC_ATTACKS_TESTBED_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/admin/kadmin.h"
#include "src/krb4/appserver.h"
#include "src/krb4/client.h"
#include "src/krb4/kdc.h"
#include "src/krb4/replica.h"
#include "src/sim/world.h"

namespace kattack {

struct TestbedConfig {
  uint64_t seed = 1234;
  // Extra synthetic users beyond alice/bob, with passwords drawn from the
  // weak-password population (see src/attacks/passwords.h).
  int extra_users = 0;
  double weak_fraction = 0.5;
  bool server_replay_cache = false;
  bool server_check_address = true;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  // Robustness knobs (all default to the historical lossless testbed):
  // route traffic through a seeded FaultyNetwork, add read-only slave KDCs,
  // give clients a retry/failover policy, enable the KDC reply cache.
  std::optional<ksim::FaultPlan> faults;
  int kdc_slaves = 0;
  std::optional<ksim::RetryPolicy> client_retry;
  ksim::Duration kdc_reply_cache_window = 0;
  // Admin plane (PR 8): registers the changepw service plus an operator
  // principal (oper.admin) and binds a KadminServer on the primary KDC
  // host. Off by default — the historical testbed had no admin channel,
  // and enabling it perturbs the seeded key stream.
  bool enable_kadmin = false;
  // Routes the KDC's Bind handlers through the batched dispatch entry
  // points (n=1 batches). Verdicts are pinned identical to sequential
  // serving by the chaos tests.
  bool kdc_serve_batched = false;
};

class Testbed4 {
 public:
  explicit Testbed4(TestbedConfig config = {});

  // Well-known addresses.
  static constexpr ksim::NetAddress kAsAddr{0x0a000058, 88};
  static constexpr ksim::NetAddress kTgsAddr{0x0a000058, 750};
  static constexpr ksim::NetAddress kMailAddr{0x0a000010, 220};
  static constexpr ksim::NetAddress kFileAddr{0x0a000011, 2049};
  static constexpr ksim::NetAddress kBackupAddr{0x0a000012, 911};
  static constexpr ksim::NetAddress kAliceAddr{0x0a000101, 1023};
  static constexpr ksim::NetAddress kBobAddr{0x0a000102, 1023};
  static constexpr ksim::NetAddress kEveAddr{0x0a000666, 31337};
  static constexpr ksim::NetAddress kAdminAddr{0x0a000058, kadmin::kAdminPort};
  static constexpr ksim::NetAddress kOperAddr{0x0a000103, 1023};

  const std::string realm = "ATHENA.SIM";
  static constexpr const char* kAlicePassword = "quantum-Leap_77";
  static constexpr const char* kBobPassword = "password";  // bob chose badly
  static constexpr const char* kOperPassword = "0per-Master_Key!";

  ksim::World& world() { return *world_; }
  krb4::Kdc4& kdc() { return kdcs_->primary(); }
  krb4::KdcReplicaSet4& kdc_replicas() { return *kdcs_; }
  krb4::Client4& alice() { return *alice_; }
  krb4::Client4& bob() { return *bob_; }
  krb4::AppServer4& mail_server() { return *mail_server_; }
  krb4::AppServer4& file_server() { return *file_server_; }
  krb4::AppServer4& backup_server() { return *backup_server_; }

  krb4::Principal mail_principal() const;
  krb4::Principal file_principal() const;
  krb4::Principal backup_principal() const;
  krb4::Principal alice_principal() const;
  krb4::Principal bob_principal() const;
  // The operator principal (instance "admin") — only registered when
  // config.enable_kadmin is set.
  krb4::Principal oper_principal() const;

  // Non-null only when config.enable_kadmin is set.
  kadmin::KadminServer* kadmin_server() { return kadmin_server_.get(); }

  // An admin-protocol client riding an existing (logged-in) Client4; its
  // retry policy follows the testbed's client_retry configuration.
  std::unique_ptr<kadmin::AdminClient> MakeAdminClient(krb4::Client4& client);

  const kcrypto::DesKey& mail_key() const { return mail_key_; }
  const kcrypto::DesKey& file_key() const { return file_key_; }
  const kcrypto::DesKey& backup_key() const { return backup_key_; }

  // Operations each server executed, e.g. "mail-check alice@ATHENA.SIM" or
  // "DELETE /archive/thesis.tex" — attacks assert on these to show effect.
  const std::vector<std::string>& mail_log() const { return mail_log_; }
  const std::vector<std::string>& file_log() const { return file_log_; }
  const std::vector<std::string>& backup_log() const { return backup_log_; }

  // Synthetic population (principal, password) pairs, including alice/bob.
  const std::vector<std::pair<krb4::Principal, std::string>>& users() const { return users_; }

  // A fresh client bound to `addr` for any registered user.
  std::unique_ptr<krb4::Client4> MakeClient(const krb4::Principal& user,
                                            const ksim::NetAddress& addr);

 private:
  TestbedConfig config_;
  std::unique_ptr<ksim::World> world_;
  std::unique_ptr<krb4::KdcReplicaSet4> kdcs_;
  kcrypto::DesKey mail_key_;
  kcrypto::DesKey file_key_;
  kcrypto::DesKey backup_key_;
  std::unique_ptr<krb4::AppServer4> mail_server_;
  std::unique_ptr<krb4::AppServer4> file_server_;
  std::unique_ptr<krb4::AppServer4> backup_server_;
  std::unique_ptr<kadmin::KadminServer> kadmin_server_;
  std::unique_ptr<krb4::Client4> alice_;
  std::unique_ptr<krb4::Client4> bob_;
  std::vector<std::pair<krb4::Principal, std::string>> users_;
  std::vector<std::string> mail_log_;
  std::vector<std::string> file_log_;
  std::vector<std::string> backup_log_;
};

}  // namespace kattack

#endif  // SRC_ATTACKS_TESTBED_H_
