// Consistent-hash ring assigning principals to KDC cluster nodes.
//
// The paper treats the realm KDC as one machine plus full-copy slaves; at
// north-star scale (millions of principals) a full copy per node stops
// being the right unit of replication. This ring partitions the principal
// hash space across nodes instead: each node projects a fixed number of
// virtual points onto the 64-bit ring from a deterministic seed, and a
// principal belongs to the node owning the first point at or clockwise
// after Hash(principal). Virtual nodes smooth the partition (expected
// imbalance shrinks as 1/sqrt(vnodes)), and consistency is the membership
// property the recovery protocol leans on: adding or removing one node
// moves only the hash ranges adjacent to that node's points — every other
// principal keeps its owner, so a rebalance ships O(1/n) of the database,
// never all of it.
//
// Everything is deterministic: point placement depends only on (seed,
// node_id, vnode index), so every node and every client that knows the
// member list and the epoch derives byte-identical ownership — referrals
// carry the member list precisely so clients can rebuild this ring locally.

#ifndef SRC_CLUSTER_RING_H_
#define SRC_CLUSTER_RING_H_

#include <cstdint>
#include <vector>

#include "src/krb4/principal.h"
#include "src/krb4/principal_store.h"

namespace kcluster {

// One serving node as the ring sees it: a stable identity plus the host its
// AS/TGS/control endpoints live on.
struct RingMember {
  uint64_t node_id = 0;
  uint32_t host = 0;

  bool operator==(const RingMember& other) const {
    return node_id == other.node_id && host == other.host;
  }
};

struct RingConfig {
  uint64_t seed = 0x6b636c7573746572ull;  // "kcluster"
  uint32_t vnodes = 64;                   // virtual points per member
};

class HashRing {
 public:
  HashRing() = default;
  explicit HashRing(RingConfig config) : config_(config) {}

  // Rebuilds the ring for a new membership view. `epoch` is the view's
  // version: referral/ring frames carry it, and a client applies a learned
  // view only when its epoch is newer than the one it holds.
  void SetMembers(uint32_t epoch, std::vector<RingMember> members);

  uint32_t epoch() const { return epoch_; }
  const RingConfig& config() const { return config_; }
  const std::vector<RingMember>& members() const { return members_; }
  bool empty() const { return points_.empty(); }

  // The member owning `key_hash`; nullptr on an empty ring. Use
  // krb4::PrincipalStore::Hash for principals so ring ownership and store
  // sharding agree on one hash function.
  const RingMember* OwnerOf(uint64_t key_hash) const;

  const RingMember* OwnerOfPrincipal(const krb4::Principal& principal) const {
    return OwnerOf(krb4::PrincipalStore::Hash(principal));
  }

  // The member with `node_id`, or nullptr.
  const RingMember* FindMember(uint64_t node_id) const;

  // The deterministic ring coordinate of one virtual point.
  static uint64_t PointOf(uint64_t seed, uint64_t node_id, uint32_t vnode);

 private:
  struct Point {
    uint64_t where = 0;
    uint32_t member_index = 0;
  };

  RingConfig config_;
  uint32_t epoch_ = 0;
  std::vector<RingMember> members_;
  std::vector<Point> points_;  // sorted by (where, member_index)
};

}  // namespace kcluster

#endif  // SRC_CLUSTER_RING_H_
