#include "src/cluster/wire.h"

#include <utility>

#include "src/crypto/modes.h"
#include "src/crypto/str2key.h"
#include "src/encoding/io.h"

namespace kcluster {

namespace {

// Same sealing convention as kprop: 8-byte DES CBC-MAC (zero IV) trailer
// over the whole body.
kerb::Bytes Seal(const kcrypto::DesKey& key, kerb::Bytes body) {
  const kcrypto::DesBlock mac = kcrypto::CbcMac(key, kcrypto::DesBlock{}, body);
  body.insert(body.end(), mac.begin(), mac.end());
  return body;
}

kerb::Result<RingAnnounce> DecodeAnnounceFrom(kenc::Reader& r) {
  auto epoch = r.GetU32();
  auto seed = r.GetU64();
  auto vnodes = r.GetU32();
  auto as_port = r.GetU16();
  auto tgs_port = r.GetU16();
  auto ctl_port = r.GetU16();
  auto count = r.GetU32();
  if (!epoch.ok() || !seed.ok() || !vnodes.ok() || !as_port.ok() || !tgs_port.ok() ||
      !ctl_port.ok() || !count.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: truncated announce");
  }
  // A view with no members or an absurd vnode count cannot describe a
  // serving cluster; reject rather than build a degenerate ring.
  if (count.value() == 0 || count.value() > kMaxClusterMembers || vnodes.value() == 0 ||
      vnodes.value() > 4096) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad announce shape");
  }
  RingAnnounce announce;
  announce.epoch = epoch.value();
  announce.ring.seed = seed.value();
  announce.ring.vnodes = vnodes.value();
  announce.as_port = as_port.value();
  announce.tgs_port = tgs_port.value();
  announce.ctl_port = ctl_port.value();
  announce.members.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto id = r.GetU64();
    auto host = r.GetU32();
    if (!id.ok() || !host.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: truncated member");
    }
    // Duplicate node ids would double the node's ring points and make
    // ownership depend on list order — reject.
    for (const RingMember& m : announce.members) {
      if (m.node_id == id.value()) {
        return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: duplicate member");
      }
    }
    announce.members.push_back(RingMember{id.value(), host.value()});
  }
  return announce;
}

void EncodeAnnounceTo(kenc::Writer& w, const RingAnnounce& announce) {
  w.PutU32(announce.epoch);
  w.PutU64(announce.ring.seed);
  w.PutU32(announce.ring.vnodes);
  w.PutU16(announce.as_port);
  w.PutU16(announce.tgs_port);
  w.PutU16(announce.ctl_port);
  w.PutU32(static_cast<uint32_t>(announce.members.size()));
  for (const RingMember& m : announce.members) {
    w.PutU64(m.node_id);
    w.PutU32(m.host);
  }
}

}  // namespace

kcrypto::DesKey ClusterKey(const std::string& realm) {
  return kcrypto::StringToKey("kcluster/" + realm, realm);
}

kerb::Bytes EncodeRingAnnounce(const RingAnnounce& announce) {
  kenc::Writer w;
  EncodeAnnounceTo(w, announce);
  return w.Take();
}

kerb::Result<RingAnnounce> DecodeRingAnnounce(kerb::BytesView data) {
  kenc::Reader r(data);
  auto announce = DecodeAnnounceFrom(r);
  if (!announce.ok()) {
    return announce.error();
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: trailing announce bytes");
  }
  return announce;
}

kerb::Bytes EncodeReferralBody(const ReferralBody& body) {
  kenc::Writer w;
  EncodeAnnounceTo(w, body.view);
  w.PutU64(body.owner_node_id);
  return w.Take();
}

kerb::Result<ReferralBody> DecodeReferralBody(kerb::BytesView data) {
  kenc::Reader r(data);
  auto announce = DecodeAnnounceFrom(r);
  if (!announce.ok()) {
    return announce.error();
  }
  auto owner = r.GetU64();
  if (!owner.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad referral body");
  }
  // The named owner must be in the view it rides with, or the client could
  // not act on the referral anyway.
  ReferralBody body;
  body.view = std::move(announce).value();
  body.owner_node_id = owner.value();
  bool found = false;
  for (const RingMember& m : body.view.members) {
    found = found || m.node_id == body.owner_node_id;
  }
  if (!found) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: referral owner not in view");
  }
  return body;
}

kerb::Bytes EncodePingFrame(const kcrypto::DesKey& key, uint64_t from_node) {
  kenc::Writer w;
  w.PutU32(kClusterMagic);
  w.PutU8(kCtlPing);
  w.PutU64(from_node);
  return Seal(key, w.Take());
}

kerb::Bytes EncodePongFrame(const kcrypto::DesKey& key, const PongInfo& info) {
  kenc::Writer w;
  w.PutU32(kClusterMagic);
  w.PutU8(kCtlPong);
  w.PutU64(info.node_id);
  w.PutU32(info.epoch);
  w.PutU64(info.applied_lsn);
  return Seal(key, w.Take());
}

kerb::Bytes EncodeRingFrame(const kcrypto::DesKey& key, const RingAnnounce& announce) {
  kenc::Writer w;
  w.PutU32(kClusterMagic);
  w.PutU8(kCtlRing);
  EncodeAnnounceTo(w, announce);
  return Seal(key, w.Take());
}

kerb::Bytes EncodeRingAckFrame(const kcrypto::DesKey& key, const RingAckInfo& info) {
  kenc::Writer w;
  w.PutU32(kClusterMagic);
  w.PutU8(kCtlRingAck);
  w.PutU64(info.node_id);
  w.PutU32(info.epoch);
  return Seal(key, w.Take());
}

kerb::Bytes EncodeLoadFrame(const kcrypto::DesKey& key, const LoadFrame& load) {
  kenc::Writer w;
  w.PutU32(kClusterMagic);
  w.PutU8(kCtlLoad);
  w.PutU32(load.epoch);
  w.PutU32(static_cast<uint32_t>(load.entries.size()));
  for (const kerb::Bytes& entry : load.entries) {
    w.PutLengthPrefixed(entry);
  }
  return Seal(key, w.Take());
}

kerb::Bytes EncodeLoadAckFrame(const kcrypto::DesKey& key, uint32_t count_applied) {
  kenc::Writer w;
  w.PutU32(kClusterMagic);
  w.PutU8(kCtlLoadAck);
  w.PutU32(count_applied);
  return Seal(key, w.Take());
}

kerb::Result<std::pair<uint8_t, kerb::Bytes>> OpenCtlFrame(const kcrypto::DesKey& key,
                                                           kerb::BytesView frame) {
  if (frame.size() < 8 + 5) {  // mac + (magic, type)
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: ctl frame too short");
  }
  const kerb::BytesView body = frame.subspan(0, frame.size() - 8);
  const kerb::BytesView trailer = frame.subspan(frame.size() - 8);
  const kcrypto::DesBlock mac = kcrypto::CbcMac(key, kcrypto::DesBlock{}, body);
  if (!kerb::ConstantTimeEqual(trailer, kerb::BytesView(mac.data(), mac.size()))) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "cluster: bad ctl mac");
  }
  kenc::Reader r(body);
  auto magic = r.GetU32();
  auto type = r.GetU8();
  if (!magic.ok() || magic.value() != kClusterMagic || !type.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad ctl header");
  }
  return std::make_pair(type.value(), r.Rest());
}

kerb::Result<uint64_t> ParsePingBody(kerb::BytesView body) {
  kenc::Reader r(body);
  auto from = r.GetU64();
  if (!from.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad ping body");
  }
  return from.value();
}

kerb::Result<PongInfo> ParsePongBody(kerb::BytesView body) {
  kenc::Reader r(body);
  auto node = r.GetU64();
  auto epoch = r.GetU32();
  auto lsn = r.GetU64();
  if (!node.ok() || !epoch.ok() || !lsn.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad pong body");
  }
  return PongInfo{node.value(), epoch.value(), lsn.value()};
}

kerb::Result<RingAnnounce> ParseRingBody(kerb::BytesView body) {
  return DecodeRingAnnounce(body);
}

kerb::Result<RingAckInfo> ParseRingAckBody(kerb::BytesView body) {
  kenc::Reader r(body);
  auto node = r.GetU64();
  auto epoch = r.GetU32();
  if (!node.ok() || !epoch.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad ring-ack body");
  }
  return RingAckInfo{node.value(), epoch.value()};
}

kerb::Result<LoadFrame> ParseLoadBody(kerb::BytesView body) {
  kenc::Reader r(body);
  auto epoch = r.GetU32();
  auto count = r.GetU32();
  if (!epoch.ok() || !count.ok() || count.value() > kMaxLoadEntries) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad load header");
  }
  LoadFrame load;
  load.epoch = epoch.value();
  load.entries.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto entry = r.GetLengthPrefixed();
    if (!entry.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: truncated load entry");
    }
    load.entries.push_back(std::move(entry).value());
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: trailing load bytes");
  }
  return load;
}

kerb::Result<uint32_t> ParseLoadAckBody(kerb::BytesView body) {
  kenc::Reader r(body);
  auto count = r.GetU32();
  if (!count.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: bad load-ack body");
  }
  return count.value();
}

}  // namespace kcluster
