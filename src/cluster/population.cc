#include "src/cluster/population.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/krb4/client.h"
#include "src/krb5/client.h"
#include "src/obs/kobs.h"
#include "src/sim/faults.h"

namespace kcluster {

namespace {

// Independent deterministic key streams per (seed, domain, index).
kcrypto::Prng KeyStream(uint64_t seed, uint64_t domain, uint64_t index) {
  return kcrypto::Prng(seed ^ (domain * 0x9e3779b97f4a7c15ull) ^
                       (index * 0xbf58476d1ce4e5b9ull) ^ 0x94d049bb133111ebull);
}

}  // namespace

// --- Population -------------------------------------------------------------

krb4::Principal Population::UserPrincipal(size_t i) const {
  return krb4::Principal::User("u" + std::to_string(i), config_.realm);
}

krb4::Principal Population::ServicePrincipal(size_t j) const {
  return krb4::Principal::Service("svc" + std::to_string(j),
                                  "host" + std::to_string(j), config_.realm);
}

kcrypto::DesKey Population::UserKey(size_t i) const {
  return KeyStream(config_.seed, 1, i).NextDesKey();
}

kcrypto::DesKey Population::ServiceKey(size_t j) const {
  return KeyStream(config_.seed, 2, j).NextDesKey();
}

kcrypto::DesKey Population::TgsKey() const {
  return KeyStream(config_.seed, 3, 0).NextDesKey();
}

void Population::Install(krb4::KdcDatabase& db) const {
  db.Reserve(db.size() + config_.users + config_.services + 1);
  db.ApplyUpsert(krb4::TgsPrincipal(config_.realm), TgsKey(),
                 krb4::PrincipalKind::kService);
  for (size_t i = 0; i < config_.users; ++i) {
    db.ApplyUpsert(UserPrincipal(i), UserKey(i), krb4::PrincipalKind::kUser);
  }
  for (size_t j = 0; j < config_.services; ++j) {
    db.ApplyUpsert(ServicePrincipal(j), ServiceKey(j), krb4::PrincipalKind::kService);
  }
}

// --- ZipfSampler ------------------------------------------------------------

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.reserve(n);
  double sum = 0.0;
  for (size_t rank = 1; rank <= n; ++rank) {
    sum += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_.push_back(sum);
  }
  for (double& c : cdf_) {
    c /= sum;
  }
}

size_t ZipfSampler::Sample(kcrypto::Prng& prng) const {
  const double u =
      static_cast<double>(prng.NextU64() >> 11) / static_cast<double>(1ull << 53);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

// --- RunClusterLoad ---------------------------------------------------------

ClusterLoadReport RunClusterLoad(ksim::World& world, ClusterController& cluster,
                                 const Population& population,
                                 const ClusterLoadConfig& config) {
  const ClusterConfig& cc = cluster.config();
  const PopulationConfig& pc = population.config();
  ClusterLoadReport report;
  kcrypto::Prng prng(config.seed);
  ZipfSampler sampler(pc.users, config.zipf_s);

  const RingAnnounce view = cluster.View();
  const std::vector<RingMember>& members = view.members;
  if (members.empty() || pc.users == 0) {
    return report;
  }
  std::vector<ksim::NetAddress> as_addrs;
  std::vector<ksim::NetAddress> tgs_addrs;
  for (const RingMember& m : members) {
    as_addrs.push_back({m.host, cc.as_port});
    tgs_addrs.push_back({m.host, cc.tgs_port});
  }

  const size_t pool = std::max<size_t>(config.client_pool, 1);
  std::vector<ClientRouter> routers(pool);
  for (size_t i = config.cold_clients; i < pool; ++i) {
    routers[i].AdoptView(view);
  }

  ksim::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(members.size()) + 2;

  for (uint64_t op = 0; op < config.ops; ++op) {
    const size_t actor = op % pool;
    const size_t boot = op % members.size();
    const size_t ui =
        config.zipf ? sampler.Sample(prng) : static_cast<size_t>(prng.NextBelow(pc.users));
    const bool login_only = (prng.NextU64() & 1023) < config.login_mix_1024;
    const krb4::Principal user = population.UserPrincipal(ui);
    const ksim::NetAddress self{config.client_host_base + static_cast<uint32_t>(actor),
                                4000};
    const ksim::Time started = world.clock().Now();

    kerb::Status outcome = kerb::Status::Ok();
    if (cc.protocol == Protocol::kV4) {
      krb4::Client4 client(&world.network(), self, world.MakeHostClock(), user,
                           as_addrs[boot], tgs_addrs[boot]);
      for (size_t k = 1; k < members.size(); ++k) {
        const size_t alt = (boot + k) % members.size();
        client.AddSlaveKdc(as_addrs[alt], tgs_addrs[alt]);
      }
      client.ConfigureRetry(&world.clock(), policy, config.seed ^ (op * 2 + 1));
      routers[actor].Attach(client);
      outcome = client.LoginWithKey(population.UserKey(ui));
      if (outcome.ok() && !login_only) {
        const size_t sj = static_cast<size_t>(prng.NextBelow(pc.services));
        auto ticket = client.GetServiceTicket(population.ServicePrincipal(sj));
        outcome = ticket.ok() ? kerb::Status::Ok() : ticket.error();
      }
    } else {
      krb5::Client5 client(&world.network(), self, world.MakeHostClock(), user,
                           as_addrs[boot], kcrypto::Prng(config.seed ^ (op * 2 + 1)));
      client.AddRealmTgs(pc.realm, tgs_addrs[boot]);
      for (size_t k = 1; k < members.size(); ++k) {
        const size_t alt = (boot + k) % members.size();
        client.AddSlaveKdc(as_addrs[alt], tgs_addrs[alt]);
      }
      client.ConfigureRetry(&world.clock(), policy, config.seed ^ (op * 2 + 1));
      routers[actor].Attach(client);
      outcome = client.LoginWithKey(population.UserKey(ui));
      if (outcome.ok() && !login_only) {
        const size_t sj = static_cast<size_t>(prng.NextBelow(pc.services));
        auto ticket = client.GetServiceTicket(population.ServicePrincipal(sj));
        outcome = ticket.ok() ? kerb::Status::Ok() : ticket.error();
      }
    }

    const uint64_t latency_us =
        static_cast<uint64_t>(world.clock().Now() - started);
    kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterOp, latency_us,
                  login_only ? 0 : 1);
    ++report.attempted;
    if (login_only) {
      ++report.logins;
    } else {
      ++report.tgs_ops;
    }
    if (outcome.ok()) {
      ++report.ok;
    } else {
      ++report.failed;
      if (outcome.code() == kerb::ErrorCode::kInternal) {
        ++report.internal_errors;
      }
    }
  }

  for (const ClientRouter& router : routers) {
    report.routing.direct_routes += router.stats().direct_routes;
    report.routing.fallback_routes += router.stats().fallback_routes;
    report.routing.referrals_followed += router.stats().referrals_followed;
    report.routing.referrals_rejected += router.stats().referrals_rejected;
  }
  if (report.attempted > 0) {
    report.cold_referral_rate =
        static_cast<double>(report.routing.referrals_followed) /
        static_cast<double>(report.attempted);
  }
  for (uint64_t id : cluster.node_ids()) {
    const uint64_t busy = cluster.node(id)->busy_us();
    report.total_busy_us += busy;
    report.max_node_busy_us = std::max(report.max_node_busy_us, busy);
  }
  if (report.max_node_busy_us > 0) {
    report.aggregate_ops_per_sec = static_cast<double>(report.ok) * 1e6 /
                                   static_cast<double>(report.max_node_busy_us);
  }
  return report;
}

// --- RunClusterChaos --------------------------------------------------------

ClusterChaosReport RunClusterChaos(ksim::World& world, ClusterController& cluster,
                                   const Population& population,
                                   const ClusterChaosConfig& config) {
  ClusterChaosReport report;
  const PopulationConfig& pc = population.config();

  auto run_phase = [&](uint64_t salt) {
    ClusterLoadConfig lc;
    lc.seed = config.seed ^ salt;
    lc.ops = config.ops_per_phase;
    lc.login_mix_1024 = config.login_mix_1024;
    lc.client_pool = config.client_pool;
    lc.cold_clients = config.cold_clients;
    lc.client_host_base = config.client_host_base;
    const ClusterLoadReport r = RunClusterLoad(world, cluster, population, lc);
    report.attempted += r.attempted;
    report.ok += r.ok;
    report.failed_closed += r.failed;
    report.internal_errors += r.internal_errors;
    report.phases.attempted += r.attempted;
    report.phases.ok += r.ok;
    report.phases.failed += r.failed;
    report.phases.logins += r.logins;
    report.phases.tgs_ops += r.tgs_ops;
    report.phases.routing.direct_routes += r.routing.direct_routes;
    report.phases.routing.fallback_routes += r.routing.fallback_routes;
    report.phases.routing.referrals_followed += r.routing.referrals_followed;
    report.phases.routing.referrals_rejected += r.routing.referrals_rejected;
  };

  const std::vector<uint64_t> ids = cluster.node_ids();
  ksim::FaultyNetwork* faults = world.faults();

  // Phase A: healthy traffic, propagation flowing.
  run_phase(0xA11CE);
  cluster.PropagateAll();

  // Outage: one node goes dark mid-stream — a scripted network blackout
  // when the world has a fault fabric, a device crash otherwise.
  const uint64_t black_id = ids[config.blackout_node % ids.size()];
  ClusterNode* black = cluster.node(black_id);
  const ksim::Time outage_start = world.clock().Now();
  const ksim::Time outage_end = outage_start + config.blackout_length;
  if (faults != nullptr) {
    faults->plan().blackouts.push_back({black->host(), outage_start, outage_end});
  } else {
    black->Crash();
  }

  // Registrations land while propagation is paused: the rebalance and the
  // later catch-up must carry them.
  for (size_t i = 0; i < config.midstream_registrations; ++i) {
    const krb4::Principal extra =
        krb4::Principal::User("chaos" + std::to_string(i), pc.realm);
    cluster.logical_db().ApplyUpsert(extra,
                                     KeyStream(config.seed, 4, i).NextDesKey(),
                                     krb4::PrincipalKind::kUser);
  }

  // The controller notices the loss and rebalances under load.
  cluster.ProbeAll();

  // Phase B: traffic against the degraded cluster.
  run_phase(0xB1ACC);

  // A second node takes a device crash and recovers in place.
  const uint64_t crash_id = ids[config.crash_node % ids.size()];
  if (crash_id != black_id) {
    ClusterNode* crashed = cluster.node(crash_id);
    crashed->Crash();
    crashed->Recover();
  }

  // End the outage and let the controller re-admit everyone.
  if (faults != nullptr) {
    const ksim::Time now = world.clock().Now();
    if (now <= outage_end) {
      world.clock().Advance(outage_end - now + ksim::kSecond);
    }
  } else {
    black->Recover();
  }
  cluster.ProbeAll();   // rejoin + wholesale catch-up, amnesiac re-sync
  cluster.PropagateAll();
  cluster.Maintain();

  // Phase C: recovered cluster.
  run_phase(0xCAFE);

  // Convergence: link faults can corrupt any individual sync frame, so
  // drive deterministic retries until every up node matches its slice
  // (each round re-rolls the fault stream; a bounded number of rounds
  // converges for any non-degenerate fault rate).
  for (int round = 0; round < 8; ++round) {
    cluster.ProbeAll();
    cluster.PropagateAll();
    cluster.Maintain();
    if (cluster.AllSlicesConsistent()) {
      break;
    }
  }

  report.slices_consistent = cluster.AllSlicesConsistent();
  report.final_epoch = cluster.epoch();
  if (faults != nullptr) {
    for (uint64_t id : ids) {
      report.double_issues += faults->divergences_at(cluster.node(id)->host());
    }
    report.schedule_digest = faults->schedule_digest();
  }
  return report;
}

}  // namespace kcluster
