// Clustered KDC scale-out: sharded serving nodes plus the membership and
// recovery controller.
//
// The paper's deployment model is one master KDC plus full-copy slaves —
// every server holds the whole realm database. This subsystem models the
// step beyond that: a realm too large for full copies, partitioned across
// KDC nodes by the consistent-hash ring (src/cluster/ring.h). Each node is
// a complete KDC (an unmodified KdcCore4 or KdcCore5 with its own durable
// kstore WAL + snapshot on its own simulated device) that serves only the
// principals the ring assigns it, answering requests for anything else
// with a referral that teaches the client the current ring view.
//
// Division of labour:
//
//   * ClusterNode — serving. Binds AS/TGS endpoints, extracts the routing
//     principal from each request, serves owned principals through the
//     wrapped core, refers the rest. Binds a kprop PropagationSink for the
//     controller's data feed and a 'KCL1' control endpoint for membership
//     traffic. Every applied record is journaled to the node's own KStore
//     first (write-ahead), so Crash()/Recover() rebuild the node from its
//     durable files alone.
//
//   * ClusterController — the registration primary and membership brain.
//     It owns the logical (whole-realm) database and its WAL; per-node
//     slices are projections of that log. ProbeAll() detects node loss and
//     rejoin over the fault fabric and bumps the ring epoch; Rebalance()
//     moves only the hash ranges the membership change affected (additive
//     range loads to the gaining nodes, prune-on-adopt at the shrinking
//     ones); a rejoining node is caught up wholesale — a slice snapshot at
//     the current LSN — then rides the delta tail like everyone else.
//
// LSN discipline (the recovery invariant): a node's local WAL advances in
// lockstep with the controller feed — exactly one local append per applied
// controller record, with records the node does not own journaled as
// kWalOpClusterMark placeholders. Local last_lsn therefore *is* the
// controller LSN the node has applied, which is what Recover() resumes
// from. The controller journals one cluster-mark per membership change, so
// any post-change snapshot carries an LSN strictly above every node's
// applied LSN and the wholesale stale-guard (kprop's defence against
// rollback-by-old-snapshot) can never reject a legitimate rejoin catch-up.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/ring.h"
#include "src/cluster/wire.h"
#include "src/krb4/kdccore.h"
#include "src/krb4/kdcstore.h"
#include "src/krb5/kdccore.h"
#include "src/sim/world.h"
#include "src/store/kprop.h"
#include "src/store/kstore.h"

namespace kcluster {

enum class Protocol { kV4, kV5 };

struct ClusterConfig {
  std::string realm = "ATHENA.MIT.EDU";
  Protocol protocol = Protocol::kV4;
  RingConfig ring;
  uint16_t as_port = 88;
  uint16_t tgs_port = 89;
  uint16_t ctl_port = kClusterCtlPort;
  uint16_t prop_port = kstore::kPropPort;
  uint32_t controller_host = 1;  // control/prop traffic source address
  uint64_t seed = 0x6b636c7573746572ull;
  // Duplicated requests must return the stored reply, never a second
  // ticket — the cluster's no-double-issue invariant leans on this.
  ksim::Duration reply_cache_window = 30 * ksim::kSecond;
  // Virtual per-request service time, charged to the serving node's busy
  // meter (and optionally the shared SimClock). The single-core host can't
  // run N nodes in parallel, so aggregate throughput is derived from the
  // busiest node's meter: wall time = max over nodes, not the sum.
  ksim::Duration node_service_time = 200 * ksim::kMicrosecond;
  bool advance_clock_per_request = true;
  // Chunking for the controller's data plane.
  uint32_t delta_chunk_records = 256;
  uint32_t load_chunk_entries = 512;
};

// Principals replicated to every node regardless of ring ownership. The
// TGS principal must be, or no node could decrypt a ticket-granting
// ticket minted by another node.
inline bool IsInfraPrincipal(const krb4::Principal& p) { return p.name == "krbtgt"; }

class ClusterNode {
 public:
  // `slice` is the node's initial owned entry set; `base_lsn` the
  // controller LSN that slice reflects. The node snapshots the slice as
  // its durable base.
  ClusterNode(ksim::World* world, const ClusterConfig& config, uint64_t node_id,
              uint32_t host, krb4::KdcDatabase slice, uint64_t base_lsn);

  // Binds AS, TGS, control, and propagation endpoints on the node's host.
  void Bind();

  // Installs a ring view and prunes entries the view assigns elsewhere
  // (infra principals always stay). Prunes are not journaled: a recovered
  // node may resurrect pruned entries, which the always-wholesale rejoin
  // catch-up then removes again.
  void AdoptView(const RingAnnounce& view);

  // Power loss / recovery on the node's durable device. Between Crash()
  // and Recover() every endpoint fails closed. Recover() rebuilds the
  // database from the durable base snapshot plus the WAL suffix and drops
  // the (possibly stale) ring view — the controller re-teaches it on
  // rejoin, followed by a wholesale catch-up.
  void Crash();
  kerb::Status Recover();

  uint64_t node_id() const { return node_id_; }
  uint32_t host() const { return host_; }
  bool crashed() const { return crashed_; }
  uint32_t view_epoch() const { return view_.has_value() ? view_->epoch : 0; }
  uint64_t applied_lsn() const { return sink_->applied_lsn(); }
  uint64_t busy_us() const { return busy_us_; }
  uint64_t requests_served() const { return requests_served_; }
  uint64_t referrals_sent() const { return referrals_sent_; }
  krb4::KdcDatabase& database() { return db(); }
  const krb4::KdcDatabase& database() const {
    return const_cast<ClusterNode*>(this)->db();
  }
  kstore::KStore& store() { return *store_; }

 private:
  krb4::KdcDatabase& db() {
    return core4_.has_value() ? core4_->database() : core5_->database();
  }
  bool OwnedOrInfra(const krb4::Principal& p) const;
  bool ExtractRoutingPrincipal(bool tgs, kerb::BytesView payload,
                               krb4::Principal* out) const;
  kerb::Bytes ReferralReply(const krb4::Principal& p);
  kerb::Result<kerb::Bytes> HandleKdc(bool tgs, const ksim::Message& msg);
  kerb::Result<kerb::Bytes> HandleCtl(const ksim::Message& msg);
  // PropagationSink applier: exactly one local WAL append per record.
  kerb::Status ApplyRecord(uint8_t op, kerb::BytesView payload);
  // PropagationSink loader: replace the database with the slice snapshot
  // and rebuild the local store around it as the new durable base.
  kerb::Status LoadWholesale(const kstore::Snapshot& snapshot);
  void MakeSink(uint64_t applied_lsn);

  ksim::World* world_;
  ClusterConfig config_;
  uint64_t node_id_;
  uint32_t host_;
  kcrypto::Prng prng_;  // forked per durable-store rebuild
  std::optional<krb4::KdcCore4> core4_;
  std::optional<krb5::KdcCore5> core5_;
  krb4::KdcContext ctx_;
  kcrypto::DesKey ctl_key_;
  kcrypto::DesKey prop_key_;
  std::optional<RingAnnounce> view_;
  HashRing ring_;
  std::unique_ptr<kstore::KStore> store_;
  std::unique_ptr<kstore::PropagationSink> sink_;
  bool crashed_ = false;
  uint64_t busy_us_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t referrals_sent_ = 0;
};

class ClusterController {
 public:
  struct Stats {
    uint64_t rebalances = 0;
    uint64_t wholesale_transfers = 0;
    uint64_t entries_shipped = 0;  // additive range-load records, total
    uint64_t nodes_lost = 0;
    uint64_t nodes_rejoined = 0;
    uint64_t probe_failures = 0;
  };

  ClusterController(ksim::World* world, ClusterConfig config);

  // Pre-fill this (registrations, population load) BEFORE Bootstrap; it
  // becomes journaled afterwards, so later registrations propagate as WAL
  // deltas.
  krb4::KdcDatabase& logical_db() { return logical_; }

  // Slices the logical database across `members`, builds and binds one
  // node per member, and installs the epoch-1 ring view everywhere.
  void Bootstrap(const std::vector<RingMember>& members);

  // The current ring view, as clients and referral bodies see it.
  RingAnnounce View() const;

  // Ships the pending WAL tail to every up-and-current node.
  void PropagateAll();

  // Pings every member; a lost node or a rejoining one bumps the epoch,
  // journals a cluster-mark, and triggers a rebalance. Returns true when
  // membership changed.
  bool ProbeAll();

  // Re-syncs any node whose ring epoch or data is stale — the wholesale
  // big hammer for nodes a partial rebalance left behind.
  void Maintain();

  // Node db == the ring-assigned slice of the logical db, compared as
  // sorted encoded-entry multisets (byte equivalence).
  bool NodeSliceConsistent(uint64_t node_id) const;
  bool AllSlicesConsistent() const;

  ClusterNode* node(uint64_t node_id);
  bool node_up(uint64_t node_id) const;
  std::vector<uint64_t> node_ids() const;
  uint32_t epoch() const { return epoch_; }
  const HashRing& ring() const { return ring_; }
  const ClusterConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  kstore::KStore& store() { return *store_; }

 private:
  struct NodeState {
    std::unique_ptr<ClusterNode> node;
    RingMember member;
    bool up = true;
    uint64_t acked_lsn = 0;
    uint32_t synced_epoch = 0;
    bool needs_wholesale = false;
  };

  std::vector<RingMember> UpMembers() const;
  bool OwnedByOrInfra(uint64_t node_id, const krb4::Principal& p) const;
  void AppendEpochMark();
  bool Ping(NodeState& ns, PongInfo* pong);
  bool ShipRing(NodeState& ns);
  uint64_t ShipGained(NodeState& ns, const HashRing& prev);
  kstore::Snapshot SliceSnapshot(uint64_t node_id, uint64_t lsn) const;
  // Drives `ns` to the controller's last LSN: chunked deltas normally, a
  // slice-snapshot wholesale when flagged or past the compaction horizon.
  bool SyncNode(NodeState& ns);
  void Rebalance(const HashRing& prev);

  ksim::World* world_;
  ClusterConfig config_;
  kcrypto::Prng prng_;
  kcrypto::DesKey ctl_key_;
  kcrypto::DesKey prop_key_;
  krb4::KdcDatabase logical_;
  std::unique_ptr<kstore::KStore> store_;
  HashRing ring_;
  uint32_t epoch_ = 0;
  std::vector<NodeState> nodes_;
  Stats stats_;
};

}  // namespace kcluster

#endif  // SRC_CLUSTER_CLUSTER_H_
