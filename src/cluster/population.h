// Synthetic realm populations and the clustered load/chaos harnesses.
//
// The north-star workload: a realm of a million principals served across a
// KDC cluster. Population generates that realm deterministically — user
// keys come straight from a seeded PRNG (string-to-key a million passwords
// would dominate setup time without changing anything the cluster layer is
// measuring), so a harness can re-derive any user's key from (seed, index)
// without storing a million keys.
//
// RunClusterLoad drives login (AS) and service-ticket (TGS) traffic through
// cluster-routed clients and reports goodput, referral behaviour, and the
// virtual aggregate throughput (ok operations over the busiest node's
// charged service time — the single host serializes the simulation, so the
// busiest node, not the wall clock, is the cluster's critical path).
// Per-operation latencies are emitted as kobs kClusterOp events; the bench
// derives p50/p99 from the trace histogram rather than re-aggregating here.
//
// RunClusterChaos is the succeed-or-fail-closed testbed: traffic runs while
// a node blacks out mid-stream, the controller rebalances under load,
// propagation pauses and catches up, and a second node takes a device
// crash + recovery. Every request either yields a verified credential or a
// clean error; the report carries the double-issue divergence count and
// the final slice-consistency verdict for the tests to assert on.

#ifndef SRC_CLUSTER_POPULATION_H_
#define SRC_CLUSTER_POPULATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/router.h"
#include "src/sim/world.h"

namespace kcluster {

struct PopulationConfig {
  uint64_t seed = 0x706f70756c617465ull;  // "populate"
  size_t users = 10000;
  size_t services = 64;
  std::string realm = "ATHENA.MIT.EDU";
};

class Population {
 public:
  explicit Population(PopulationConfig config) : config_(config) {}

  // Registers the TGS principal, every user, and every service into `db`
  // (Reserve first, so a million inserts never pay an incremental rehash).
  void Install(krb4::KdcDatabase& db) const;

  krb4::Principal UserPrincipal(size_t i) const;
  krb4::Principal ServicePrincipal(size_t j) const;
  // Deterministic per-principal keys, re-derivable from (seed, index).
  kcrypto::DesKey UserKey(size_t i) const;
  kcrypto::DesKey ServiceKey(size_t j) const;
  kcrypto::DesKey TgsKey() const;

  const PopulationConfig& config() const { return config_; }

 private:
  PopulationConfig config_;
};

// Zipf(s) over [0, n): rank-frequency traffic skew (a few principals log in
// constantly, the long tail rarely). Deterministic via the caller's PRNG.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(kcrypto::Prng& prng) const;

 private:
  std::vector<double> cdf_;  // normalized prefix sums of 1/rank^s
};

struct ClusterLoadConfig {
  uint64_t seed = 1;
  size_t ops = 1000;
  // Out of 1024: operations that are logins (AS); the rest are
  // login + service-ticket (TGS) pairs. Integer so op selection is exact
  // and replayable.
  uint32_t login_mix_1024 = 512;
  bool zipf = true;
  double zipf_s = 1.0;
  // Client actors cycled round-robin across operations; each keeps its own
  // cached ring view.
  size_t client_pool = 32;
  // Out of the pool, routers that start with NO ring view — they bootstrap
  // through an arbitrary node and learn the ring from its referral. The
  // rest are warm-started with the controller's view.
  size_t cold_clients = 4;
  uint32_t client_host_base = 0x0a000000;  // 10.0.0.0
};

struct ClusterLoadReport {
  uint64_t attempted = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t internal_errors = 0;  // kInternal leaks among the failures
  uint64_t logins = 0;
  uint64_t tgs_ops = 0;
  ClientRouter::Stats routing;      // summed over the client pool
  double cold_referral_rate = 0.0;  // referrals followed / attempted
  uint64_t max_node_busy_us = 0;    // the cluster's virtual critical path
  uint64_t total_busy_us = 0;
  double aggregate_ops_per_sec = 0.0;  // ok ops / max_node_busy
};

ClusterLoadReport RunClusterLoad(ksim::World& world, ClusterController& cluster,
                                 const Population& population,
                                 const ClusterLoadConfig& config);

struct ClusterChaosConfig {
  uint64_t seed = 7;
  size_t ops_per_phase = 200;  // three phases: before, during, after
  uint32_t login_mix_1024 = 512;
  size_t client_pool = 16;
  size_t cold_clients = 2;
  uint32_t client_host_base = 0x0a000000;
  // Index (into the member list) of the node blacked out mid-traffic and of
  // the node taking a device crash + recovery.
  size_t blackout_node = 1;
  size_t crash_node = 2;
  ksim::Duration blackout_length = 2 * ksim::kMinute;
  // Registrations trickled into the logical database during the outage —
  // the rebalance-under-load + paused-propagation ingredient.
  size_t midstream_registrations = 32;
};

struct ClusterChaosReport {
  uint64_t attempted = 0;
  uint64_t ok = 0;
  uint64_t failed_closed = 0;   // clean errors: attempted == ok + failed_closed
  uint64_t internal_errors = 0;  // kInternal leaks — must be zero
  uint64_t double_issues = 0;    // reply divergences across every node host
  bool slices_consistent = false;
  uint32_t final_epoch = 0;
  uint64_t schedule_digest = 0;  // fault-fabric digest (0 without faults)
  ClusterLoadReport phases;      // merged per-op tallies across phases
};

ClusterChaosReport RunClusterChaos(ksim::World& world, ClusterController& cluster,
                                   const Population& population,
                                   const ClusterChaosConfig& config);

}  // namespace kcluster

#endif  // SRC_CLUSTER_POPULATION_H_
