#include "src/cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "src/crypto/str2key.h"
#include "src/encoding/io.h"
#include "src/encoding/tlv.h"
#include "src/krb4/messages.h"
#include "src/krb5/messages.h"
#include "src/obs/kobs.h"
#include "src/store/snapshot.h"

namespace kcluster {

namespace {

kcrypto::DesKey PropKey(const std::string& realm) {
  // Same derivation kprop uses, so the cluster data plane and the classic
  // replica sets speak under the same realm-derived key.
  return kcrypto::StringToKey("kprop/" + realm, realm);
}

}  // namespace

// --- ClusterNode ------------------------------------------------------------

ClusterNode::ClusterNode(ksim::World* world, const ClusterConfig& config,
                         uint64_t node_id, uint32_t host, krb4::KdcDatabase slice,
                         uint64_t base_lsn)
    : world_(world),
      config_(config),
      node_id_(node_id),
      host_(host),
      prng_(config.seed ^ (node_id * 0x9e3779b97f4a7c15ull)),
      ctx_(prng_.Fork()),
      ctl_key_(ClusterKey(config.realm)),
      prop_key_(PropKey(config.realm)),
      ring_(config.ring) {
  if (config_.protocol == Protocol::kV4) {
    krb4::KdcOptions options;
    options.reply_cache_window = config_.reply_cache_window;
    core4_.emplace(world_->MakeHostClock(), config_.realm, std::move(slice), options);
  } else {
    krb5::KdcPolicy5 policy;
    policy.reply_cache_window = config_.reply_cache_window;
    core5_.emplace(world_->MakeHostClock(), config_.realm, std::move(slice), policy);
  }
  store_ = std::make_unique<kstore::KStore>(prng_.Fork(), kstore::KStoreOptions{},
                                            krb4::SnapshotDatabase(db(), base_lsn));
  MakeSink(base_lsn);
}

void ClusterNode::MakeSink(uint64_t applied_lsn) {
  sink_ = std::make_unique<kstore::PropagationSink>(
      prop_key_, applied_lsn,
      [this](uint8_t op, kerb::BytesView payload) { return ApplyRecord(op, payload); },
      [this](const kstore::Snapshot& snapshot) { return LoadWholesale(snapshot); });
}

void ClusterNode::Bind() {
  ksim::Network& net = world_->network();
  net.Bind({host_, config_.as_port},
           [this](const ksim::Message& msg) { return HandleKdc(false, msg); });
  net.Bind({host_, config_.tgs_port},
           [this](const ksim::Message& msg) { return HandleKdc(true, msg); });
  net.Bind({host_, config_.ctl_port},
           [this](const ksim::Message& msg) { return HandleCtl(msg); });
  net.Bind({host_, config_.prop_port},
           [this](const ksim::Message& msg) -> kerb::Result<kerb::Bytes> {
             if (crashed_) {
               return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster node down");
             }
             return sink_->Handle(msg);
           });
}

bool ClusterNode::OwnedOrInfra(const krb4::Principal& p) const {
  if (IsInfraPrincipal(p)) {
    return true;
  }
  if (ring_.empty()) {
    return true;  // no view yet — serve everything rather than black-hole
  }
  const RingMember* owner = ring_.OwnerOfPrincipal(p);
  return owner != nullptr && owner->node_id == node_id_;
}

bool ClusterNode::ExtractRoutingPrincipal(bool tgs, kerb::BytesView payload,
                                          krb4::Principal* out) const {
  (void)tgs;  // the frame type, not the port, names the routing field
  if (config_.protocol == Protocol::kV4) {
    auto framed = krb4::Unframe4(payload);
    if (!framed.ok()) {
      return false;
    }
    switch (framed.value().first) {
      case krb4::MsgType::kAsRequest: {
        auto req = krb4::AsRequest4::Decode(framed.value().second);
        if (!req.ok()) {
          return false;
        }
        *out = req.value().client;
        return true;
      }
      case krb4::MsgType::kAsPkRequest: {
        auto req = krb4::AsPkRequest4::Decode(framed.value().second);
        if (!req.ok()) {
          return false;
        }
        *out = req.value().client;
        return true;
      }
      case krb4::MsgType::kTgsRequest: {
        auto req = krb4::TgsRequest4::Decode(framed.value().second);
        if (!req.ok()) {
          return false;
        }
        *out = req.value().service;
        return true;
      }
      default:
        return false;
    }
  }
  auto tlv = kenc::TlvMessage::Decode(payload);
  if (!tlv.ok()) {
    return false;
  }
  switch (tlv.value().type()) {
    case krb5::kMsgAsReq: {
      auto req = krb5::AsRequest5::FromTlv(tlv.value());
      if (!req.ok()) {
        return false;
      }
      *out = req.value().client;
      return true;
    }
    case krb5::kMsgAsPkReq: {
      auto req = krb5::AsPkRequest5::FromTlv(tlv.value());
      if (!req.ok()) {
        return false;
      }
      *out = req.value().client;
      return true;
    }
    case krb5::kMsgTgsReq: {
      auto req = krb5::TgsRequest5::FromTlv(tlv.value());
      if (!req.ok()) {
        return false;
      }
      *out = req.value().service;
      return true;
    }
    default:
      return false;
  }
}

kerb::Bytes ClusterNode::ReferralReply(const krb4::Principal& p) {
  ReferralBody body;
  body.view = *view_;
  const RingMember* owner = ring_.OwnerOfPrincipal(p);
  body.owner_node_id = owner != nullptr ? owner->node_id : 0;
  ++referrals_sent_;
  kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterReferral, node_id_,
                body.owner_node_id);
  const kerb::Bytes encoded = EncodeReferralBody(body);
  if (config_.protocol == Protocol::kV4) {
    return krb4::Frame4(krb4::MsgType::kClusterReferral, encoded);
  }
  kenc::TlvMessage msg(krb5::kMsgClusterReferral);
  msg.SetBytes(krb5::tag::kClusterBody, encoded);
  return msg.Encode();
}

kerb::Result<kerb::Bytes> ClusterNode::HandleKdc(bool tgs, const ksim::Message& msg) {
  if (crashed_) {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster node down");
  }
  krb4::Principal routing;
  if (view_.has_value() && !ring_.empty() &&
      ExtractRoutingPrincipal(tgs, msg.payload, &routing) && !OwnedOrInfra(routing)) {
    // Not ours: teach the client the current view. Undecodable requests
    // fall through to the core, which rejects them itself — routing must
    // never mask a fail-closed parse.
    return ReferralReply(routing);
  }
  busy_us_ += config_.node_service_time;
  if (config_.advance_clock_per_request) {
    world_->clock().Advance(config_.node_service_time);
  }
  ++requests_served_;
  if (core4_.has_value()) {
    return tgs ? core4_->HandleTgs(msg, ctx_) : core4_->HandleAs(msg, ctx_);
  }
  return tgs ? core5_->HandleTgs(msg, ctx_) : core5_->HandleAs(msg, ctx_);
}

kerb::Result<kerb::Bytes> ClusterNode::HandleCtl(const ksim::Message& msg) {
  if (crashed_) {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster node down");
  }
  auto opened = OpenCtlFrame(ctl_key_, msg.payload);
  if (!opened.ok()) {
    return opened.error();
  }
  switch (opened.value().first) {
    case kCtlPing: {
      auto from = ParsePingBody(opened.value().second);
      if (!from.ok()) {
        return from.error();
      }
      return EncodePongFrame(ctl_key_, {node_id_, view_epoch(), sink_->applied_lsn()});
    }
    case kCtlRing: {
      auto announce = ParseRingBody(opened.value().second);
      if (!announce.ok()) {
        return announce.error();
      }
      if (!view_.has_value() || announce.value().epoch > view_->epoch) {
        AdoptView(announce.value());
      }
      return EncodeRingAckFrame(ctl_key_, {node_id_, view_epoch()});
    }
    case kCtlLoad: {
      auto load = ParseLoadBody(opened.value().second);
      if (!load.ok()) {
        return load.error();
      }
      if (load.value().epoch != view_epoch()) {
        return kerb::MakeError(kerb::ErrorCode::kReplay, "cluster: stale load epoch");
      }
      // Decode everything before applying anything — a load lands whole or
      // not at all. Loads are deliberately NOT journaled locally (that
      // would break the local-LSN == controller-LSN correspondence); a
      // crash loses them, and the always-wholesale rejoin restores them.
      std::vector<std::pair<krb4::Principal, krb4::PrincipalEntry>> pending;
      pending.reserve(load.value().entries.size());
      for (const kerb::Bytes& record : load.value().entries) {
        kenc::Reader r(record);
        auto decoded = krb4::DecodePrincipalEntry(r);
        if (!decoded.ok()) {
          return decoded.error();
        }
        if (!r.AtEnd()) {
          return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                                 "cluster: trailing load-entry bytes");
        }
        pending.push_back(std::move(decoded).value());
      }
      for (const auto& [principal, entry] : pending) {
        db().ApplyEntry(principal, entry);
      }
      kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterOp, pending.size(), 2);
      return EncodeLoadAckFrame(ctl_key_, static_cast<uint32_t>(pending.size()));
    }
    default:
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: unexpected ctl frame");
  }
}

kerb::Status ClusterNode::ApplyRecord(uint8_t op, kerb::BytesView payload) {
  // Exactly one local append per controller record — owned records verbatim,
  // everything else as a cluster-mark placeholder — so the local WAL LSN
  // tracks the controller LSN one-for-one.
  if (op == kstore::kWalOpClusterMark) {
    store_->Append(op, payload);
    return kerb::Status::Ok();
  }
  kenc::Reader r(payload);
  if (op == kstore::kWalOpDelete) {
    auto principal = krb4::Principal::DecodeFrom(r);
    if (!principal.ok()) {
      return principal.error();
    }
    if (!r.AtEnd()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                             "cluster: trailing delete bytes");
    }
    if (!OwnedOrInfra(principal.value())) {
      store_->Append(kstore::kWalOpClusterMark, {});
      return kerb::Status::Ok();
    }
    store_->Append(op, payload);
    db().Remove(principal.value());
    return kerb::Status::Ok();
  }
  if (op != kstore::kWalOpUpsert) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: unknown record op");
  }
  auto decoded = krb4::DecodePrincipalEntry(r);
  if (!decoded.ok()) {
    return decoded.error();
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: trailing upsert bytes");
  }
  if (!OwnedOrInfra(decoded.value().first)) {
    store_->Append(kstore::kWalOpClusterMark, {});
    return kerb::Status::Ok();
  }
  store_->Append(op, payload);
  if (!db().ApplyEntry(decoded.value().first, decoded.value().second)) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "cluster: entry rejected");
  }
  return kerb::Status::Ok();
}

kerb::Status ClusterNode::LoadWholesale(const kstore::Snapshot& snapshot) {
  auto loaded = krb4::LoadSnapshotEntries(db(), snapshot);
  if (!loaded.ok()) {
    return loaded;
  }
  // The received slice becomes the new durable base: the local WAL restarts
  // at the snapshot's (controller) LSN. Compact() cannot do this — it
  // requires snapshot.lsn == the local last_lsn, and a catch-up snapshot is
  // by definition ahead of it.
  store_ = std::make_unique<kstore::KStore>(prng_.Fork(), kstore::KStoreOptions{},
                                            snapshot);
  return kerb::Status::Ok();
}

void ClusterNode::AdoptView(const RingAnnounce& view) {
  view_ = view;
  ring_ = HashRing(view.ring);
  ring_.SetMembers(view.epoch, view.members);
  // Prune what the new view assigns elsewhere. Not journaled: local WAL
  // records stay a 1:1 image of the controller feed, and the rejoin
  // wholesale re-prunes anything a recovery resurrects.
  std::vector<krb4::Principal> drop;
  db().ForEachEntry([&](const krb4::Principal& p, const krb4::PrincipalEntry& entry) {
    (void)entry;
    if (!OwnedOrInfra(p)) {
      drop.push_back(p);
    }
  });
  for (const krb4::Principal& p : drop) {
    db().Remove(p);
  }
}

void ClusterNode::Crash() {
  crashed_ = true;
  store_->Crash();
}

kerb::Status ClusterNode::Recover() {
  auto recovered = store_->Recover();
  if (!recovered.ok()) {
    return recovered.error();
  }
  auto loaded = krb4::LoadSnapshotEntries(db(), recovered.value().base);
  if (!loaded.ok()) {
    return loaded;
  }
  for (const kstore::WalRecord& record : recovered.value().records) {
    if (record.op == kstore::kWalOpClusterMark) {
      continue;
    }
    auto applied = krb4::ApplyStoreRecord(db(), record.op, record.payload);
    if (!applied.ok()) {
      return applied;
    }
  }
  MakeSink(recovered.value().last_lsn);
  // The pre-crash ring view is stale by assumption; drop it and let the
  // controller re-teach on rejoin (pong reports epoch 0, which forces a
  // wholesale re-sync even when membership never changed).
  view_.reset();
  ring_ = HashRing(config_.ring);
  crashed_ = false;
  return kerb::Status::Ok();
}

// --- ClusterController ------------------------------------------------------

ClusterController::ClusterController(ksim::World* world, ClusterConfig config)
    : world_(world),
      config_(std::move(config)),
      prng_(config_.seed),
      ctl_key_(ClusterKey(config_.realm)),
      prop_key_(PropKey(config_.realm)),
      ring_(config_.ring) {}

std::vector<RingMember> ClusterController::UpMembers() const {
  std::vector<RingMember> up;
  up.reserve(nodes_.size());
  for (const NodeState& ns : nodes_) {
    if (ns.up) {
      up.push_back(ns.member);
    }
  }
  return up;
}

bool ClusterController::OwnedByOrInfra(uint64_t node_id, const krb4::Principal& p) const {
  if (IsInfraPrincipal(p)) {
    return true;
  }
  const RingMember* owner = ring_.OwnerOfPrincipal(p);
  return owner != nullptr && owner->node_id == node_id;
}

void ClusterController::Bootstrap(const std::vector<RingMember>& members) {
  epoch_ = 1;
  ring_ = HashRing(config_.ring);
  ring_.SetMembers(epoch_, members);
  store_ = std::make_unique<kstore::KStore>(prng_.Fork(), kstore::KStoreOptions{},
                                            krb4::SnapshotDatabase(logical_, 0));
  logical_.AttachJournal(store_.get());
  nodes_.reserve(members.size());
  // View() derives its member list from nodes_, which is still empty here —
  // splice in the bootstrap membership explicitly.
  RingAnnounce view = View();
  view.members = members;
  for (const RingMember& member : members) {
    krb4::KdcDatabase slice;
    slice.Reserve(logical_.size() / std::max<size_t>(members.size(), 1) +
                  logical_.size() / (4 * std::max<size_t>(members.size(), 1)) + 16);
    logical_.ForEachEntry(
        [&](const krb4::Principal& p, const krb4::PrincipalEntry& entry) {
          if (OwnedByOrInfra(member.node_id, p)) {
            slice.ApplyEntry(p, entry);
          }
        });
    NodeState ns;
    ns.member = member;
    ns.node = std::make_unique<ClusterNode>(world_, config_, member.node_id, member.host,
                                            std::move(slice), 0);
    ns.node->Bind();
    // Bootstrap is setup, not protocol: install the view directly instead
    // of racing the first ring frame against a chaos plan's link faults.
    ns.node->AdoptView(view);
    ns.synced_epoch = epoch_;
    ns.acked_lsn = store_->last_lsn();
    nodes_.push_back(std::move(ns));
  }
}

RingAnnounce ClusterController::View() const {
  RingAnnounce view;
  view.epoch = epoch_;
  view.ring = config_.ring;
  view.as_port = config_.as_port;
  view.tgs_port = config_.tgs_port;
  view.ctl_port = config_.ctl_port;
  view.members = UpMembers();
  return view;
}

void ClusterController::AppendEpochMark() {
  kenc::Writer w;
  w.PutU32(epoch_);
  store_->Append(kstore::kWalOpClusterMark, w.Peek());
}

bool ClusterController::Ping(NodeState& ns, PongInfo* pong) {
  const ksim::NetAddress src{config_.controller_host, config_.ctl_port};
  const ksim::NetAddress dst{ns.member.host, config_.ctl_port};
  // Two attempts so one dropped datagram on a faulty link is not read as a
  // node loss; a real outage fails both deterministically.
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto reply = world_->network().Call(src, dst, EncodePingFrame(ctl_key_, 0));
    if (!reply.ok()) {
      ++stats_.probe_failures;
      continue;
    }
    auto opened = OpenCtlFrame(ctl_key_, reply.value());
    if (!opened.ok() || opened.value().first != kCtlPong) {
      ++stats_.probe_failures;
      continue;
    }
    auto info = ParsePongBody(opened.value().second);
    if (!info.ok() || info.value().node_id != ns.member.node_id) {
      ++stats_.probe_failures;
      continue;
    }
    *pong = info.value();
    return true;
  }
  return false;
}

bool ClusterController::ShipRing(NodeState& ns) {
  const ksim::NetAddress src{config_.controller_host, config_.ctl_port};
  const ksim::NetAddress dst{ns.member.host, config_.ctl_port};
  auto reply = world_->network().Call(src, dst, EncodeRingFrame(ctl_key_, View()));
  if (!reply.ok()) {
    return false;
  }
  auto opened = OpenCtlFrame(ctl_key_, reply.value());
  if (!opened.ok() || opened.value().first != kCtlRingAck) {
    return false;
  }
  auto ack = ParseRingAckBody(opened.value().second);
  if (!ack.ok() || ack.value().node_id != ns.member.node_id ||
      ack.value().epoch != epoch_) {
    return false;
  }
  ns.synced_epoch = epoch_;
  return true;
}

uint64_t ClusterController::ShipGained(NodeState& ns, const HashRing& prev) {
  std::vector<kerb::Bytes> gained;
  logical_.ForEachEntry([&](const krb4::Principal& p, const krb4::PrincipalEntry& entry) {
    if (IsInfraPrincipal(p)) {
      return;  // replicated everywhere already
    }
    const uint64_t hash = krb4::PrincipalStore::Hash(p);
    const RingMember* now = ring_.OwnerOf(hash);
    if (now == nullptr || now->node_id != ns.member.node_id) {
      return;
    }
    const RingMember* before = prev.OwnerOf(hash);
    if (before != nullptr && before->node_id == ns.member.node_id) {
      return;
    }
    gained.push_back(krb4::EncodePrincipalEntry(p, entry));
  });
  const ksim::NetAddress src{config_.controller_host, config_.ctl_port};
  const ksim::NetAddress dst{ns.member.host, config_.ctl_port};
  uint64_t shipped = 0;
  for (size_t start = 0; start < gained.size(); start += config_.load_chunk_entries) {
    LoadFrame frame;
    frame.epoch = epoch_;
    const size_t end = std::min(gained.size(),
                                start + static_cast<size_t>(config_.load_chunk_entries));
    frame.entries.assign(gained.begin() + static_cast<ptrdiff_t>(start),
                         gained.begin() + static_cast<ptrdiff_t>(end));
    auto reply = world_->network().Call(src, dst, EncodeLoadFrame(ctl_key_, frame));
    bool ok = reply.ok();
    if (ok) {
      auto opened = OpenCtlFrame(ctl_key_, reply.value());
      ok = opened.ok() && opened.value().first == kCtlLoadAck;
      if (ok) {
        auto count = ParseLoadAckBody(opened.value().second);
        ok = count.ok() && count.value() == frame.entries.size();
      }
    }
    if (!ok) {
      // A lost or rejected load leaves the node short of its new range —
      // flag it for the wholesale hammer rather than guessing what landed.
      ns.needs_wholesale = true;
      break;
    }
    shipped += frame.entries.size();
  }
  stats_.entries_shipped += shipped;
  return shipped;
}

kstore::Snapshot ClusterController::SliceSnapshot(uint64_t node_id, uint64_t lsn) const {
  std::vector<std::pair<krb4::Principal, kerb::Bytes>> entries;
  logical_.ForEachEntry([&](const krb4::Principal& p, const krb4::PrincipalEntry& entry) {
    if (OwnedByOrInfra(node_id, p)) {
      entries.emplace_back(p, krb4::EncodePrincipalEntry(p, entry));
    }
  });
  // Canonical order, matching SnapshotDatabase, so slice equivalence can be
  // checked bytewise.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  kstore::Snapshot snapshot;
  snapshot.lsn = lsn;
  snapshot.entries.reserve(entries.size());
  for (auto& [principal, record] : entries) {
    (void)principal;
    snapshot.entries.push_back(std::move(record));
  }
  return snapshot;
}

bool ClusterController::SyncNode(NodeState& ns) {
  const ksim::NetAddress src{config_.controller_host, config_.prop_port};
  const ksim::NetAddress dst{ns.member.host, config_.prop_port};
  while (ns.needs_wholesale || ns.acked_lsn < store_->last_lsn()) {
    kerb::Bytes frame;
    uint64_t frame_to = 0;
    std::vector<kstore::WalRecord> delta;
    if (!ns.needs_wholesale && store_->Delta(ns.acked_lsn, &delta)) {
      if (delta.empty()) {
        return true;
      }
      if (delta.size() > config_.delta_chunk_records) {
        delta.resize(config_.delta_chunk_records);
      }
      frame_to = delta.back().lsn;
      frame = kstore::EncodeDeltaFrame(prop_key_, ns.acked_lsn, frame_to, delta);
    } else {
      // Wholesale: the node's current ring slice at the controller's LSN.
      // A mark keeps last_lsn strictly above the node's applied LSN so the
      // sink's rollback stale-guard cannot reject the catch-up.
      if (store_->last_lsn() <= ns.acked_lsn) {
        AppendEpochMark();
      }
      frame_to = store_->last_lsn();
      frame = kstore::EncodeWholesaleFrame(
          prop_key_, kstore::EncodeSnapshot(SliceSnapshot(ns.member.node_id, frame_to)));
      ++stats_.wholesale_transfers;
    }
    auto reply = world_->network().Call(src, dst, frame);
    if (!reply.ok()) {
      return false;
    }
    auto ack = kstore::ParseAckFrame(prop_key_, reply.value());
    if (!ack.ok() || ack.value() < frame_to || ack.value() <= ns.acked_lsn) {
      return false;  // no progress — bail rather than loop
    }
    ns.acked_lsn = ack.value();
    ns.needs_wholesale = false;
  }
  return true;
}

void ClusterController::Rebalance(const HashRing& prev) {
  ++stats_.rebalances;
  // 1. Flush the delta tail to healthy nodes so the additive loads below
  //    are computed against fully-applied data.
  for (NodeState& ns : nodes_) {
    if (ns.up && !ns.needs_wholesale) {
      SyncNode(ns);
    }
  }
  // 2. Teach every up node the new ring (they prune on adopt).
  for (NodeState& ns : nodes_) {
    if (ns.up) {
      ShipRing(ns);
    }
  }
  // 3. Ship each gaining node the ranges that moved to it — only the
  //    affected hash ranges, never the whole database.
  uint64_t shipped = 0;
  for (NodeState& ns : nodes_) {
    if (ns.up && !ns.needs_wholesale && ns.synced_epoch == epoch_) {
      shipped += ShipGained(ns, prev);
    }
  }
  // 4. Wholesale catch-up for rejoiners and anyone a load failed on.
  for (NodeState& ns : nodes_) {
    if (ns.up && ns.needs_wholesale && ns.synced_epoch == epoch_) {
      SyncNode(ns);
    }
  }
  kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterRebalance, epoch_, shipped);
}

bool ClusterController::ProbeAll() {
  bool changed = false;
  for (NodeState& ns : nodes_) {
    PongInfo pong;
    const bool alive = Ping(ns, &pong);
    if (ns.up && !alive) {
      ns.up = false;
      ++stats_.nodes_lost;
      ++epoch_;
      const HashRing prev = ring_;
      ring_.SetMembers(epoch_, UpMembers());
      AppendEpochMark();
      kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterNodeDown, ns.member.node_id,
                    epoch_);
      Rebalance(prev);
      changed = true;
    } else if (!ns.up && alive) {
      ns.up = true;
      ++stats_.nodes_rejoined;
      ++epoch_;
      const HashRing prev = ring_;
      ring_.SetMembers(epoch_, UpMembers());
      AppendEpochMark();
      ns.acked_lsn = pong.applied_lsn;
      ns.synced_epoch = 0;
      ns.needs_wholesale = true;
      kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterNodeUp, ns.member.node_id,
                    epoch_);
      Rebalance(prev);
      changed = true;
    } else if (ns.up && alive && pong.epoch != epoch_) {
      // Up but amnesiac: the node recovered in place (crash + restart
      // between probes) and dropped its view. Membership is unchanged — no
      // epoch bump — but the node needs the ring back and a wholesale
      // re-sync (un-journaled range loads may be lost).
      ns.acked_lsn = pong.applied_lsn;
      ns.needs_wholesale = true;
      if (ShipRing(ns)) {
        SyncNode(ns);
      }
    }
  }
  return changed;
}

void ClusterController::PropagateAll() {
  for (NodeState& ns : nodes_) {
    if (ns.up) {
      SyncNode(ns);
    }
  }
}

void ClusterController::Maintain() {
  for (NodeState& ns : nodes_) {
    if (!ns.up) {
      continue;
    }
    if (ns.synced_epoch != epoch_) {
      if (!ShipRing(ns)) {
        continue;
      }
      // The node missed a rebalance's loads or prunes; wholesale covers
      // whatever state the partial update left behind.
      ns.needs_wholesale = true;
    }
    if (ns.needs_wholesale || ns.acked_lsn < store_->last_lsn()) {
      SyncNode(ns);
    }
  }
}

bool ClusterController::NodeSliceConsistent(uint64_t node_id) const {
  const NodeState* found = nullptr;
  for (const NodeState& ns : nodes_) {
    if (ns.member.node_id == node_id) {
      found = &ns;
      break;
    }
  }
  if (found == nullptr) {
    return false;
  }
  std::vector<kerb::Bytes> want;
  logical_.ForEachEntry([&](const krb4::Principal& p, const krb4::PrincipalEntry& entry) {
    if (OwnedByOrInfra(node_id, p)) {
      want.push_back(krb4::EncodePrincipalEntry(p, entry));
    }
  });
  std::vector<kerb::Bytes> have;
  found->node->database().ForEachEntry(
      [&](const krb4::Principal& p, const krb4::PrincipalEntry& entry) {
        have.push_back(krb4::EncodePrincipalEntry(p, entry));
      });
  std::sort(want.begin(), want.end());
  std::sort(have.begin(), have.end());
  return want == have;
}

bool ClusterController::AllSlicesConsistent() const {
  for (const NodeState& ns : nodes_) {
    if (ns.up && !NodeSliceConsistent(ns.member.node_id)) {
      return false;
    }
  }
  return true;
}

ClusterNode* ClusterController::node(uint64_t node_id) {
  for (NodeState& ns : nodes_) {
    if (ns.member.node_id == node_id) {
      return ns.node.get();
    }
  }
  return nullptr;
}

bool ClusterController::node_up(uint64_t node_id) const {
  for (const NodeState& ns : nodes_) {
    if (ns.member.node_id == node_id) {
      return ns.up;
    }
  }
  return false;
}

std::vector<uint64_t> ClusterController::node_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const NodeState& ns : nodes_) {
    ids.push_back(ns.member.node_id);
  }
  return ids;
}

}  // namespace kcluster
