#include "src/cluster/router.h"

#include "src/obs/kobs.h"

namespace kcluster {

void ClientRouter::AdoptView(const RingAnnounce& view) {
  view_ = view;
  ring_ = HashRing(view.ring);
  ring_.SetMembers(view.epoch, view.members);
}

void ClientRouter::Invalidate() {
  view_.reset();
  ring_ = HashRing();
}

std::vector<ksim::NetAddress> ClientRouter::Endpoints(const krb4::Principal& principal,
                                                      bool tgs) {
  if (!view_.has_value() || ring_.empty()) {
    ++stats_.fallback_routes;
    return {};
  }
  const RingMember* owner = ring_.OwnerOfPrincipal(principal);
  const uint16_t port = tgs ? view_->tgs_port : view_->as_port;
  std::vector<ksim::NetAddress> endpoints;
  endpoints.reserve(view_->members.size());
  endpoints.push_back(ksim::NetAddress{owner->host, port});
  for (const RingMember& m : view_->members) {
    if (m.node_id != owner->node_id) {
      endpoints.push_back(ksim::NetAddress{m.host, port});
    }
  }
  ++stats_.direct_routes;
  kobs::EmitNow(kobs::kSrcCluster, kobs::Ev::kClusterRoute, owner->node_id, tgs ? 1 : 0);
  return endpoints;
}

bool ClientRouter::ApplyReferral(kerb::BytesView body) {
  auto referral = DecodeReferralBody(body);
  if (!referral.ok()) {
    ++stats_.referrals_rejected;
    return false;
  }
  const RingAnnounce& view = referral.value().view;
  // Newer epoch: unconditionally adopt. Same epoch: adopt only when it
  // actually changes something we can act on — with a deterministic ring a
  // same-epoch referral naming the owner we already route to means the two
  // views agree and a retry would loop.
  if (view_.has_value() && view.epoch <= view_->epoch) {
    const RingMember* current = nullptr;
    if (!ring_.empty()) {
      current = ring_.FindMember(referral.value().owner_node_id);
    }
    if (view.epoch < view_->epoch || current != nullptr) {
      ++stats_.referrals_rejected;
      return false;
    }
  }
  AdoptView(view);
  ++stats_.referrals_followed;
  return true;
}

}  // namespace kcluster
