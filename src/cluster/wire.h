// Wire formats for the cluster layer: referral bodies (plaintext, embedded
// in protocol frames) and the 'KCL1' control-plane frames (DES CBC-MAC'd
// under a cluster key the nodes share).
//
// Two distinct trust treatments, deliberately:
//
//   * Referrals are PLAINTEXT. A referral only tells a client "ask that
//     node instead" — the credential path stays end-to-end keyed (the AS
//     reply is sealed under the client key, tickets under service keys), so
//     the worst a forged referral achieves is sending the client to a node
//     that cannot answer, which is indistinguishable from ordinary routing
//     staleness and bounded by the client's referral-hop cap. Authenticating
//     referrals would require clients to share a key with the cluster
//     before authenticating — exactly the circularity Kerberos exists to
//     avoid.
//
//   * Control frames (membership pings, ring updates, range loads) move
//     database state and membership decisions between nodes, so they get
//     the same treatment as kprop (src/store/kprop.h): an 8-byte DES
//     CBC-MAC (zero IV) trailer under a key derived from the realm. A
//     network adversary cannot forge a ring view or inject principals.
//
// Frames, big-endian, MAC over everything before the trailer:
//   ping     := u32 'KCL1' | u8 1 | u64 from_node | mac8
//   pong     := u32 'KCL1' | u8 2 | u64 node_id | u32 epoch | u64 lsn | mac8
//   ring     := u32 'KCL1' | u8 3 | announce | mac8
//   ring-ack := u32 'KCL1' | u8 4 | u64 node_id | u32 epoch | mac8
//   load     := u32 'KCL1' | u8 5 | u32 epoch | u32 count |
//               count * lp(entry_record) | mac8
//   load-ack := u32 'KCL1' | u8 6 | u32 count_applied | mac8
//   announce := u32 epoch | u64 seed | u32 vnodes | u16 as_port |
//               u16 tgs_port | u16 ctl_port | u32 n | n * (u64 id | u32 host)
//   referral := announce | u64 owner_node_id              (no MAC; see above)

#ifndef SRC_CLUSTER_WIRE_H_
#define SRC_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/ring.h"
#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"

namespace kcluster {

constexpr uint32_t kClusterMagic = 0x4b434c31;  // "KCL1"
constexpr uint16_t kClusterCtlPort = 751;       // control plane, per node host
constexpr uint8_t kCtlPing = 1;
constexpr uint8_t kCtlPong = 2;
constexpr uint8_t kCtlRing = 3;
constexpr uint8_t kCtlRingAck = 4;
constexpr uint8_t kCtlLoad = 5;
constexpr uint8_t kCtlLoadAck = 6;

// Decoder ceilings — fail closed before allocating.
constexpr uint32_t kMaxClusterMembers = 256;
constexpr uint32_t kMaxLoadEntries = 1u << 16;

// The control-plane key every node derives from the realm name, the same
// convention kprop uses for the propagation key.
kcrypto::DesKey ClusterKey(const std::string& realm);

// A complete routing view: ring parameters plus the member list at one
// epoch. This is what ring-update frames carry and what referrals teach
// clients, so client and node ownership math agree bit-for-bit.
struct RingAnnounce {
  uint32_t epoch = 0;
  RingConfig ring;
  uint16_t as_port = 0;
  uint16_t tgs_port = 0;
  uint16_t ctl_port = kClusterCtlPort;
  std::vector<RingMember> members;
};

kerb::Bytes EncodeRingAnnounce(const RingAnnounce& announce);
kerb::Result<RingAnnounce> DecodeRingAnnounce(kerb::BytesView data);

// The body of a kClusterReferral (V4) frame / kMsgClusterReferral (V5)
// kClusterBody field: the referring node's current view plus who it
// believes owns the requested principal.
struct ReferralBody {
  RingAnnounce view;
  uint64_t owner_node_id = 0;
};

kerb::Bytes EncodeReferralBody(const ReferralBody& body);
kerb::Result<ReferralBody> DecodeReferralBody(kerb::BytesView data);

// --- Control frames (MAC'd) -------------------------------------------------

struct PongInfo {
  uint64_t node_id = 0;
  uint32_t epoch = 0;
  uint64_t applied_lsn = 0;
};

struct RingAckInfo {
  uint64_t node_id = 0;
  uint32_t epoch = 0;
};

// One additive range-load record: an encoded principal entry
// (krb4::EncodePrincipalEntry bytes).
struct LoadFrame {
  uint32_t epoch = 0;
  std::vector<kerb::Bytes> entries;
};

kerb::Bytes EncodePingFrame(const kcrypto::DesKey& key, uint64_t from_node);
kerb::Bytes EncodePongFrame(const kcrypto::DesKey& key, const PongInfo& info);
kerb::Bytes EncodeRingFrame(const kcrypto::DesKey& key, const RingAnnounce& announce);
kerb::Bytes EncodeRingAckFrame(const kcrypto::DesKey& key, const RingAckInfo& info);
kerb::Bytes EncodeLoadFrame(const kcrypto::DesKey& key, const LoadFrame& load);
kerb::Bytes EncodeLoadAckFrame(const kcrypto::DesKey& key, uint32_t count_applied);

// Verifies the MAC trailer and the magic, and returns (type, body-after-
// header). kIntegrity on MAC mismatch, kBadFormat on framing damage — every
// malformed control frame is a rejection, never a partial parse.
kerb::Result<std::pair<uint8_t, kerb::Bytes>> OpenCtlFrame(const kcrypto::DesKey& key,
                                                           kerb::BytesView frame);

// Body parsers for the frame types with payloads (input: the bytes
// OpenCtlFrame returned for that type).
kerb::Result<uint64_t> ParsePingBody(kerb::BytesView body);
kerb::Result<PongInfo> ParsePongBody(kerb::BytesView body);
kerb::Result<RingAnnounce> ParseRingBody(kerb::BytesView body);
kerb::Result<RingAckInfo> ParseRingAckBody(kerb::BytesView body);
kerb::Result<LoadFrame> ParseLoadBody(kerb::BytesView body);
kerb::Result<uint32_t> ParseLoadAckBody(kerb::BytesView body);

}  // namespace kcluster

#endif  // SRC_CLUSTER_WIRE_H_
