// Client-side cluster routing: the cached ring view and the referral
// learning loop.
//
// A cold client knows only a bootstrap endpoint list (any subset of the
// cluster). Its first request lands on an arbitrary node; if that node does
// not own the principal it answers with a referral carrying its current
// ring view, the router adopts the view, and the retry goes straight to the
// owner. From then on the client hash-routes first — the referral rate
// decays to the rebalance rate, which is what the load harness reports as
// "cold referral rate".
//
// Invalidation is epoch-driven: a referral is applied only when it carries
// a strictly newer epoch than the cached view, or corrects the owner within
// the same epoch (the cached view itself was learned mid-rebalance). A
// referral that does neither is rejected and the exchange fails closed —
// two nodes pointing at each other with the same stale epoch must not spin
// the client.

#ifndef SRC_CLUSTER_ROUTER_H_
#define SRC_CLUSTER_ROUTER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/cluster/ring.h"
#include "src/cluster/wire.h"
#include "src/krb4/client.h"
#include "src/krb5/client.h"
#include "src/sim/network.h"

namespace kcluster {

class ClientRouter {
 public:
  struct Stats {
    uint64_t direct_routes = 0;     // routed via the cached ring
    uint64_t fallback_routes = 0;   // cold — no view yet, bootstrap list used
    uint64_t referrals_followed = 0;
    uint64_t referrals_rejected = 0;
  };

  ClientRouter() = default;

  // Installs the routing hooks on a client. The router must outlive the
  // client (the hooks capture `this`).
  void Attach(krb4::Client4& client) {
    client.SetClusterRouting({MakeEndpointsFn(), MakeReferralFn()});
  }
  void Attach(krb5::Client5& client) {
    client.SetClusterRouting({MakeEndpointsFn(), MakeReferralFn()});
  }

  // Warm-starts the view (e.g. the harness hands freshly-created clients
  // the bootstrap ring so only deliberately-cold clients pay referrals).
  void AdoptView(const RingAnnounce& view);

  // Endpoint list for a request routed by `principal`: the owner first,
  // then the remaining members in ring order as failover — a dead owner
  // then costs one transport failure before a surviving node's referral
  // teaches the post-rebalance view. Empty when no view is cached (the
  // client falls back to its configured endpoints).
  std::vector<ksim::NetAddress> Endpoints(const krb4::Principal& principal, bool tgs);

  // Applies one referral body. True when the view changed (retry will
  // re-route); false when the referral is malformed or not newer.
  bool ApplyReferral(kerb::BytesView body);

  // Drops the cached view back to cold.
  void Invalidate();

  bool has_view() const { return view_.has_value(); }
  uint32_t epoch() const { return view_.has_value() ? view_->epoch : 0; }
  const Stats& stats() const { return stats_; }

 private:
  // Both clients' ClusterRouting hooks have identical shapes; these build
  // the shared closures.
  std::function<std::vector<ksim::NetAddress>(const krb4::Principal&, bool)> MakeEndpointsFn() {
    return [this](const krb4::Principal& p, bool tgs) { return Endpoints(p, tgs); };
  }
  std::function<bool(kerb::BytesView)> MakeReferralFn() {
    return [this](kerb::BytesView body) { return ApplyReferral(body); };
  }

  std::optional<RingAnnounce> view_;
  HashRing ring_;
  Stats stats_;
};

}  // namespace kcluster

#endif  // SRC_CLUSTER_ROUTER_H_
