#include "src/cluster/ring.h"

#include <algorithm>

namespace kcluster {

uint64_t HashRing::PointOf(uint64_t seed, uint64_t node_id, uint32_t vnode) {
  // FNV-1a over the (seed, node_id, vnode) tuple, then a SplitMix64-style
  // finalizer: FNV alone is weak in its high bits, and ring ownership
  // compares full 64-bit coordinates.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(seed);
  mix(node_id);
  mix(vnode);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

void HashRing::SetMembers(uint32_t epoch, std::vector<RingMember> members) {
  epoch_ = epoch;
  members_ = std::move(members);
  points_.clear();
  points_.reserve(members_.size() * config_.vnodes);
  for (uint32_t m = 0; m < members_.size(); ++m) {
    for (uint32_t v = 0; v < config_.vnodes; ++v) {
      points_.push_back(Point{PointOf(config_.seed, members_[m].node_id, v), m});
    }
  }
  // Tie-break on member index so coincident points order identically on
  // every host that builds this view.
  std::sort(points_.begin(), points_.end(), [](const Point& x, const Point& y) {
    return x.where != y.where ? x.where < y.where : x.member_index < y.member_index;
  });
}

const RingMember* HashRing::OwnerOf(uint64_t key_hash) const {
  if (points_.empty()) {
    return nullptr;
  }
  auto it = std::lower_bound(points_.begin(), points_.end(), key_hash,
                             [](const Point& p, uint64_t h) { return p.where < h; });
  if (it == points_.end()) {
    it = points_.begin();  // wrap: the ring is circular
  }
  return &members_[it->member_index];
}

const RingMember* HashRing::FindMember(uint64_t node_id) const {
  for (const RingMember& m : members_) {
    if (m.node_id == node_id) {
      return &m;
    }
  }
  return nullptr;
}

}  // namespace kcluster
