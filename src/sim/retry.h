// Resilient request/reply exchange: retries, backoff, and KDC failover.
//
// Real Kerberos rode on UDP; the paper notes clients simply retransmitted
// and slave KDCs answered when the master was down. This module is that
// client-side machinery, made deterministic: timeouts and backoff are
// charged to the virtual SimClock and jitter is drawn from a seeded PRNG,
// so a retry schedule is a pure function of (seed, workload, fault plan).
//
// Classification is centralized in kerb::IsRetryable: transport losses and
// in-flight corruption are retried, authoritative rejections (kAuthFailed,
// kReplay, kExpired, ...) return immediately. The caller supplies a builder
// so it can choose retransmission semantics per exchange: KDC requests
// resend identical bytes (the KDC reply cache absorbs duplicates), while
// AP requests build a fresh authenticator per attempt — the paper's fix for
// retransmission tripping the server's replay cache.

#ifndef SRC_SIM_RETRY_H_
#define SRC_SIM_RETRY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/crypto/prng.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace ksim {

struct RetryPolicy {
  // Total send attempts per exchange, spread round-robin across the
  // endpoint list (primary first, then slaves — failover ordering). The
  // default of 4 with two endpoints means two rounds through both.
  int max_attempts = 4;
  // Virtual time charged to a failed attempt before the client concludes
  // the exchange is lost — the retransmission timeout.
  Duration timeout = kSecond;
  // Exponential backoff between failover rounds: min(base << round, cap),
  // plus deterministic jitter of up to jitter_pct percent.
  Duration backoff_base = 250 * kMillisecond;
  Duration backoff_cap = 8 * kSecond;
  uint32_t jitter_pct = 25;
};

struct RetryStats {
  uint64_t exchanges = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;            // failed retryable attempts that were retried
  uint64_t failovers = 0;          // attempts sent to a non-primary endpoint
  uint64_t successes = 0;
  uint64_t terminal_failures = 0;  // server verdicts, returned immediately
  uint64_t exhausted = 0;          // retry budget spent without success
  Duration virtual_wait = 0;       // total timeout + backoff charged
};

// Drives one logical exchange through retries and failover. One Exchanger
// per client; its PRNG fork supplies jitter without disturbing any other
// random stream.
class Exchanger {
 public:
  // `clock` may be null (no virtual time is charged), but then successive
  // attempts observe the same timestamps — fresh-authenticator retries need
  // the clock to stay distinguishable from replays.
  Exchanger(Network* net, SimClock* clock, kcrypto::Prng jitter_prng, RetryPolicy policy)
      : net_(net), clock_(clock), prng_(jitter_prng), policy_(policy) {}

  // Builds a payload (fresh per attempt — return a stored copy for
  // identical retransmission) and sends it through `endpoints` in failover
  // order until one attempt succeeds, a terminal error is returned, or the
  // attempt budget runs out. A builder failure aborts the exchange.
  using Builder = std::function<kerb::Result<kerb::Bytes>()>;
  kerb::Result<kerb::Bytes> Exchange(const NetAddress& src,
                                     const std::vector<NetAddress>& endpoints,
                                     const Builder& build);

  const RetryStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  void Wait(Duration d);
  Duration BackoffFor(int round);
  Time Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  Network* net_;
  SimClock* clock_;
  kcrypto::Prng prng_;
  RetryPolicy policy_;
  RetryStats stats_;
};

}  // namespace ksim

#endif  // SRC_SIM_RETRY_H_
