// The simulation world: one clock, one network, one seeded random source.
//
// Every experiment and example constructs a World, wires principals into
// it, optionally installs an adversary, and drives simulated time forward.

#ifndef SRC_SIM_WORLD_H_
#define SRC_SIM_WORLD_H_

#include "src/crypto/prng.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace ksim {

class World {
 public:
  explicit World(uint64_t seed) : prng_(seed), network_(&clock_) {}

  SimClock& clock() { return clock_; }
  Network& network() { return network_; }
  kcrypto::Prng& prng() { return prng_; }

  // A fresh skewed clock for a host.
  HostClock MakeHostClock(Duration skew = 0) { return HostClock(&clock_, skew); }

 private:
  SimClock clock_;
  kcrypto::Prng prng_;
  Network network_;
};

}  // namespace ksim

#endif  // SRC_SIM_WORLD_H_
