// The simulation world: one clock, one network, one seeded random source.
//
// Every experiment and example constructs a World, wires principals into
// it, optionally installs an adversary, and drives simulated time forward.
// A World built with a FaultPlan routes all traffic through a FaultyNetwork
// (src/sim/faults.h); the fault stream forks off the world seed, so one
// seed fixes both the workload and the fault schedule.

#ifndef SRC_SIM_WORLD_H_
#define SRC_SIM_WORLD_H_

#include <memory>

#include "src/crypto/prng.h"
#include "src/obs/kobs.h"
#include "src/sim/clock.h"
#include "src/sim/faults.h"
#include "src/sim/network.h"

namespace ksim {

class World {
 public:
  explicit World(uint64_t seed)
      : prng_(seed), network_(std::make_unique<Network>(&clock_)) {
    kobs::BindClock(&clock_);
  }

  World(uint64_t seed, const FaultPlan& plan) : prng_(seed) {
    auto faulty = std::make_unique<FaultyNetwork>(&clock_, prng_.Fork(), plan);
    faults_ = faulty.get();
    network_ = std::move(faulty);
    kobs::BindClock(&clock_);
  }

  // Release the clock from any active trace so clockless emit sites can
  // never read a destroyed SimClock.
  ~World() { kobs::UnbindClock(&clock_); }

  SimClock& clock() { return clock_; }
  Network& network() { return *network_; }
  kcrypto::Prng& prng() { return prng_; }

  // Non-null only for fault-injecting worlds.
  FaultyNetwork* faults() { return faults_; }

  // A fresh skewed clock for a host.
  HostClock MakeHostClock(Duration skew = 0) { return HostClock(&clock_, skew); }

 private:
  SimClock clock_;
  kcrypto::Prng prng_;
  std::unique_ptr<Network> network_;
  FaultyNetwork* faults_ = nullptr;
};

}  // namespace ksim

#endif  // SRC_SIM_WORLD_H_
