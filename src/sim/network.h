// The simulated network — the paper's threat model made executable.
//
// "For the widest utility, the network must be considered as completely
// open. Specifically, the protocols should be secure even if the network is
// under the complete control of an adversary."
//
// Delivery is synchronous request/reply (the shape of every Kerberos
// exchange) plus one-way datagrams for session traffic. An installed
// Adversary sees and may rewrite, redirect, drop, fabricate, or record
// every message. Source addresses are claims, not facts: any caller may
// supply any source address, which is precisely why the paper concludes
// that binding tickets to network addresses buys nothing (experiment E12).

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/sim/clock.h"

namespace ksim {

// A host address. Kerberos V4 binds tickets to these; the simulator treats
// them as trivially spoofable, as [Morr85] showed real IP addresses to be.
struct NetAddress {
  uint32_t host = 0;
  uint16_t port = 0;

  bool operator==(const NetAddress& other) const {
    return host == other.host && port == other.port;
  }
  bool operator<(const NetAddress& other) const {
    return host != other.host ? host < other.host : port < other.port;
  }
  std::string ToString() const;
};

// Hash for unordered containers keyed by address: host and port pack into
// one word, mixed by a single 64-bit multiply (Fibonacci hashing).
struct NetAddressHash {
  size_t operator()(const NetAddress& addr) const {
    uint64_t packed = (static_cast<uint64_t>(addr.host) << 16) | addr.port;
    return static_cast<size_t>((packed + 1) * 0x9e3779b97f4a7c15ull >> 16);
  }
};

struct Message {
  NetAddress src;  // claimed source — unauthenticated
  NetAddress dst;
  kerb::Bytes payload;
  Time sent_at = 0;
  uint64_t id = 0;  // unique per message, for adversary bookkeeping
};

// Full control of the network. Default implementations pass everything
// through untouched; attacks override what they need.
class Adversary {
 public:
  virtual ~Adversary() = default;

  // Called with every request before delivery. The adversary may mutate the
  // message in place (payload, destination, claimed source). Returning a
  // fabricated reply suppresses delivery entirely; setting `drop` loses the
  // message.
  struct Decision {
    bool drop = false;
    std::optional<kerb::Bytes> fabricated_reply;
  };
  virtual Decision OnRequest(Message& request) {
    (void)request;
    return {};
  }

  // Called with every reply before it returns to the caller; may mutate it.
  // Returning true loses the reply in transit: the server has already acted
  // on the request, but the caller sees a transport failure — the
  // "legitimate retransmission" setup of the paper's UDP discussion.
  virtual bool OnReply(const Message& request, kerb::Bytes& reply) {
    (void)request;
    (void)reply;
    return false;
  }

  // Called with every one-way datagram; return true to drop it.
  virtual bool OnDatagram(Message& datagram) {
    (void)datagram;
    return false;
  }
};

// Records all traffic it sees — the "passive wiretapper" building the
// network equivalent of /etc/passwd. Composes under any active adversary
// via Network::SetAdversary chaining or direct use.
class RecordingAdversary : public Adversary {
 public:
  struct Exchange {
    Message request;
    kerb::Bytes reply;
    bool has_reply = false;
  };

  Decision OnRequest(Message& request) override;
  bool OnReply(const Message& request, kerb::Bytes& reply) override;
  bool OnDatagram(Message& datagram) override;

  const std::vector<Exchange>& exchanges() const { return exchanges_; }
  const std::vector<Message>& datagrams() const { return datagrams_; }
  void Clear();

 private:
  std::vector<Exchange> exchanges_;
  std::vector<Message> datagrams_;
};

// Chains adversaries: each sees the message after its predecessors'
// mutations; the first drop or fabrication wins. Lets an active attack
// record its own traffic (recorder first, manipulator second) without
// swapping adversaries mid-scenario.
class CompositeAdversary : public Adversary {
 public:
  void Add(Adversary* adversary) { chain_.push_back(adversary); }

  Decision OnRequest(Message& request) override;
  bool OnReply(const Message& request, kerb::Bytes& reply) override;
  bool OnDatagram(Message& datagram) override;

 private:
  std::vector<Adversary*> chain_;
};

class Network {
 public:
  using Handler = std::function<kerb::Result<kerb::Bytes>(const Message&)>;
  using DatagramHandler = std::function<void(const Message&)>;

  explicit Network(SimClock* clock) : clock_(clock) {}
  virtual ~Network() = default;

  // Binds a request/reply service at `addr`. Rebinding replaces the handler
  // (used by attacks that impersonate a service after taking its address).
  void Bind(const NetAddress& addr, Handler handler);
  void BindDatagram(const NetAddress& addr, DatagramHandler handler);
  void Unbind(const NetAddress& addr);

  // Sends a request claiming source `src` and waits for the reply. The
  // claimed source is not verified — spoofing is a one-line operation.
  // Virtual so FaultyNetwork (src/sim/faults.h) can overlay unreliable
  // delivery on top of this adversarial base layer.
  virtual kerb::Result<kerb::Bytes> Call(const NetAddress& src, const NetAddress& dst,
                                         kerb::BytesView payload);

  // One-way datagram.
  virtual kerb::Status SendDatagram(const NetAddress& src, const NetAddress& dst,
                                    kerb::BytesView payload);

  // Installs the adversary (nullptr to remove). Only one at a time; compose
  // via delegation if an attack also wants recording.
  void SetAdversary(Adversary* adversary) { adversary_ = adversary; }

  uint64_t messages_sent() const { return next_id_; }

 private:
  SimClock* clock_;
  std::unordered_map<NetAddress, Handler, NetAddressHash> handlers_;
  std::unordered_map<NetAddress, DatagramHandler, NetAddressHash> datagram_handlers_;
  Adversary* adversary_ = nullptr;
  uint64_t next_id_ = 0;
};

}  // namespace ksim

#endif  // SRC_SIM_NETWORK_H_
