#include "src/sim/timeservice.h"

#include "src/crypto/modes.h"
#include "src/encoding/io.h"

namespace ksim {

UnauthTimeService::UnauthTimeService(Network* net, const NetAddress& addr, const HostClock* clock)
    : clock_(clock) {
  net->Bind(addr, [this](const Message&) -> kerb::Result<kerb::Bytes> {
    kenc::Writer w;
    w.PutU64(static_cast<uint64_t>(clock_->Now()));
    return w.Take();
  });
}

const NetAddress& UnauthTimeService::DefaultAddress() {
  static const NetAddress addr{0x0a000037, 37};  // 10.0.0.55:37, the TIME port
  return addr;
}

kerb::Result<Time> UnauthTimeService::Query(Network* net, const NetAddress& client_addr,
                                            const NetAddress& service_addr) {
  auto reply = net->Call(client_addr, service_addr, kerb::Bytes{});
  if (!reply.ok()) {
    return reply.error();
  }
  kenc::Reader r(reply.value());
  auto t = r.GetU64();
  if (!t.ok()) {
    return t.error();
  }
  return static_cast<Time>(t.value());
}

AuthTimeService::AuthTimeService(Network* net, const NetAddress& addr, const HostClock* clock,
                                 const kcrypto::DesKey& key)
    : clock_(clock), key_(key) {
  net->Bind(addr, [this](const Message& msg) -> kerb::Result<kerb::Bytes> {
    kenc::Reader req(msg.payload);
    auto nonce = req.GetU64();
    if (!nonce.ok()) {
      return nonce.error();
    }
    kenc::Writer body;
    body.PutU64(nonce.value());
    body.PutU64(static_cast<uint64_t>(clock_->Now()));
    kcrypto::DesBlock mac = kcrypto::CbcMac(key_, kcrypto::kZeroIv, body.Peek());
    kenc::Writer w;
    w.PutBytes(body.Peek());
    w.PutBytes(kerb::BytesView(mac.data(), mac.size()));
    return w.Take();
  });
}

kerb::Result<Time> AuthTimeService::Query(Network* net, const NetAddress& client_addr,
                                          const NetAddress& service_addr,
                                          const kcrypto::DesKey& key, uint64_t nonce) {
  kenc::Writer req;
  req.PutU64(nonce);
  auto reply = net->Call(client_addr, service_addr, req.Peek());
  if (!reply.ok()) {
    return reply.error();
  }
  kenc::Reader r(reply.value());
  auto echoed = r.GetU64();
  auto time = r.GetU64();
  auto mac = r.GetBytes(8);
  if (!echoed.ok() || !time.ok() || !mac.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "malformed time reply");
  }
  if (echoed.value() != nonce) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "time reply nonce mismatch");
  }
  kenc::Writer body;
  body.PutU64(echoed.value());
  body.PutU64(time.value());
  kcrypto::DesBlock expected = kcrypto::CbcMac(key, kcrypto::kZeroIv, body.Peek());
  if (!kerb::ConstantTimeEqual(mac.value(), kerb::BytesView(expected.data(), expected.size()))) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "time reply MAC invalid");
  }
  return static_cast<Time>(time.value());
}

}  // namespace ksim
