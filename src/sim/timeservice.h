// Time services, unauthenticated and authenticated.
//
// "Since some time synchronization protocols are unauthenticated ... such
// attacks are not difficult." The paper's §Secure Time Services argues that
// building an authentication system atop an unauthenticated time service
// inverts the trust hierarchy: "the Kerberos protocols involve mutual trust
// among four parties: the client, server, authentication server and time
// server."
//
// UnauthTimeService mirrors RFC 868-style time: a bare timestamp anyone can
// fabricate (experiment E3 fabricates it). AuthTimeService seals the reply
// — (nonce, time) under a DES-CBC MAC with a key shared with the client —
// closing that channel, at the price the paper notes: the server must hold
// a key, which reopens the key-storage question.

#ifndef SRC_SIM_TIMESERVICE_H_
#define SRC_SIM_TIMESERVICE_H_

#include "src/crypto/des.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace ksim {

// RFC 868 flavor: request is empty, reply is the server's time, unsigned.
class UnauthTimeService {
 public:
  UnauthTimeService(Network* net, const NetAddress& addr, const HostClock* clock);

  static const NetAddress& DefaultAddress();

  // Client side: query the service and return the reported time. The caller
  // typically follows with HostClock::AdjustTo — trusting whatever arrived.
  static kerb::Result<Time> Query(Network* net, const NetAddress& client_addr,
                                  const NetAddress& service_addr);

 private:
  const HostClock* clock_;
};

// Challenge/response time: the client sends a nonce; the reply carries
// (nonce, time, MAC_k(nonce || time)). A forger without k cannot answer a
// fresh nonce.
class AuthTimeService {
 public:
  AuthTimeService(Network* net, const NetAddress& addr, const HostClock* clock,
                  const kcrypto::DesKey& key);

  static kerb::Result<Time> Query(Network* net, const NetAddress& client_addr,
                                  const NetAddress& service_addr, const kcrypto::DesKey& key,
                                  uint64_t nonce);

 private:
  const HostClock* clock_;
  kcrypto::DesKey key_;
};

}  // namespace ksim

#endif  // SRC_SIM_TIMESERVICE_H_
