#include "src/sim/replaycache.h"

namespace ksim {

ShardedReplayCache::ShardedReplayCache() : shards_(new Shard[kShardCount]) {}

size_t ShardedReplayCache::ShardIndex(const std::string& identity) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (unsigned char c : identity) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return (h >> 60) & (kShardCount - 1);
}

bool ShardedReplayCache::CheckAndInsert(const std::string& identity, uint32_t addr,
                                        Time timestamp, Time now, Duration window) {
  Shard& shard = shards_[ShardIndex(identity)];
  std::lock_guard lock(shard.mu);
  // Stale entries sort before (cutoff, "", 0); erase the prefix. Upstream
  // freshness checks reject out-of-window timestamps before they reach this
  // cache, so discarding them here never readmits a live replay.
  const Time cutoff = now - window;
  shard.entries.erase(shard.entries.begin(),
                      shard.entries.lower_bound(Entry{cutoff, std::string(), 0}));
  return shard.entries.emplace(timestamp, identity, addr).second;
}

size_t ShardedReplayCache::size() const {
  size_t total = 0;
  for (size_t s = 0; s < kShardCount; ++s) {
    std::lock_guard lock(shards_[s].mu);
    total += shards_[s].entries.size();
  }
  return total;
}

void ShardedReplayCache::Clear() {
  for (size_t s = 0; s < kShardCount; ++s) {
    std::lock_guard lock(shards_[s].mu);
    shards_[s].entries.clear();
  }
}

}  // namespace ksim
