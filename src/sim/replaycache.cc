#include "src/sim/replaycache.h"

namespace ksim {

ShardedReplayCache::ShardedReplayCache() : shards_(new Shard[kShardCount]) {}

size_t ShardedReplayCache::ShardIndex(const std::string& identity) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (unsigned char c : identity) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return (h >> 60) & (kShardCount - 1);
}

void ShardedReplayCache::PruneAll(Time now, Duration window) {
  for (size_t s = 0; s < kShardCount; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (std::get<2>(*it) < now - window) {
        it = shard.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool ShardedReplayCache::CheckAndInsert(const std::string& identity, uint32_t addr,
                                        Time timestamp, Time now, Duration window) {
  // Age out stale entries once per distinct `now`. Whether a given tuple is
  // accepted depends only on the entries' own timestamps versus `now`, so
  // skipping redundant prunes cannot change any accept/reject decision.
  Time last = last_prune_.load(std::memory_order_acquire);
  if (last != now && last_prune_.compare_exchange_strong(last, now, std::memory_order_acq_rel)) {
    PruneAll(now, window);
  }

  Shard& shard = shards_[ShardIndex(identity)];
  std::lock_guard lock(shard.mu);
  return shard.entries.emplace(identity, addr, timestamp).second;
}

size_t ShardedReplayCache::size() const {
  size_t total = 0;
  for (size_t s = 0; s < kShardCount; ++s) {
    std::lock_guard lock(shards_[s].mu);
    total += shards_[s].entries.size();
  }
  return total;
}

void ShardedReplayCache::Clear() {
  for (size_t s = 0; s < kShardCount; ++s) {
    std::lock_guard lock(shards_[s].mu);
    shards_[s].entries.clear();
  }
}

}  // namespace ksim
