#include "src/sim/replaycache.h"

#include <iterator>

#include "src/obs/kobs.h"

namespace ksim {

ShardedReplayCache::ShardedReplayCache() : shards_(new Shard[kShardCount]) {}

size_t ShardedReplayCache::ShardIndex(const std::string& identity) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (unsigned char c : identity) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return (h >> 60) & (kShardCount - 1);
}

bool ShardedReplayCache::CheckAndInsert(const std::string& identity, uint32_t addr,
                                        Time timestamp, Time now, Duration window) {
  Shard& shard = shards_[ShardIndex(identity)];
  std::lock_guard lock(shard.mu);
  // Stale entries sort before (cutoff, "", 0); erase the prefix. Upstream
  // freshness checks reject out-of-window timestamps before they reach this
  // cache, so discarding them here never readmits a live replay.
  const Time cutoff = now - window;
  auto stale_end = shard.entries.lower_bound(Entry{cutoff, std::string(), 0});
  if (kobs::Enabled() && stale_end != shard.entries.begin()) {
    kobs::Emit(kobs::kSrcReplay, kobs::Ev::kCachePrune, now,
               static_cast<uint64_t>(std::distance(shard.entries.begin(), stale_end)));
  }
  shard.entries.erase(shard.entries.begin(), stale_end);
  bool admitted = shard.entries.emplace(timestamp, identity, addr).second;
  if (kobs::Enabled()) {
    kobs::Emit(kobs::kSrcReplay,
               admitted ? kobs::Ev::kCacheAdmit : kobs::Ev::kCacheReplay, now,
               kobs::FnvOf(identity), addr);
  }
  return admitted;
}

size_t ShardedReplayCache::size() const {
  size_t total = 0;
  for (size_t s = 0; s < kShardCount; ++s) {
    std::lock_guard lock(shards_[s].mu);
    total += shards_[s].entries.size();
  }
  return total;
}

void ShardedReplayCache::Clear() {
  for (size_t s = 0; s < kShardCount; ++s) {
    std::lock_guard lock(shards_[s].mu);
    shards_[s].entries.clear();
  }
}

}  // namespace ksim
