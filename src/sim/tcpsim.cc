#include "src/sim/tcpsim.h"

namespace ksim {

TcpServer::TcpServer(IsnPolicy policy, uint64_t seed, DataCallback on_data)
    : policy_(policy),
      rng_state_(seed | 1),
      counter_isn_(static_cast<uint32_t>(seed)),
      on_data_(std::move(on_data)) {}

uint32_t TcpServer::NextIsn() {
  if (policy_ == IsnPolicy::kPredictableCounter) {
    counter_isn_ += kIsnIncrement;
    return counter_isn_;
  }
  // xorshift64* for the random policy — unpredictable enough for the model.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return static_cast<uint32_t>((rng_state_ * 0x2545f4914f6cdd1dull) >> 32);
}

uint32_t TcpServer::Syn(const NetAddress& peer) {
  uint32_t isn = NextIsn();
  last_isn_ = isn;
  connections_[peer] = Connection{isn, false};
  return isn;
}

kerb::Status TcpServer::Ack(const NetAddress& peer, uint32_t ack_number) {
  auto it = connections_.find(peer);
  if (it == connections_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "ACK for unknown connection");
  }
  if (ack_number != it->second.server_isn + 1) {
    connections_.erase(it);  // RST
    return kerb::MakeError(kerb::ErrorCode::kTransport, "bad ACK number; connection reset");
  }
  it->second.established = true;
  return kerb::Status::Ok();
}

kerb::Status TcpServer::Data(const NetAddress& peer, uint32_t ack_number, kerb::BytesView bytes) {
  auto it = connections_.find(peer);
  if (it == connections_.end() || !it->second.established) {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "data on unestablished connection");
  }
  if (ack_number != it->second.server_isn + 1) {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "data segment out of window");
  }
  on_data_(peer, kerb::Bytes(bytes.begin(), bytes.end()));
  return kerb::Status::Ok();
}

kerb::Status TcpConnectAndSend(TcpServer& server, const NetAddress& self, kerb::BytesView data) {
  uint32_t isn = server.Syn(self);  // legitimate client sees the SYN-ACK
  kerb::Status ack = server.Ack(self, isn + 1);
  if (!ack.ok()) {
    return ack;
  }
  return server.Data(self, isn + 1, data);
}

}  // namespace ksim
