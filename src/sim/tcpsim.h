// A miniature TCP model with predictable initial sequence numbers.
//
// The paper cites [Morr85]: "it was possible, under certain circumstances,
// to spoof one half of a preauthenticated TCP connection without ever
// seeing any responses from the targeted host", because 4.2BSD incremented
// its ISN counter slowly and predictably. Experiment E2 replays that attack
// in a Kerberos setting: a stolen live authenticator plus a blind, spoofed
// connection defeats time-based authentication but not challenge/response.
//
// The model keeps exactly what the attack needs: a server whose ISN
// generator is a deterministic counter, a three-way handshake in which the
// SYN-ACK travels to the *claimed* source address, and data acceptance
// gated on acknowledging the server's ISN. An attacker spoofing host A never
// sees the SYN-ACK; it succeeds only if it can predict the ISN.

#ifndef SRC_SIM_TCPSIM_H_
#define SRC_SIM_TCPSIM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/sim/network.h"

namespace ksim {

// Server-side ISN policy.
enum class IsnPolicy {
  kPredictableCounter,  // 4.2BSD-style: isn += kIsnIncrement per connection
  kRandom,              // modern: unpredictable per connection
};

constexpr uint32_t kIsnIncrement = 64;  // slow, constant increment (the flaw)

class TcpServer {
 public:
  // `on_data` receives the bytes of each accepted data segment along with
  // the (claimed, unverifiable) peer address.
  using DataCallback = std::function<void(const NetAddress& peer, const kerb::Bytes& data)>;

  TcpServer(IsnPolicy policy, uint64_t seed, DataCallback on_data);

  // SYN from `peer`: allocates the connection and returns the SYN-ACK
  // carrying our ISN. On the real network this travels to the claimed peer
  // address; a blind spoofer never sees the return value.
  uint32_t Syn(const NetAddress& peer);

  // Final ACK of the handshake: must acknowledge our ISN + 1.
  kerb::Status Ack(const NetAddress& peer, uint32_t ack_number);

  // Data on an established connection.
  kerb::Status Data(const NetAddress& peer, uint32_t ack_number, kerb::BytesView bytes);

  // What a local observer (or an attacker making a probe connection of its
  // own) can learn: the most recently issued ISN.
  uint32_t last_issued_isn() const { return last_isn_; }

 private:
  struct Connection {
    uint32_t server_isn = 0;
    bool established = false;
  };

  uint32_t NextIsn();

  IsnPolicy policy_;
  uint64_t rng_state_;
  uint32_t counter_isn_;
  uint32_t last_isn_ = 0;
  std::map<NetAddress, Connection> connections_;
  DataCallback on_data_;
};

// Convenience for the legitimate client path: full handshake then data.
kerb::Status TcpConnectAndSend(TcpServer& server, const NetAddress& self, kerb::BytesView data);

}  // namespace ksim

#endif  // SRC_SIM_TCPSIM_H_
