#include "src/sim/faults.h"

#include <utility>

#include "src/obs/kobs.h"

namespace ksim {
namespace {

// Event kinds folded into the schedule digest, so the digest distinguishes
// "drop then duplicate" from "duplicate then drop" even when the underlying
// PRNG draws happen to collide.
enum EventKind : uint64_t {
  kEvChance = 1,
  kEvBlackout,
  kEvDelay,
  kEvDropRequest,
  kEvCorruptRequest,
  kEvDuplicate,
  kEvReorder,
  kEvDropReply,
  kEvCorruptReply,
  kEvRedeliver,
  kEvDatagramDrop,
};

}  // namespace

FaultyNetwork::FaultyNetwork(SimClock* clock, kcrypto::Prng prng, FaultPlan plan)
    : Network(clock), clock_(clock), prng_(prng), plan_(std::move(plan)) {}

const LinkFaults& FaultyNetwork::FaultsFor(uint32_t host) const {
  auto it = plan_.per_host.find(host);
  return it != plan_.per_host.end() ? it->second : plan_.link;
}

void FaultyNetwork::Fold(uint64_t v) {
  // FNV-1a over the eight octets of v.
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xff;
    digest_ *= 0x100000001b3ull;
  }
}

bool FaultyNetwork::Chance(double p) {
  // Zero-probability faults draw nothing, so an all-zero plan leaves the
  // PRNG stream — and therefore every downstream decision — untouched.
  if (p <= 0) {
    return false;
  }
  uint64_t draw = prng_.NextU64();
  // Compare the top 53 bits against p scaled to the same range; exact for
  // any p representable as a double in [0, 1].
  bool hit = static_cast<double>(draw >> 11) < p * 9007199254740992.0;  // 2^53
  Fold(kEvChance);
  Fold(draw);
  Fold(hit ? 1 : 0);
  return hit;
}

Duration FaultyNetwork::JitterBelow(Duration bound) {
  if (bound <= 0) {
    return 0;
  }
  Duration d = static_cast<Duration>(prng_.NextBelow(static_cast<uint64_t>(bound)));
  Fold(kEvDelay);
  Fold(static_cast<uint64_t>(d));
  return d;
}

uint64_t FaultyNetwork::Corrupt(kerb::Bytes& payload) {
  if (payload.empty()) {
    return 0;
  }
  // One to three bit flips at PRNG-chosen positions — the minimal damage an
  // integrity layer must catch (the paper's argument against plain CRCs).
  uint64_t flips = 1 + prng_.NextBelow(3);
  for (uint64_t i = 0; i < flips; ++i) {
    uint64_t bit = prng_.NextBelow(payload.size() * 8);
    payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    Fold(bit);
  }
  return flips;
}

bool FaultyNetwork::BlackedOut(uint32_t host, Time now) const {
  for (const Blackout& b : plan_.blackouts) {
    if (b.host == host && now >= b.from && now < b.until) {
      return true;
    }
  }
  return false;
}

Duration FaultyNetwork::StallDelay(uint32_t host, Time now) const {
  Duration total = 0;
  for (const Stall& s : plan_.stalls) {
    if (s.host == host && now >= s.from && now < s.until) {
      total += s.extra_delay;
    }
  }
  return total;
}

void FaultyNetwork::CompareDuplicateReply(uint32_t host, bool original_ok,
                                          const kerb::Bytes& original_reply,
                                          const kerb::Result<kerb::Bytes>& duplicate_reply) {
  if (!duplicate_reply.ok()) {
    // The duplicate was refused (replay cache, rate limit, blackout) — the
    // server failed closed rather than acting twice.
    ++stats_.duplicate_rejections;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDupReject, clock_->Now(), host);
    return;
  }
  if (original_ok && duplicate_reply.value() == original_reply) {
    ++stats_.duplicate_reply_matches;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDupMatch, clock_->Now(), host);
    return;
  }
  ++stats_.duplicate_reply_divergences;
  ++divergences_by_host_[host];
  kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDupDiverge, clock_->Now(), host);
}

uint64_t FaultyNetwork::divergences_at(uint32_t host) const {
  auto it = divergences_by_host_.find(host);
  return it != divergences_by_host_.end() ? it->second : 0;
}

void FaultyNetwork::DrainHeldPackets() {
  if (held_.empty() || draining_) {
    return;
  }
  draining_ = true;
  std::vector<HeldPacket> packets;
  packets.swap(held_);
  for (HeldPacket& p : packets) {
    // The stale copy arrives out of order, after the network has moved on.
    // Its reply goes nowhere (the original sender stopped listening), but
    // the server still sees and answers it — which is how reordering turns
    // into an accidental replay.
    Fold(kEvRedeliver);
    Fold(p.dst.host);
    ++stats_.late_redeliveries;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetRedeliver, clock_->Now(), p.dst.host);
    kerb::Result<kerb::Bytes> reply = Network::Call(p.src, p.dst, p.payload);
    CompareDuplicateReply(p.dst.host, p.original_ok, p.original_reply, reply);
  }
  draining_ = false;
}

kerb::Result<kerb::Bytes> FaultyNetwork::Call(const NetAddress& src, const NetAddress& dst,
                                              kerb::BytesView payload) {
  ++stats_.calls;
  // Packets held for reordering surface just before the next send.
  DrainHeldPackets();

  const Time now = clock_->Now();
  if (BlackedOut(dst.host, now)) {
    Fold(kEvBlackout);
    Fold(dst.host);
    ++stats_.blackout_refusals;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetBlackout, now, dst.host);
    return kerb::MakeError(kerb::ErrorCode::kTransport,
                           "host blacked out: " + dst.ToString());
  }

  const LinkFaults& faults = FaultsFor(dst.host);
  Duration latency = faults.delay + JitterBelow(faults.delay_jitter);
  Duration stall = StallDelay(dst.host, now);
  if (stall > 0) {
    ++stats_.stalled_deliveries;
    latency += stall;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetStall, now, dst.host,
               static_cast<uint64_t>(stall));
  }
  if (latency > 0) {
    clock_->Advance(latency);
  }

  if (Chance(faults.drop_request)) {
    Fold(kEvDropRequest);
    ++stats_.requests_dropped;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDropRequest, clock_->Now(), dst.host);
    return kerb::MakeError(kerb::ErrorCode::kTransport, "request lost");
  }

  kerb::Bytes wire(payload.begin(), payload.end());
  if (Chance(faults.corrupt_request)) {
    Fold(kEvCorruptRequest);
    uint64_t flips = Corrupt(wire);
    ++stats_.requests_corrupted;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetCorruptRequest, clock_->Now(), dst.host, flips);
  }

  kerb::Result<kerb::Bytes> reply = Network::Call(src, dst, wire);

  if (Chance(faults.duplicate_request)) {
    // The same wire bytes arrive a second time, back to back. A KDC without
    // a reply cache mints a second ticket here — with a fresh session key —
    // and the two replies diverge.
    Fold(kEvDuplicate);
    Fold(dst.host);
    ++stats_.duplicates_delivered;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDuplicate, clock_->Now(), dst.host);
    kerb::Result<kerb::Bytes> dup = Network::Call(src, dst, wire);
    CompareDuplicateReply(dst.host, reply.ok(),
                          reply.ok() ? reply.value() : kerb::Bytes{}, dup);
  }
  if (Chance(faults.reorder_request)) {
    Fold(kEvReorder);
    Fold(dst.host);
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetReorder, clock_->Now(), dst.host);
    held_.push_back(HeldPacket{src, dst, wire,
                               reply.ok() ? reply.value() : kerb::Bytes{}, reply.ok()});
  }

  if (!reply.ok()) {
    return reply;  // server-side verdicts propagate with their own codes
  }
  if (Chance(faults.drop_reply)) {
    Fold(kEvDropReply);
    ++stats_.replies_dropped;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDropReply, clock_->Now(), dst.host);
    return kerb::MakeError(kerb::ErrorCode::kTransport, "reply lost");
  }
  kerb::Bytes out = std::move(reply).value();
  if (Chance(faults.corrupt_reply)) {
    Fold(kEvCorruptReply);
    uint64_t flips = Corrupt(out);
    ++stats_.replies_corrupted;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetCorruptReply, clock_->Now(), dst.host, flips);
  }
  ++stats_.delivered;
  return out;
}

kerb::Status FaultyNetwork::SendDatagram(const NetAddress& src, const NetAddress& dst,
                                         kerb::BytesView payload) {
  if (!plan_.fault_datagrams) {
    return Network::SendDatagram(src, dst, payload);
  }
  if (BlackedOut(dst.host, clock_->Now())) {
    Fold(kEvBlackout);
    Fold(dst.host);
    ++stats_.blackout_refusals;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetBlackout, clock_->Now(), dst.host);
    return kerb::MakeError(kerb::ErrorCode::kTransport,
                           "host blacked out: " + dst.ToString());
  }
  const LinkFaults& faults = FaultsFor(dst.host);
  if (Chance(faults.drop_request)) {
    Fold(kEvDatagramDrop);
    ++stats_.requests_dropped;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetDatagramDrop, clock_->Now(), dst.host);
    return kerb::MakeError(kerb::ErrorCode::kTransport, "datagram lost");
  }
  kerb::Bytes wire(payload.begin(), payload.end());
  if (Chance(faults.corrupt_request)) {
    Fold(kEvCorruptRequest);
    uint64_t flips = Corrupt(wire);
    ++stats_.requests_corrupted;
    kobs::Emit(kobs::kSrcFaults, kobs::Ev::kNetCorruptRequest, clock_->Now(), dst.host, flips);
  }
  return Network::SendDatagram(src, dst, wire);
}

}  // namespace ksim
