// Seeded, deterministic fault injection — the *unreliable* network.
//
// The Adversary interface (src/sim/network.h) models a hostile network; this
// layer models a merely faulty one: packets are lost, duplicated, reordered,
// corrupted, and delayed, hosts black out and stall. The paper's threat
// model ("the network must be considered as completely open") covers both,
// and the retransmission discussion in its UDP section is precisely the
// failure class exercised here: a lost reply makes the client resend, and a
// naive server then sees what looks like a replay.
//
// FaultyNetwork subclasses Network and overlays faults on each Call before
// delegating to the adversarial base layer, so faults compose with any
// installed Adversary. Every fault decision is drawn from one seeded PRNG in
// call order and folded into a running schedule digest: two runs with the
// same seed and workload produce byte-identical fault schedules, which
// chaos_test asserts directly.

#ifndef SRC_SIM_FAULTS_H_
#define SRC_SIM_FAULTS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/crypto/prng.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace ksim {

// Per-destination fault probabilities, each in [0, 1]. A probability of
// zero consumes no randomness, so an all-zero LinkFaults is byte-for-byte
// equivalent to the plain Network.
struct LinkFaults {
  double drop_request = 0;       // request lost before delivery
  double drop_reply = 0;         // server acted, reply lost in transit
  double duplicate_request = 0;  // request delivered twice back to back
  double reorder_request = 0;    // stale copy re-delivered before a later call
  double corrupt_request = 0;    // bit flips in the request payload
  double corrupt_reply = 0;      // bit flips in the reply payload
  Duration delay = 0;            // fixed in-flight latency per exchange
  Duration delay_jitter = 0;     // extra uniform latency in [0, jitter)
};

// A scripted total outage of one host: every Call to it within the window
// fails with kTransport, as a crashed or partitioned KDC would.
struct Blackout {
  uint32_t host = 0;
  Time from = 0;
  Time until = 0;
};

// A scripted slow host: Calls to it within the window incur extra latency
// but still complete — the overloaded-server case, distinct from an outage.
struct Stall {
  uint32_t host = 0;
  Time from = 0;
  Time until = 0;
  Duration extra_delay = 0;
};

struct FaultPlan {
  LinkFaults link;                          // default for every destination
  std::map<uint32_t, LinkFaults> per_host;  // destination-host overrides
  std::vector<Blackout> blackouts;
  std::vector<Stall> stalls;
  bool fault_datagrams = false;  // apply drop/corrupt to datagrams too
};

class FaultyNetwork : public Network {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t delivered = 0;  // replies that reached the caller intact or corrupted
    uint64_t requests_dropped = 0;
    uint64_t replies_dropped = 0;
    uint64_t requests_corrupted = 0;
    uint64_t replies_corrupted = 0;
    uint64_t duplicates_delivered = 0;
    uint64_t late_redeliveries = 0;
    uint64_t blackout_refusals = 0;
    uint64_t stalled_deliveries = 0;
    // Outcomes of comparing the reply to a duplicated/redelivered request
    // against the original reply. A divergence at a KDC address means the
    // duplicate was answered with *different* bytes — a double-issued
    // ticket. The reply cache (src/krb4/kdccore.h) exists to keep the KDC
    // rows of divergences_by_host() at zero.
    uint64_t duplicate_reply_matches = 0;
    uint64_t duplicate_reply_divergences = 0;
    uint64_t duplicate_rejections = 0;  // duplicate answered with an error
  };

  // Fault decisions fork off the caller-provided PRNG; pass
  // world.prng().Fork() (World's fault constructor does exactly that).
  FaultyNetwork(SimClock* clock, kcrypto::Prng prng, FaultPlan plan);

  kerb::Result<kerb::Bytes> Call(const NetAddress& src, const NetAddress& dst,
                                 kerb::BytesView payload) override;
  kerb::Status SendDatagram(const NetAddress& src, const NetAddress& dst,
                            kerb::BytesView payload) override;

  // The plan is mutable between calls, so scenarios can script mid-run
  // changes (start a blackout, clear it) at deterministic points.
  FaultPlan& plan() { return plan_; }

  const Stats& stats() const { return stats_; }

  // Divergent duplicate replies seen per destination host. Nonzero at a KDC
  // host is the chaos harness's double-issue detector.
  uint64_t divergences_at(uint32_t host) const;

  // Running FNV-1a digest of every fault decision (draw outcomes, event
  // kinds, affected hosts) in order. Equal digests across two runs mean the
  // fault schedules were identical.
  uint64_t schedule_digest() const { return digest_; }

 private:
  struct HeldPacket {
    NetAddress src;
    NetAddress dst;
    kerb::Bytes payload;
    kerb::Bytes original_reply;
    bool original_ok = false;
  };

  const LinkFaults& FaultsFor(uint32_t host) const;
  bool Chance(double p);
  Duration JitterBelow(Duration bound);
  uint64_t Corrupt(kerb::Bytes& payload);  // returns the number of bit flips
  void Fold(uint64_t v);
  bool BlackedOut(uint32_t host, Time now) const;
  Duration StallDelay(uint32_t host, Time now) const;
  void CompareDuplicateReply(uint32_t host, bool original_ok,
                             const kerb::Bytes& original_reply,
                             const kerb::Result<kerb::Bytes>& duplicate_reply);
  void DrainHeldPackets();

  SimClock* clock_;
  kcrypto::Prng prng_;
  FaultPlan plan_;
  Stats stats_;
  std::map<uint32_t, uint64_t> divergences_by_host_;
  std::vector<HeldPacket> held_;
  bool draining_ = false;
  uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

}  // namespace ksim

#endif  // SRC_SIM_FAULTS_H_
