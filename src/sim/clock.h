// Simulated time.
//
// The paper: "the security of Kerberos depends critically on synchronized
// clocks." This module makes clock relationships a first-class, controllable
// part of every experiment. A single SimClock carries simulation time; each
// host observes it through a HostClock with its own offset (skew). Attacks
// on time synchronization (experiment E3) work by corrupting a host's
// offset through the time services in src/sim/timeservice.h.
//
// Times are microseconds (the resolution Draft 3 was moving to, per the
// paper's KRB_SAFE discussion). They are simulation time, never wall time.

#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>

namespace ksim {

using Time = int64_t;      // microseconds since simulation epoch
using Duration = int64_t;  // microseconds

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

// The Kerberos default tolerance for authenticator freshness: the paper's
// "typically five minutes" window.
constexpr Duration kDefaultClockSkewLimit = 5 * kMinute;

// The single source of simulation time. Owned by the World; advanced
// explicitly by scenarios.
class SimClock {
 public:
  Time Now() const { return now_; }
  void Advance(Duration dt) { now_ += dt; }
  void Set(Time t) { now_ = t; }

 private:
  Time now_ = 0;
};

// A host's possibly-skewed view of time.
class HostClock {
 public:
  explicit HostClock(const SimClock* base, Duration offset = 0) : base_(base), offset_(offset) {}

  Time Now() const { return base_->Now() + offset_; }
  Duration offset() const { return offset_; }
  void SetOffset(Duration offset) { offset_ = offset; }
  // Slews the clock so that Now() == t — what a time-sync client does after
  // querying a time service (authenticated or not).
  void AdjustTo(Time t) { offset_ = t - base_->Now(); }

 private:
  const SimClock* base_;
  Duration offset_;
};

}  // namespace ksim

#endif  // SRC_SIM_CLOCK_H_
