#include "src/sim/retry.h"

#include <cassert>

#include "src/obs/kobs.h"

namespace ksim {

void Exchanger::Wait(Duration d) {
  if (d <= 0) {
    return;
  }
  if (clock_ != nullptr) {
    clock_->Advance(d);
  }
  stats_.virtual_wait += d;
}

Duration Exchanger::BackoffFor(int round) {
  Duration backoff = policy_.backoff_base;
  for (int i = 0; i < round && backoff < policy_.backoff_cap; ++i) {
    backoff *= 2;
  }
  if (backoff > policy_.backoff_cap) {
    backoff = policy_.backoff_cap;
  }
  if (policy_.jitter_pct > 0 && backoff > 0) {
    // Deterministic jitter in [-jitter, +jitter]: same seed, same schedule.
    Duration jitter = backoff * policy_.jitter_pct / 100;
    if (jitter > 0) {
      backoff += static_cast<Duration>(prng_.NextBelow(2 * jitter + 1)) - jitter;
    }
  }
  return backoff;
}

kerb::Result<kerb::Bytes> Exchanger::Exchange(const NetAddress& src,
                                              const std::vector<NetAddress>& endpoints,
                                              const Builder& build) {
  assert(!endpoints.empty());
  ++stats_.exchanges;
  kerb::Error last = kerb::MakeError(kerb::ErrorCode::kTransport, "no attempt made");
  const int per_round = static_cast<int>(endpoints.size());
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    // Failover ordering: each round walks the list from the primary down.
    const int endpoint = attempt % per_round;
    const int round = attempt / per_round;
    if (attempt > 0 && endpoint == 0) {
      // A full round failed everywhere; back off before hammering again.
      // BackoffFor draws from the PRNG, so it runs unconditionally — the
      // decision stream must not depend on whether a trace is installed.
      Duration backoff = BackoffFor(round - 1);
      kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgBackoff, Now(),
                 static_cast<uint64_t>(backoff));
      Wait(backoff);
    }
    ++stats_.attempts;
    kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgAttempt, Now(), endpoints[endpoint].host,
               static_cast<uint64_t>(attempt));
    if (endpoint > 0) {
      ++stats_.failovers;
      kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgFailover, Now(), endpoints[endpoint].host,
                 static_cast<uint64_t>(attempt));
    }
    kerb::Result<kerb::Bytes> payload = build();
    if (!payload.ok()) {
      return payload.error();  // local construction failure, not transport
    }
    kerb::Result<kerb::Bytes> reply = net_->Call(src, endpoints[endpoint], payload.value());
    if (reply.ok()) {
      ++stats_.successes;
      kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgSuccess, Now(), endpoints[endpoint].host,
                 reply.value().size());
      return reply;
    }
    last = reply.error();
    if (!kerb::IsRetryable(last.code)) {
      ++stats_.terminal_failures;
      kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgTerminal, Now(),
                 static_cast<uint64_t>(last.code));
      return last;
    }
    // Charge the timeout the client waited before declaring this attempt
    // lost. Advancing virtual time here also timestamps the next attempt's
    // authenticator later than this one's — a fresh build is never a replay.
    Wait(policy_.timeout);
    if (attempt + 1 < policy_.max_attempts) {
      ++stats_.retries;
      kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgRetry, Now(), endpoints[endpoint].host,
                 static_cast<uint64_t>(attempt));
    }
  }
  ++stats_.exhausted;
  kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgExhausted, Now(),
             static_cast<uint64_t>(last.code));
  return last;
}

}  // namespace ksim
