// Sharded replay / last-timestamp cache.
//
// "The only known defense ... is to cache all live authenticators and
// reject duplicates" — both application servers and a preauthenticating KDC
// need this cache, and a multi-threaded server needs it without a single
// global lock. Entries are (identity, address, timestamp) tuples; a tuple
// is accepted exactly once within the liveness window, regardless of which
// thread presents it or how many threads race on the same tuple.
//
// Sharding: the identity string hashes to one of 16 shards, each with its
// own mutex and ordered set. Expired entries age out the first time any
// thread observes a new `now` value — an optimization over pruning on every
// call that is observationally identical, because aging depends only on
// `now` and the sim clock never moves backwards.

#ifndef SRC_SIM_REPLAYCACHE_H_
#define SRC_SIM_REPLAYCACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>

#include "src/sim/clock.h"

namespace ksim {

class ShardedReplayCache {
 public:
  ShardedReplayCache();

  // Returns true when (identity, addr, timestamp) is fresh — first
  // presentation within the window — and records it. Returns false for a
  // replay. Entries older than `now - window` are discarded. Thread-safe;
  // concurrent presentations of the same tuple admit exactly one caller.
  bool CheckAndInsert(const std::string& identity, uint32_t addr, Time timestamp, Time now,
                      Duration window);

  size_t size() const;
  void Clear();

 private:
  using Entry = std::tuple<std::string, uint32_t, Time>;
  struct Shard {
    mutable std::mutex mu;
    std::set<Entry> entries;
  };

  static constexpr size_t kShardCount = 16;
  static size_t ShardIndex(const std::string& identity);

  void PruneAll(Time now, Duration window);

  std::unique_ptr<Shard[]> shards_;
  std::atomic<Time> last_prune_{INT64_MIN};
};

}  // namespace ksim

#endif  // SRC_SIM_REPLAYCACHE_H_
