// Sharded replay / last-timestamp cache.
//
// "The only known defense ... is to cache all live authenticators and
// reject duplicates" — both application servers and a preauthenticating KDC
// need this cache, and a multi-threaded server needs it without a single
// global lock. Entries are (timestamp, identity, address) tuples; a tuple
// is accepted exactly once within the liveness window, regardless of which
// thread presents it or how many threads race on the same tuple.
//
// Sharding: the identity string hashes to one of 16 shards, each with its
// own mutex and ordered set. Entries order by timestamp first, so expiry is
// a prefix erase: every insert prunes its own shard's stale prefix under
// the same lock, bounding each shard to the entries inserted within one
// liveness window. (An earlier revision pruned only when `now` changed,
// which grew without bound while the clock stood still.)

#ifndef SRC_SIM_REPLAYCACHE_H_
#define SRC_SIM_REPLAYCACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>

#include "src/sim/clock.h"

namespace ksim {

class ShardedReplayCache {
 public:
  ShardedReplayCache();

  // Returns true when (identity, addr, timestamp) is fresh — first
  // presentation within the window — and records it. Returns false for a
  // replay. Entries older than `now - window` are discarded. Thread-safe;
  // concurrent presentations of the same tuple admit exactly one caller.
  bool CheckAndInsert(const std::string& identity, uint32_t addr, Time timestamp, Time now,
                      Duration window);

  size_t size() const;
  void Clear();

 private:
  // Timestamp leads so a shard's stale entries form a contiguous prefix.
  using Entry = std::tuple<Time, std::string, uint32_t>;
  // Cache-line padded: adjacent shards' mutexes must not share a line, or
  // contention on one shard shows up as coherence misses on its neighbours.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::set<Entry> entries;
  };

  static constexpr size_t kShardCount = 16;
  static size_t ShardIndex(const std::string& identity);

  std::unique_ptr<Shard[]> shards_;
};

}  // namespace ksim

#endif  // SRC_SIM_REPLAYCACHE_H_
