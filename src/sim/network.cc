#include "src/sim/network.h"

#include "src/obs/kobs.h"

namespace ksim {

std::string NetAddress::ToString() const {
  // Dotted-quad plus port, for log and experiment output.
  return std::to_string((host >> 24) & 0xff) + "." + std::to_string((host >> 16) & 0xff) + "." +
         std::to_string((host >> 8) & 0xff) + "." + std::to_string(host & 0xff) + ":" +
         std::to_string(port);
}

RecordingAdversary::Decision RecordingAdversary::OnRequest(Message& request) {
  exchanges_.push_back(Exchange{request, {}, false});
  return {};
}

bool RecordingAdversary::OnReply(const Message& request, kerb::Bytes& reply) {
  for (auto it = exchanges_.rbegin(); it != exchanges_.rend(); ++it) {
    if (it->request.id == request.id) {
      it->reply = reply;
      it->has_reply = true;
      break;
    }
  }
  return false;
}

bool RecordingAdversary::OnDatagram(Message& datagram) {
  datagrams_.push_back(datagram);
  return false;
}

void RecordingAdversary::Clear() {
  exchanges_.clear();
  datagrams_.clear();
}

CompositeAdversary::Decision CompositeAdversary::OnRequest(Message& request) {
  for (Adversary* adversary : chain_) {
    Decision decision = adversary->OnRequest(request);
    if (decision.drop || decision.fabricated_reply.has_value()) {
      return decision;
    }
  }
  return {};
}

bool CompositeAdversary::OnReply(const Message& request, kerb::Bytes& reply) {
  for (Adversary* adversary : chain_) {
    if (adversary->OnReply(request, reply)) {
      return true;
    }
  }
  return false;
}

bool CompositeAdversary::OnDatagram(Message& datagram) {
  for (Adversary* adversary : chain_) {
    if (adversary->OnDatagram(datagram)) {
      return true;
    }
  }
  return false;
}

void Network::Bind(const NetAddress& addr, Handler handler) {
  handlers_[addr] = std::move(handler);
}

void Network::BindDatagram(const NetAddress& addr, DatagramHandler handler) {
  datagram_handlers_[addr] = std::move(handler);
}

void Network::Unbind(const NetAddress& addr) {
  handlers_.erase(addr);
  datagram_handlers_.erase(addr);
}

kerb::Result<kerb::Bytes> Network::Call(const NetAddress& src, const NetAddress& dst,
                                        kerb::BytesView payload) {
  Message msg{src, dst, kerb::Bytes(payload.begin(), payload.end()), clock_->Now(), next_id_++};
  kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, msg.sent_at, dst.host, payload.size());

  if (adversary_ != nullptr) {
    Adversary::Decision decision = adversary_->OnRequest(msg);
    if (decision.drop) {
      return kerb::MakeError(kerb::ErrorCode::kTransport, "message lost");
    }
    if (decision.fabricated_reply.has_value()) {
      return *decision.fabricated_reply;
    }
  }

  auto it = handlers_.find(msg.dst);
  if (it == handlers_.end()) {
    kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetNoRoute, clock_->Now(), dst.host);
    return kerb::MakeError(kerb::ErrorCode::kTransport,
                           "no service bound at " + msg.dst.ToString());
  }
  kerb::Result<kerb::Bytes> reply = it->second(msg);
  if (reply.ok()) {
    kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetDeliver, clock_->Now(), dst.host,
               reply.value().size());
  }
  if (reply.ok() && adversary_ != nullptr) {
    kerb::Bytes mutable_reply = reply.value();
    if (adversary_->OnReply(msg, mutable_reply)) {
      return kerb::MakeError(kerb::ErrorCode::kTransport, "reply lost");
    }
    return mutable_reply;
  }
  return reply;
}

kerb::Status Network::SendDatagram(const NetAddress& src, const NetAddress& dst,
                                   kerb::BytesView payload) {
  Message msg{src, dst, kerb::Bytes(payload.begin(), payload.end()), clock_->Now(), next_id_++};
  kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetDatagram, msg.sent_at, dst.host, payload.size());
  if (adversary_ != nullptr && adversary_->OnDatagram(msg)) {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "datagram dropped");
  }
  auto it = datagram_handlers_.find(msg.dst);
  if (it == datagram_handlers_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kTransport,
                           "no datagram service at " + msg.dst.ToString());
  }
  it->second(msg);
  return kerb::Status::Ok();
}

}  // namespace ksim
