#include "src/store/blockdev.h"

#include <cassert>

#include "src/obs/kobs.h"

namespace kstore {

namespace {

// Operation tags folded into the device digest.
constexpr uint64_t kOpAppend = 1;
constexpr uint64_t kOpWriteAtomic = 2;
constexpr uint64_t kOpFlush = 3;
constexpr uint64_t kOpFlushLost = 4;
constexpr uint64_t kOpCrash = 5;
constexpr uint64_t kOpTear = 6;

}  // namespace

bool SimDevice::Chance(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  // 53-bit draw, same discipline as FaultyNetwork::Chance.
  const double draw =
      static_cast<double>(prng_.NextU64() >> 11) / static_cast<double>(1ull << 53);
  return draw < p;
}

void SimDevice::Fold(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xff;
    digest_ *= 0x100000001b3ull;
  }
}

void SimDevice::FoldName(const std::string& name) {
  for (unsigned char c : name) {
    digest_ ^= c;
    digest_ *= 0x100000001b3ull;
  }
}

void SimDevice::Append(const std::string& file, kerb::BytesView data) {
  FileState& state = files_[file];
  assert(!state.staged.has_value() && "Append while a WriteAtomic is staged");
  kerb::Append(state.tail, data);
  Fold(kOpAppend);
  FoldName(file);
  Fold(data.size());
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreDevWrite, data.size());
}

void SimDevice::WriteAtomic(const std::string& file, kerb::BytesView data) {
  FileState& state = files_[file];
  // A staged replacement subsumes any volatile tail: the caller is
  // replacing the whole file.
  state.tail.clear();
  state.staged = kerb::Bytes(data.begin(), data.end());
  Fold(kOpWriteAtomic);
  FoldName(file);
  Fold(data.size());
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreDevWrite, data.size());
}

void SimDevice::Flush(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return;
  }
  FileState& state = it->second;
  size_t hardened = 0;
  // A flushed rename is a barrier: it either already happened or the crash
  // reverts it wholesale. The lost-flush fault models a lying append-path
  // cache, so it applies only to tail hardening — otherwise a silently
  // failed snapshot install could strand a truncated WAL with no
  // recoverable base, which is not a failure mode rename-based stores have.
  if (state.staged.has_value()) {
    hardened += state.staged->size();
    state.durable = std::move(*state.staged);
    state.staged.reset();
  }
  if (!state.tail.empty() && Chance(plan_.lost_flush)) {
    ++flushes_lost_;
    Fold(kOpFlushLost);
    FoldName(file);
  } else {
    hardened += state.tail.size();
    kerb::Append(state.durable, state.tail);
    state.tail.clear();
  }
  Fold(kOpFlush);
  FoldName(file);
  Fold(hardened);
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreDevFlush, hardened);
}

kerb::Bytes SimDevice::ReadAll(const std::string& file) const {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return {};
  }
  const FileState& state = it->second;
  kerb::Bytes out = state.staged.has_value() ? *state.staged : state.durable;
  kerb::Append(out, state.tail);
  return out;
}

size_t SimDevice::size(const std::string& file) const {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return 0;
  }
  const FileState& state = it->second;
  return (state.staged.has_value() ? state.staged->size() : state.durable.size()) +
         state.tail.size();
}

size_t SimDevice::durable_size(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.durable.size();
}

void SimDevice::Crash() {
  uint64_t files_affected = 0;
  uint64_t bytes_lost = 0;
  Fold(kOpCrash);
  for (auto& [name, state] : files_) {
    if (state.staged.has_value()) {
      // The rename never happened: old content survives intact.
      bytes_lost += state.staged->size();
      state.staged.reset();
      ++files_affected;
    }
    if (!state.tail.empty()) {
      ++files_affected;
      if (Chance(plan_.torn_tail)) {
        // A prefix of the in-flight append made it to the platter.
        const size_t keep = static_cast<size_t>(prng_.NextBelow(state.tail.size()));
        ++tails_torn_;
        Fold(kOpTear);
        FoldName(name);
        Fold(keep);
        bytes_lost += state.tail.size() - keep;
        state.tail.resize(keep);
        kerb::Append(state.durable, state.tail);
      } else {
        bytes_lost += state.tail.size();
      }
      state.tail.clear();
    }
  }
  Fold(files_affected);
  Fold(bytes_lost);
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreCrash, files_affected, bytes_lost);
}

}  // namespace kstore
