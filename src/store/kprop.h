// Authenticated incremental database propagation — the kprop/kpropd
// analogue.
//
// The paper: "The Kerberos master database resides on a single machine...
// copies of the database are distributed to slave servers", and the
// propagation channel is itself a target — a network adversary who can
// splice, replay, or reorder transfers controls what the slaves believe.
// This module ships WAL deltas (src/store/wal.h) from the primary to each
// slave over the simulated network, sealed so exactly those attacks fail:
//
//   * Every frame carries a DES CBC-MAC (zero IV) under a propagation key
//     shared by primary and slaves — fabrication and tampering are
//     kIntegrity rejections.
//   * Every delta names its (from_lsn, to_lsn] window. A slave applies a
//     delta only when from_lsn equals its applied LSN: replays and
//     reordered frames are stale (idempotently re-acked, no state change)
//     and gapped frames are kReplay rejections — a splice can therefore
//     remove only a SUFFIX of the history, never an interior chunk, so a
//     slave is always at a consistent prefix of the primary's history.
//   * When a slave is behind the primary's compaction horizon, the primary
//     falls back to a wholesale snapshot transfer, versioned by its LSN so
//     an old snapshot cannot roll a slave back.
//
// Frames, big-endian, MAC over everything before the 8-byte trailer:
//   delta     := u32 'KPR1' | u8 1 | u64 from_lsn | u64 to_lsn |
//                u32 count | count * (u8 op | lp(payload)) | mac8
//   ack       := u32 'KPR1' | u8 2 | u64 applied_lsn | mac8
//   wholesale := u32 'KPR1' | u8 3 | lp(snapshot_image) | mac8

#ifndef SRC_STORE_KPROP_H_
#define SRC_STORE_KPROP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/sim/network.h"
#include "src/store/kstore.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"

namespace kstore {

constexpr uint32_t kPropMagic = 0x4b505231;  // "KPR1"
constexpr uint8_t kPropDelta = 1;
constexpr uint8_t kPropAck = 2;
constexpr uint8_t kPropWholesale = 3;
constexpr uint16_t kPropPort = 754;  // historical kprop service port
constexpr uint32_t kMaxPropRecords = 1u << 16;

kerb::Bytes EncodeDeltaFrame(const kcrypto::DesKey& key, uint64_t from_lsn,
                             uint64_t to_lsn, const std::vector<WalRecord>& records);
kerb::Bytes EncodeWholesaleFrame(const kcrypto::DesKey& key, kerb::BytesView snapshot_image);
kerb::Bytes EncodeAckFrame(const kcrypto::DesKey& key, uint64_t applied_lsn);

// MAC-checks and decodes an ack; the primary's view of a slave's reply.
kerb::Result<uint64_t> ParseAckFrame(const kcrypto::DesKey& key, kerb::BytesView frame);

// Slave-side endpoint: verifies, orders, and applies propagation frames.
// Database mutations go through the two callbacks so this layer stays free
// of protocol types:
//   applier(op, payload) applies one WAL record;
//   loader(snapshot)     replaces the database wholesale.
class PropagationSink {
 public:
  using Applier = std::function<kerb::Status(uint8_t op, kerb::BytesView payload)>;
  using Loader = std::function<kerb::Status(const Snapshot& snapshot)>;

  PropagationSink(kcrypto::DesKey key, uint64_t applied_lsn, Applier applier, Loader loader)
      : key_(key), applied_(applied_lsn), applier_(std::move(applier)),
        loader_(std::move(loader)) {}

  // Network handler body. Returns the ack frame on success; errors
  // propagate to the caller as the handler result. Atomic per frame: a
  // delta is fully parsed and verified before any record is applied.
  kerb::Result<kerb::Bytes> Handle(const ksim::Message& msg);

  uint64_t applied_lsn() const { return applied_; }

 private:
  kerb::Result<kerb::Bytes> HandleDelta(kenc::Reader& r);
  kerb::Result<kerb::Bytes> HandleWholesale(kenc::Reader& r);
  kerb::Bytes Ack() const;

  kcrypto::DesKey key_;
  uint64_t applied_;
  Applier applier_;
  Loader loader_;
};

// Primary-side driver: tracks each slave's acknowledged LSN and pushes
// chunked deltas (or a wholesale snapshot when the delta history is
// compacted away) until every slave matches the primary.
class Propagator {
 public:
  struct Options {
    uint16_t port = kPropPort;
    // Records per delta frame. Small chunks mean an interrupted cycle
    // still lands complete prefixes on the slave.
    uint32_t chunk_records = 4;
  };

  struct CycleReport {
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t records_shipped = 0;
    uint64_t wholesale_transfers = 0;
    uint64_t wholesale_bytes = 0;
    uint64_t failures = 0;  // transport or rejection; cycle moved on
    bool slaves_converged = false;
  };

  // `snapshot_fn` produces a current full snapshot for wholesale
  // transfers; it is only invoked when a slave is behind the compaction
  // horizon.
  using SnapshotFn = std::function<Snapshot()>;

  Propagator(ksim::Network* net, KStore* store, kcrypto::DesKey key,
             uint32_t primary_host, Options options, SnapshotFn snapshot_fn)
      : net_(net), store_(store), key_(key), primary_host_(primary_host),
        options_(options), snapshot_fn_(std::move(snapshot_fn)) {}

  // Binds `sink`'s handler at {slave_host, options.port} and registers the
  // slave for propagation. The sink must outlive the propagator.
  void AddSlave(uint32_t slave_host, PropagationSink* sink);

  // One propagation cycle: advance every slave toward last_lsn(). A failed
  // frame abandons that slave for this cycle (it stays at its last
  // acknowledged prefix) and the cycle continues with the next slave.
  CycleReport Propagate();

  size_t slave_count() const { return slaves_.size(); }

 private:
  struct SlaveState {
    uint32_t host = 0;
    uint64_t acked_lsn = 0;
  };

  bool AdvanceSlave(SlaveState& slave, uint64_t target, CycleReport& report);

  ksim::Network* net_;
  KStore* store_;
  kcrypto::DesKey key_;
  uint32_t primary_host_;
  Options options_;
  SnapshotFn snapshot_fn_;
  std::vector<SlaveState> slaves_;
};

}  // namespace kstore

#endif  // SRC_STORE_KPROP_H_
