#include "src/store/kstore.h"

#include <cassert>

#include "src/obs/kobs.h"

namespace kstore {

KStore::KStore(kcrypto::Prng dev_prng, const KStoreOptions& options, const Snapshot& base)
    : dev_(dev_prng, options.dev_faults),
      options_(options),
      wal_(&dev_, options.wal_file, base.lsn),
      snapshot_lsn_(base.lsn) {
  const kerb::Bytes image = EncodeSnapshot(base);
  dev_.WriteAtomic(options_.snapshot_file, image);
  dev_.Flush(options_.snapshot_file);
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreSnapshot, base.lsn, image.size());
}

uint64_t KStore::Append(uint8_t op, kerb::BytesView payload) {
  std::lock_guard lock(mu_);
  const uint64_t lsn = wal_.Append(op, payload);
  WalRecord record;
  record.lsn = lsn;
  record.op = op;
  record.payload = kerb::Bytes(payload.begin(), payload.end());
  live_.push_back(std::move(record));
  return lsn;
}

bool KStore::Delta(uint64_t from_lsn, std::vector<WalRecord>* out) const {
  out->clear();
  if (from_lsn < snapshot_lsn_) {
    return false;  // compacted away
  }
  for (const WalRecord& record : live_) {
    if (record.lsn > from_lsn) {
      out->push_back(record);
    }
  }
  return true;
}

void KStore::Compact(const Snapshot& snapshot) {
  std::lock_guard lock(mu_);
  assert(snapshot.lsn == wal_.last_lsn() && "compaction snapshot must be current");
  const kerb::Bytes image = EncodeSnapshot(snapshot);
  dev_.WriteAtomic(options_.snapshot_file, image);
  dev_.Flush(options_.snapshot_file);
  // Snapshot durable first; only then truncate the log. A crash between
  // the two leaves a snapshot plus a WAL whose prefix it already covers —
  // Recover() filters those records out.
  wal_.Rewrite({}, snapshot.lsn);
  snapshot_lsn_ = snapshot.lsn;
  live_.clear();
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreSnapshot, snapshot.lsn, image.size());
}

void KStore::Crash() { dev_.Crash(); }

kerb::Result<RecoveredState> KStore::Recover() {
  std::lock_guard lock(mu_);
  auto base = DecodeSnapshot(dev_.ReadAll(options_.snapshot_file));
  if (!base.ok()) {
    return base.error();
  }
  auto scan = ScanWal(dev_.ReadAll(options_.wal_file));
  if (!scan.ok()) {
    return scan.error();
  }
  RecoveredState state;
  state.base = std::move(base).value();
  state.discarded_bytes = scan.value().discarded_bytes;
  // Drop records the snapshot already covers (a crash between snapshot
  // install and WAL truncation leaves such a prefix) and require the
  // remainder to continue exactly at the snapshot LSN.
  for (WalRecord& record : scan.value().records) {
    if (record.lsn <= state.base.lsn) {
      continue;
    }
    const uint64_t expect =
        state.records.empty() ? state.base.lsn + 1 : state.records.back().lsn + 1;
    if (record.lsn != expect) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                             "recover: wal does not continue from snapshot");
    }
    state.records.push_back(std::move(record));
  }
  state.last_lsn = state.records.empty() ? state.base.lsn : state.records.back().lsn;

  // Re-home the engine at the recovered position: future appends continue
  // from last_lsn, and the delta feed matches the durable truth. Rewrite
  // the WAL to the surviving records so the torn tail is gone from disk.
  wal_.Rewrite(state.records, state.last_lsn);
  snapshot_lsn_ = state.base.lsn;
  live_ = state.records;

  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreRecover, state.last_lsn,
                state.records.size());
  return state;
}

}  // namespace kstore
