#include "src/store/kprop.h"

#include <cassert>

#include "src/crypto/modes.h"
#include "src/obs/kobs.h"

namespace kstore {

namespace {

// Appends the 8-byte DES CBC-MAC (zero IV) trailer over the body.
kerb::Bytes Seal(const kcrypto::DesKey& key, kerb::Bytes body) {
  const kcrypto::DesBlock mac = kcrypto::CbcMac(key, kcrypto::DesBlock{}, body);
  body.insert(body.end(), mac.begin(), mac.end());
  return body;
}

// Verifies the trailer and returns the sealed body. kIntegrity on mismatch.
kerb::Result<kerb::BytesView> Unseal(const kcrypto::DesKey& key, kerb::BytesView frame) {
  if (frame.size() < 8 + 5) {  // mac + (magic, type)
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: frame too short");
  }
  const kerb::BytesView body = frame.subspan(0, frame.size() - 8);
  const kerb::BytesView trailer = frame.subspan(frame.size() - 8);
  const kcrypto::DesBlock mac = kcrypto::CbcMac(key, kcrypto::DesBlock{}, body);
  if (!kerb::ConstantTimeEqual(trailer, kerb::BytesView(mac.data(), mac.size()))) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "prop: bad mac");
  }
  return body;
}

}  // namespace

kerb::Bytes EncodeDeltaFrame(const kcrypto::DesKey& key, uint64_t from_lsn,
                             uint64_t to_lsn, const std::vector<WalRecord>& records) {
  assert(to_lsn - from_lsn == records.size() && "delta window must match records");
  kenc::Writer w;
  w.PutU32(kPropMagic);
  w.PutU8(kPropDelta);
  w.PutU64(from_lsn);
  w.PutU64(to_lsn);
  w.PutU32(static_cast<uint32_t>(records.size()));
  for (size_t i = 0; i < records.size(); ++i) {
    assert(records[i].lsn == from_lsn + 1 + i && "delta records must be consecutive");
    w.PutU8(records[i].op);
    w.PutLengthPrefixed(records[i].payload);
  }
  return Seal(key, w.Take());
}

kerb::Bytes EncodeWholesaleFrame(const kcrypto::DesKey& key, kerb::BytesView snapshot_image) {
  kenc::Writer w;
  w.PutU32(kPropMagic);
  w.PutU8(kPropWholesale);
  w.PutLengthPrefixed(snapshot_image);
  return Seal(key, w.Take());
}

kerb::Bytes EncodeAckFrame(const kcrypto::DesKey& key, uint64_t applied_lsn) {
  kenc::Writer w;
  w.PutU32(kPropMagic);
  w.PutU8(kPropAck);
  w.PutU64(applied_lsn);
  return Seal(key, w.Take());
}

kerb::Result<uint64_t> ParseAckFrame(const kcrypto::DesKey& key, kerb::BytesView frame) {
  auto body = Unseal(key, frame);
  if (!body.ok()) {
    return body.error();
  }
  kenc::Reader r(body.value());
  auto magic = r.GetU32();
  auto type = r.GetU8();
  auto lsn = r.GetU64();
  if (!magic.ok() || magic.value() != kPropMagic || !type.ok() ||
      type.value() != kPropAck || !lsn.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: malformed ack");
  }
  return lsn.value();
}

kerb::Bytes PropagationSink::Ack() const { return EncodeAckFrame(key_, applied_); }

kerb::Result<kerb::Bytes> PropagationSink::Handle(const ksim::Message& msg) {
  auto body = Unseal(key_, msg.payload);
  if (!body.ok()) {
    if (body.code() == kerb::ErrorCode::kIntegrity) {
      kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropReject,
                    static_cast<uint64_t>(kerb::ErrorCode::kIntegrity), 0);
    }
    return body.error();
  }
  kenc::Reader r(body.value());
  auto magic = r.GetU32();
  auto type = r.GetU8();
  if (!magic.ok() || magic.value() != kPropMagic || !type.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: bad header");
  }
  switch (type.value()) {
    case kPropDelta:
      return HandleDelta(r);
    case kPropWholesale:
      return HandleWholesale(r);
    default:
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: unknown frame type");
  }
}

kerb::Result<kerb::Bytes> PropagationSink::HandleDelta(kenc::Reader& r) {
  auto from = r.GetU64();
  auto to = r.GetU64();
  auto count = r.GetU32();
  if (!from.ok() || !to.ok() || !count.ok() || to.value() < from.value() ||
      count.value() > kMaxPropRecords ||
      to.value() - from.value() != count.value()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: bad delta window");
  }
  // Parse the whole frame before touching the database: a delta applies
  // atomically or not at all.
  struct Pending {
    uint8_t op;
    kerb::Bytes payload;
  };
  std::vector<Pending> pending;
  pending.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto op = r.GetU8();
    if (!op.ok() || (op.value() != kWalOpUpsert && op.value() != kWalOpDelete &&
                     op.value() != kWalOpClusterMark)) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: bad record op");
    }
    auto payload = r.GetLengthPrefixed();
    if (!payload.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: truncated record");
    }
    pending.push_back(Pending{op.value(), std::move(payload).value()});
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: trailing bytes");
  }

  if (to.value() <= applied_) {
    // Replay or retransmission of history already applied. Re-ack the
    // current position without touching state: duplicates are idempotent,
    // and a primary whose ack was lost in transit converges on retry.
    kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropStale, to.value(), applied_);
    return Ack();
  }
  if (from.value() > applied_) {
    // A gap means someone removed or reordered an interior chunk of the
    // history. Applying it would splice the database; refuse and stay at
    // the consistent prefix.
    kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropReject,
                  static_cast<uint64_t>(kerb::ErrorCode::kReplay), from.value());
    return kerb::MakeError(kerb::ErrorCode::kReplay, "prop: delta does not continue history");
  }

  // from <= applied_ < to: the frame authentically continues history — the
  // MAC covers the whole contiguous (from, to] window — but a delayed
  // earlier frame already landed its prefix (the primary's ack was lost or
  // outraced, so it re-sent from an older cursor). Apply only the unseen
  // suffix; re-running the prefix would double-apply mutations.
  const uint64_t skip = applied_ - from.value();
  for (size_t i = static_cast<size_t>(skip); i < pending.size(); ++i) {
    auto status = applier_(pending[i].op, pending[i].payload);
    if (!status.ok()) {
      return status.error();
    }
  }
  applied_ = to.value();
  kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropApply, applied_, count.value() - skip);
  return Ack();
}

kerb::Result<kerb::Bytes> PropagationSink::HandleWholesale(kenc::Reader& r) {
  auto image = r.GetLengthPrefixed();
  if (!image.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "prop: bad wholesale framing");
  }
  auto snapshot = DecodeSnapshot(image.value());
  if (!snapshot.ok()) {
    return snapshot.error();
  }
  if (snapshot.value().lsn <= applied_) {
    // A stale snapshot must not roll the slave back — version protection
    // for the wholesale path.
    kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropStale, snapshot.value().lsn, applied_);
    return Ack();
  }
  auto status = loader_(snapshot.value());
  if (!status.ok()) {
    return status.error();
  }
  applied_ = snapshot.value().lsn;
  kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropWholesale, applied_,
                snapshot.value().entries.size());
  return Ack();
}

void Propagator::AddSlave(uint32_t slave_host, PropagationSink* sink) {
  net_->Bind(ksim::NetAddress{slave_host, options_.port},
             [sink](const ksim::Message& msg) { return sink->Handle(msg); });
  slaves_.push_back(SlaveState{slave_host, sink->applied_lsn()});
}

bool Propagator::AdvanceSlave(SlaveState& slave, uint64_t target, CycleReport& report) {
  const ksim::NetAddress src{primary_host_, options_.port};
  const ksim::NetAddress dst{slave.host, options_.port};
  while (slave.acked_lsn < target) {
    std::vector<WalRecord> delta;
    kerb::Bytes frame;
    uint64_t frame_to = 0;
    bool wholesale = false;
    if (store_->Delta(slave.acked_lsn, &delta)) {
      if (delta.size() > options_.chunk_records) {
        delta.resize(options_.chunk_records);
      }
      if (delta.empty()) {
        break;  // nothing shippable yet
      }
      frame_to = delta.back().lsn;
      frame = EncodeDeltaFrame(key_, slave.acked_lsn, frame_to, delta);
      report.records_shipped += delta.size();
    } else {
      // The slave predates the compaction horizon: only a full transfer
      // can catch it up.
      const Snapshot snapshot = snapshot_fn_();
      frame_to = snapshot.lsn;
      frame = EncodeWholesaleFrame(key_, EncodeSnapshot(snapshot));
      wholesale = true;
      ++report.wholesale_transfers;
      report.wholesale_bytes += frame.size();
    }
    ++report.frames_sent;
    report.bytes_sent += frame.size();
    kobs::EmitNow(kobs::kSrcProp, kobs::Ev::kPropShip, slave.host, frame.size());
    auto reply = net_->Call(src, dst, frame);
    if (!reply.ok()) {
      ++report.failures;
      return false;
    }
    auto acked = ParseAckFrame(key_, reply.value());
    if (!acked.ok() || acked.value() < frame_to) {
      // A garbled or regressive ack: do not assume anything landed.
      ++report.failures;
      return false;
    }
    slave.acked_lsn = acked.value();
    (void)wholesale;
  }
  return true;
}

Propagator::CycleReport Propagator::Propagate() {
  CycleReport report;
  const uint64_t target = store_->last_lsn();
  bool converged = true;
  for (SlaveState& slave : slaves_) {
    if (!AdvanceSlave(slave, target, report) || slave.acked_lsn < target) {
      converged = false;
    }
  }
  report.slaves_converged = converged;
  return report;
}

}  // namespace kstore
