// Simulated storage device for the durable KDC database (kstore).
//
// The paper assumes "strong physical security" for the Kerberos master
// machine but says nothing about its disk being well behaved — and real
// KDC databases have been lost to exactly the failure classes modelled
// here. This device is the storage analogue of ksim's FaultyNetwork: a
// deterministic in-memory "disk" of named files whose misbehaviour is
// drawn from a seeded PRNG, so every crash/recovery scenario is a pure
// function of (seed, fault plan, operation sequence) and can be replayed
// byte for byte.
//
// The durability model is the classic one:
//   * Append() lands in a volatile tail; Flush() hardens the tail.
//   * WriteAtomic() stages a wholesale replacement (the write-temp +
//     rename idiom); Flush() commits it. A crash before the flush leaves
//     the old content — never a half-written file.
//   * Crash() is power loss: staged replacements and volatile tails are
//     discarded, except that a torn write may persist a PREFIX of the
//     tail (the classic torn-page failure), and a lost flush means tail
//     bytes the caller believed durable were in fact still volatile. Lost
//     flushes model lying append-path caches only: a flushed WriteAtomic
//     commit is a rename barrier and always takes.
//
// Every operation and every fault decision folds into op_digest(), the
// same FNV discipline FaultyNetwork uses for its fault schedule.

#ifndef SRC_STORE_BLOCKDEV_H_
#define SRC_STORE_BLOCKDEV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/crypto/prng.h"

namespace kstore {

// Device-level fault probabilities, each in [0, 1]. A zero probability
// consumes no randomness, so an all-zero plan is a perfectly honest disk.
struct DevFaultPlan {
  double lost_flush = 0;  // a Flush() silently fails to harden the tail
  double torn_tail = 0;   // on crash, a prefix of the volatile tail persists
};

class SimDevice {
 public:
  SimDevice() : prng_(0) {}
  SimDevice(kcrypto::Prng prng, DevFaultPlan plan) : prng_(prng), plan_(plan) {}

  // Appends to the file's volatile tail. Must not race a staged
  // WriteAtomic on the same file (asserted): the WAL appends, snapshots
  // replace, and the two live in different files.
  void Append(const std::string& file, kerb::BytesView data);

  // Stages a wholesale replacement of the file's content, committed by the
  // next Flush(). Until then readers see the staged bytes but a crash
  // reverts to the old content.
  void WriteAtomic(const std::string& file, kerb::BytesView data);

  // Hardens the file: commits a staged replacement and/or moves the
  // volatile tail into the durable prefix. Subject to lost_flush.
  void Flush(const std::string& file);

  // The file as the running system sees it (staged/volatile included).
  kerb::Bytes ReadAll(const std::string& file) const;

  size_t size(const std::string& file) const;
  size_t durable_size(const std::string& file) const;

  // Power loss: every file reverts to its durable content; each nonempty
  // volatile tail may instead persist as a torn prefix (per the plan).
  void Crash();

  // Mutable between operations, so scenarios can script fault windows at
  // deterministic points — same discipline as FaultyNetwork::plan().
  DevFaultPlan& plan() { return plan_; }

  // FNV-1a over every operation and fault decision, in order. Equal
  // digests across two runs mean identical device histories.
  uint64_t op_digest() const { return digest_; }

  uint64_t flushes_lost() const { return flushes_lost_; }
  uint64_t tails_torn() const { return tails_torn_; }

 private:
  struct FileState {
    kerb::Bytes durable;                 // survives Crash()
    kerb::Bytes tail;                    // appended since the last flush
    std::optional<kerb::Bytes> staged;   // WriteAtomic awaiting flush
  };

  bool Chance(double p);
  void Fold(uint64_t v);
  void FoldName(const std::string& name);

  std::map<std::string, FileState> files_;
  kcrypto::Prng prng_;
  DevFaultPlan plan_;
  uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  uint64_t flushes_lost_ = 0;
  uint64_t tails_torn_ = 0;
};

}  // namespace kstore

#endif  // SRC_STORE_BLOCKDEV_H_
