// Versioned database snapshots.
//
// A snapshot is the full entry set of the KDC database as of one LSN, in a
// canonical (sorted-by-encoder) order, CRC-sealed. Snapshots bound recovery
// time (replay starts at the snapshot LSN, not LSN 0), bound WAL growth
// (compaction rewrites the log to the post-snapshot suffix), and are the
// wholesale-transfer fallback when a slave is too far behind for an
// incremental delta — the kprop "full dump" path.
//
// Entries are opaque bytes here, same as WAL payloads: each one is a
// kWalOpUpsert payload, so loading a snapshot is exactly replaying `count`
// upserts into an empty database.
//
// Layout, big-endian:
//   u32 magic 'KSN1' | u64 lsn | u32 count | count * lp(entry) | u32 crc
// where the trailing CRC-32 covers everything before it.

#ifndef SRC_STORE_SNAPSHOT_H_
#define SRC_STORE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kstore {

constexpr uint32_t kSnapshotMagic = 0x4b534e31;  // "KSN1"
// Decode-side plausibility bound on the entry count. Sized for the
// north-star population: a full dump of a multi-million-principal realm
// (the clustered logical database) must still round-trip, while a hostile
// length field is capped well before it can drive pathological allocation.
constexpr uint32_t kMaxSnapshotEntries = 1u << 22;

struct Snapshot {
  uint64_t lsn = 0;
  std::vector<kerb::Bytes> entries;  // canonical order, kWalOpUpsert payloads
};

kerb::Bytes EncodeSnapshot(const Snapshot& snapshot);

// Fail-closed: bad magic, truncation, implausible counts, and CRC damage
// are all kBadFormat.
kerb::Result<Snapshot> DecodeSnapshot(kerb::BytesView image);

}  // namespace kstore

#endif  // SRC_STORE_SNAPSHOT_H_
