#include "src/store/snapshot.h"

#include "src/crypto/crc32.h"
#include "src/encoding/io.h"

namespace kstore {

kerb::Bytes EncodeSnapshot(const Snapshot& snapshot) {
  kenc::Writer w;
  w.PutU32(kSnapshotMagic);
  w.PutU64(snapshot.lsn);
  w.PutU32(static_cast<uint32_t>(snapshot.entries.size()));
  for (const kerb::Bytes& entry : snapshot.entries) {
    w.PutLengthPrefixed(entry);
  }
  kerb::Bytes image = w.Take();
  const uint32_t crc = kcrypto::Crc32(image);
  image.push_back(static_cast<uint8_t>(crc >> 24));
  image.push_back(static_cast<uint8_t>(crc >> 16));
  image.push_back(static_cast<uint8_t>(crc >> 8));
  image.push_back(static_cast<uint8_t>(crc));
  return image;
}

kerb::Result<Snapshot> DecodeSnapshot(kerb::BytesView image) {
  if (image.size() < 4) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "snapshot: too short");
  }
  const kerb::BytesView sealed = image.subspan(0, image.size() - 4);
  const uint32_t claimed = (static_cast<uint32_t>(image[image.size() - 4]) << 24) |
                           (static_cast<uint32_t>(image[image.size() - 3]) << 16) |
                           (static_cast<uint32_t>(image[image.size() - 2]) << 8) |
                           static_cast<uint32_t>(image[image.size() - 1]);
  if (kcrypto::Crc32(sealed) != claimed) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "snapshot: crc mismatch");
  }
  kenc::Reader r(sealed);
  auto magic = r.GetU32();
  if (!magic.ok() || magic.value() != kSnapshotMagic) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "snapshot: bad magic");
  }
  auto lsn = r.GetU64();
  auto count = r.GetU32();
  if (!lsn.ok() || !count.ok() || count.value() > kMaxSnapshotEntries) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "snapshot: bad header");
  }
  Snapshot snapshot;
  snapshot.lsn = lsn.value();
  snapshot.entries.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto entry = r.GetLengthPrefixed();
    if (!entry.ok()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "snapshot: truncated entry");
    }
    snapshot.entries.push_back(std::move(entry).value());
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "snapshot: trailing bytes");
  }
  return snapshot;
}

}  // namespace kstore
