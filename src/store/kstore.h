// KStore — the durable KDC database engine.
//
// Composes the simulated device, the write-ahead log, and versioned
// snapshots into the durability contract the rest of the stack programs
// against:
//
//   * Append(op, payload) journals one mutation (WAL append + flush) and
//     returns its LSN. The caller applies the mutation to its in-memory
//     store only AFTER the append returns — write-ahead in the literal
//     sense.
//   * Compact(snapshot) atomically installs a new base snapshot at the
//     snapshot's LSN and truncates the WAL to the records after it.
//   * Delta(from_lsn) yields the records a replica needs to advance from
//     `from_lsn` to the present — the incremental-propagation feed. It
//     fails (returns false) when compaction has discarded that history,
//     which is the signal to fall back to a wholesale snapshot transfer.
//   * Crash() + Recover() model power loss: recovery reads the durable
//     snapshot, replays the surviving WAL suffix, and reports the LSN the
//     database is now at. A torn final record is tolerated (it was never
//     acknowledged); interior damage is not.
//
// KStore holds no protocol types — payloads and snapshot entries are
// opaque bytes. The krb4 glue (src/krb4/kdcstore.h) owns the codec.
//
// Thread safety: Append is mutex-guarded so concurrent KDC admin mutations
// journal atomically; everything else is meant for the single-threaded
// orchestration phases (construction, propagation, recovery), matching how
// the replica sets drive it.

#ifndef SRC_STORE_KSTORE_H_
#define SRC_STORE_KSTORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/prng.h"
#include "src/store/blockdev.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"

namespace kstore {

struct KStoreOptions {
  DevFaultPlan dev_faults;
  std::string snapshot_file = "kdb.snapshot";
  std::string wal_file = "kdb.wal";
};

// What Recover() reconstructed from the durable state.
struct RecoveredState {
  Snapshot base;                   // the durable snapshot
  std::vector<WalRecord> records;  // WAL suffix to replay on top, in order
  uint64_t last_lsn = 0;           // LSN after replay
  uint64_t discarded_bytes = 0;    // torn WAL tail dropped during the scan
};

class KStore {
 public:
  // Writes and flushes `base` as the initial durable snapshot (and an
  // empty WAL positioned after it).
  KStore(kcrypto::Prng dev_prng, const KStoreOptions& options, const Snapshot& base);

  // Journals one mutation durably and returns its LSN. Thread-safe.
  uint64_t Append(uint8_t op, kerb::BytesView payload);

  uint64_t last_lsn() const { return wal_.last_lsn(); }
  uint64_t snapshot_lsn() const { return snapshot_lsn_; }

  // Copies the journaled records with LSN > from_lsn into `out` (cleared
  // first). False when from_lsn predates the snapshot — that history is
  // compacted away and only a wholesale transfer can help.
  bool Delta(uint64_t from_lsn, std::vector<WalRecord>* out) const;

  // Installs `snapshot` (which must reflect every record up to its LSN,
  // snapshot.lsn == last_lsn()) as the new durable base and truncates the
  // WAL. Emits kStoreSnapshot.
  void Compact(const Snapshot& snapshot);

  // Power loss on the underlying device.
  void Crash();

  // Rebuilds state from the durable files: decode the snapshot, scan the
  // WAL, drop records the snapshot already covers, tolerate a torn tail.
  // Re-synchronises the engine's own counters to the recovered LSN, so
  // appends may resume afterwards. Fails closed on interior damage.
  kerb::Result<RecoveredState> Recover();

  SimDevice& device() { return dev_; }
  const SimDevice& device() const { return dev_; }

 private:
  SimDevice dev_;
  KStoreOptions options_;
  Wal wal_;
  uint64_t snapshot_lsn_ = 0;

  std::mutex mu_;
  // In-memory mirror of the WAL suffix since the snapshot — the Delta()
  // feed, avoiding a device scan per propagation cycle.
  std::vector<WalRecord> live_;
};

}  // namespace kstore

#endif  // SRC_STORE_KSTORE_H_
