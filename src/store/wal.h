// Write-ahead log of KDC database mutations.
//
// Every principal upsert/delete is appended here, CRC-32-framed and
// LSN-stamped, BEFORE it is applied to the in-memory store — so after any
// crash the database can be rebuilt as snapshot + replayed WAL suffix, and
// the propagation protocol (src/store/kprop.h) can ship exact deltas
// instead of wholesale dumps.
//
// On-disk frame, all integers big-endian (src/encoding/io.h):
//
//   frame := u32 body_len | u32 crc32(body) | body
//   body  := u64 lsn | u8 op | u32 payload_len | payload
//
// Payloads are opaque to this layer; the principal codec lives with the
// KDC database (src/krb4/kdcstore.h), which keeps kstore free of protocol
// types. Parsing is fail-closed: a truncated or CRC-damaged frame is
// kBadFormat, and a CRC-valid record stream whose LSNs are not strictly
// consecutive is kBadFormat too (a gap means splicing or silent loss, not
// a crash). The one tolerated irregularity is a damaged TAIL: ScanWal
// stops cleanly at the first unparsable frame and reports the discarded
// byte count, because a torn final append is the normal signature of power
// loss mid-commit.

#ifndef SRC_STORE_WAL_H_
#define SRC_STORE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/encoding/io.h"
#include "src/store/blockdev.h"

namespace kstore {

// Record operations. The WAL does not interpret payloads, but the op code
// frames the replay contract: an upsert payload fully describes the new
// entry, a delete payload names the entry to remove.
constexpr uint8_t kWalOpUpsert = 1;
constexpr uint8_t kWalOpDelete = 2;
// Database-neutral marker record (payload: context-defined, e.g. a cluster
// ring epoch). It advances the LSN like any record but carries no entry
// mutation; appliers skip it. The cluster controller journals one on every
// membership change so a post-change snapshot always carries an LSN
// strictly greater than any node's applied LSN — which is what lets the
// wholesale path's stale-snapshot guard coexist with rejoin catch-up.
constexpr uint8_t kWalOpClusterMark = 3;

// Sanity bound on a single record payload — hostile length fields must not
// drive allocations.
constexpr uint32_t kMaxWalPayload = 1u << 20;

struct WalRecord {
  uint64_t lsn = 0;
  uint8_t op = 0;
  kerb::Bytes payload;
};

// Encodes one CRC-framed record.
kerb::Bytes EncodeWalFrame(const WalRecord& record);

// Parses exactly one frame at the reader's position. Fail-closed:
// truncation, oversized lengths, and CRC mismatches are kBadFormat.
kerb::Result<WalRecord> ParseWalFrame(kenc::Reader& r);

struct WalScan {
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;      // prefix of the image that parsed cleanly
  size_t discarded_bytes = 0;  // torn crash tail dropped by the scan
};

// Scans a whole WAL image. The first unparsable frame ends the scan (its
// bytes and everything after count as the discarded tail); LSNs of the
// parsed records must be strictly consecutive or the scan itself fails.
kerb::Result<WalScan> ScanWal(kerb::BytesView image);

// Append-side handle over a SimDevice file. Each Append writes one frame
// and flushes — the WAL is durable up to the last acknowledged LSN (modulo
// the device's injected flush faults, which recovery must tolerate).
class Wal {
 public:
  Wal(SimDevice* dev, std::string file, uint64_t last_lsn)
      : dev_(dev), file_(std::move(file)), last_lsn_(last_lsn) {}

  // Stamps the next LSN, appends the frame, flushes, and returns the LSN.
  uint64_t Append(uint8_t op, kerb::BytesView payload);

  uint64_t last_lsn() const { return last_lsn_; }

  // Rewrites the file to exactly `records` (compaction truncating the
  // prefix) and resets the append position to follow them.
  void Rewrite(const std::vector<WalRecord>& records, uint64_t last_lsn);

  const std::string& file() const { return file_; }

 private:
  SimDevice* dev_;
  std::string file_;
  uint64_t last_lsn_;
};

}  // namespace kstore

#endif  // SRC_STORE_WAL_H_
