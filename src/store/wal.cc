#include "src/store/wal.h"

#include "src/crypto/crc32.h"
#include "src/obs/kobs.h"

namespace kstore {

kerb::Bytes EncodeWalFrame(const WalRecord& record) {
  kenc::Writer body;
  body.PutU64(record.lsn);
  body.PutU8(record.op);
  body.PutLengthPrefixed(record.payload);
  kerb::Bytes body_bytes = body.Take();

  kenc::Writer frame;
  frame.PutU32(static_cast<uint32_t>(body_bytes.size()));
  frame.PutU32(kcrypto::Crc32(body_bytes));
  frame.PutBytes(body_bytes);
  return frame.Take();
}

kerb::Result<WalRecord> ParseWalFrame(kenc::Reader& r) {
  auto body_len = r.GetU32();
  if (!body_len.ok()) {
    return body_len.error();
  }
  // Minimum body: lsn (8) + op (1) + payload length prefix (4).
  if (body_len.value() < 13 || body_len.value() > kMaxWalPayload + 13) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "wal: implausible body length");
  }
  auto crc = r.GetU32();
  if (!crc.ok()) {
    return crc.error();
  }
  auto body = r.GetBytes(body_len.value());
  if (!body.ok()) {
    return body.error();
  }
  if (kcrypto::Crc32(body.value()) != crc.value()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "wal: frame crc mismatch");
  }
  kenc::Reader br(body.value());
  WalRecord record;
  auto lsn = br.GetU64();
  auto op = br.GetU8();
  if (!lsn.ok() || !op.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "wal: truncated body");
  }
  auto payload = br.GetLengthPrefixed();
  if (!payload.ok() || !br.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "wal: bad payload framing");
  }
  if (op.value() != kWalOpUpsert && op.value() != kWalOpDelete &&
      op.value() != kWalOpClusterMark) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "wal: unknown op");
  }
  record.lsn = lsn.value();
  record.op = op.value();
  record.payload = std::move(payload).value();
  return record;
}

kerb::Result<WalScan> ScanWal(kerb::BytesView image) {
  WalScan scan;
  kenc::Reader r(image);
  while (!r.AtEnd()) {
    const size_t before = image.size() - r.remaining();
    auto record = ParseWalFrame(r);
    if (!record.ok()) {
      // Damaged tail: everything from the failed frame on is discarded.
      // This is the expected shape of a crash mid-append, so the scan
      // itself succeeds — callers decide whether a nonzero discard is
      // tolerable for the file at hand.
      scan.valid_bytes = before;
      scan.discarded_bytes = image.size() - before;
      return scan;
    }
    if (!scan.records.empty() &&
        record.value().lsn != scan.records.back().lsn + 1) {
      // An interior LSN gap cannot come from a torn tail — the frames on
      // both sides passed their CRCs. Splice or silent loss: refuse.
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "wal: lsn discontinuity");
    }
    scan.records.push_back(std::move(record).value());
  }
  scan.valid_bytes = image.size();
  return scan;
}

uint64_t Wal::Append(uint8_t op, kerb::BytesView payload) {
  WalRecord record;
  record.lsn = ++last_lsn_;
  record.op = op;
  record.payload = kerb::Bytes(payload.begin(), payload.end());
  const kerb::Bytes frame = EncodeWalFrame(record);
  dev_->Append(file_, frame);
  dev_->Flush(file_);
  kobs::EmitNow(kobs::kSrcStore, kobs::Ev::kStoreAppend, record.lsn, frame.size());
  return record.lsn;
}

void Wal::Rewrite(const std::vector<WalRecord>& records, uint64_t last_lsn) {
  kerb::Bytes image;
  for (const WalRecord& record : records) {
    kerb::Append(image, EncodeWalFrame(record));
  }
  dev_->WriteAtomic(file_, image);
  dev_->Flush(file_);
  last_lsn_ = last_lsn;
}

}  // namespace kstore
