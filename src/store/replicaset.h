// Shared replica-set topology construction.
//
// The V4 and V5 replica sets (src/krb4/replica.h, src/krb5/replica.h) are
// the same machine with different KDC types: primary at the given
// addresses, slave i at host + 1 + i, endpoint lists ordered primary-first
// for client failover. Their constructors had drifted into near-identical
// copies; this header is the single implementation both instantiate.
//
// PRNG discipline (load-bearing for byte-identical pins): one stream forks
// off `prng` per slave BEFORE the primary is seeded, so a zero-slave set
// drives the primary with the untouched stream and its reply bytes match a
// standalone KDC exactly.

#ifndef SRC_STORE_REPLICASET_H_
#define SRC_STORE_REPLICASET_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/crypto/prng.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace kstore {

template <typename KdcT>
struct ReplicaTopology {
  std::unique_ptr<KdcT> primary;
  std::vector<std::unique_ptr<KdcT>> slaves;
  std::vector<ksim::NetAddress> as_endpoints;   // primary first
  std::vector<ksim::NetAddress> tgs_endpoints;  // primary first
};

template <typename KdcT, typename DbT, typename OptionsT>
ReplicaTopology<KdcT> BuildReplicaTopology(ksim::Network* net, const ksim::NetAddress& as_addr,
                                           const ksim::NetAddress& tgs_addr,
                                           ksim::HostClock clock, std::string realm, DbT db,
                                           kcrypto::Prng prng, int slaves,
                                           const OptionsT& options) {
  ReplicaTopology<KdcT> topo;
  topo.as_endpoints.push_back(as_addr);
  topo.tgs_endpoints.push_back(tgs_addr);
  std::vector<kcrypto::Prng> slave_prngs;
  for (int i = 0; i < slaves; ++i) {
    slave_prngs.push_back(prng.Fork());
  }
  for (int i = 0; i < slaves; ++i) {
    ksim::NetAddress slave_as{as_addr.host + 1 + static_cast<uint32_t>(i), as_addr.port};
    ksim::NetAddress slave_tgs{tgs_addr.host + 1 + static_cast<uint32_t>(i), tgs_addr.port};
    topo.as_endpoints.push_back(slave_as);
    topo.tgs_endpoints.push_back(slave_tgs);
    topo.slaves.push_back(std::make_unique<KdcT>(net, slave_as, slave_tgs, clock, realm, db,
                                                 slave_prngs[static_cast<size_t>(i)], options));
  }
  topo.primary = std::make_unique<KdcT>(net, as_addr, tgs_addr, clock, std::move(realm),
                                        std::move(db), prng, options);
  return topo;
}

}  // namespace kstore

#endif  // SRC_STORE_REPLICASET_H_
