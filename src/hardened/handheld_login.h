// The handheld-authenticator login protocol (recommendation c).
//
// "The server picks a random number R, and uses K_c to encrypt R. This
// value {R}K_c, rather than K_c, would be used to encrypt the server's
// response. R would be transmitted in the clear to the user. If a hand-held
// authenticator was in use, the user would employ it to calculate {R}K_c;
// otherwise, the login program would do it automatically."
//
// The point (experiment E6): against a trojaned login program, typing a
// password loses everything forever, while typing a device response loses a
// single one-time value — the next login gets a fresh R.

#ifndef SRC_HARDENED_HANDHELD_LOGIN_H_
#define SRC_HARDENED_HANDHELD_LOGIN_H_

#include <map>

#include "src/hsm/keystore.h"
#include "src/krb4/database.h"
#include "src/krb4/messages.h"
#include "src/sim/network.h"

namespace khard {

// AS-style login service implementing the {R}K_c scheme. Two calls:
//   1. challenge request → R (plaintext)
//   2. ticket request → AS reply body sealed under K' = parity({R}K_c)
class HandheldLoginServer {
 public:
  HandheldLoginServer(ksim::Network* net, const ksim::NetAddress& addr,
                      ksim::HostClock clock, std::string realm, krb4::KdcDatabase db,
                      kcrypto::Prng prng,
                      ksim::Duration challenge_lifetime = ksim::kMinute);

  uint64_t challenges_issued() const { return challenges_issued_; }

 private:
  kerb::Result<kerb::Bytes> Handle(const ksim::Message& msg);

  ksim::HostClock clock_;
  std::string realm_;
  krb4::KdcDatabase db_;
  kcrypto::Prng prng_;
  ksim::Duration challenge_lifetime_;
  std::map<std::string, std::pair<uint64_t, ksim::Time>> outstanding_;  // principal → (R, t)
  uint64_t challenges_issued_ = 0;
};

// Derives the reply-sealing key K' from a device response {R}K_c.
kcrypto::DesKey KeyFromDeviceResponse(uint64_t response);

// Client-side flow. `device` stands in for the user reading the challenge
// off the screen and typing the device's answer.
struct HandheldLoginResult {
  kcrypto::DesKey tgs_session_key;
  kerb::Bytes sealed_tgt;
};

kerb::Result<HandheldLoginResult> HandheldLogin(ksim::Network* net,
                                                const ksim::NetAddress& client_addr,
                                                const ksim::NetAddress& login_addr,
                                                const krb4::Principal& user,
                                                const khsm::HandheldAuthenticator& device);

// The challenge/ticket wire ops (shared with experiment code that models a
// trojaned login replaying a captured response).
kerb::Result<uint64_t> RequestLoginChallenge(ksim::Network* net,
                                             const ksim::NetAddress& client_addr,
                                             const ksim::NetAddress& login_addr,
                                             const krb4::Principal& user);
kerb::Result<HandheldLoginResult> CompleteLoginWithResponse(
    ksim::Network* net, const ksim::NetAddress& client_addr,
    const ksim::NetAddress& login_addr, const krb4::Principal& user, uint64_t response);

}  // namespace khard

#endif  // SRC_HARDENED_HANDHELD_LOGIN_H_
