// Exponential-key-exchange protection for the login dialog
// (recommendation h).
//
// "We propose the use of exponential key exchange to provide an additional
// layer of encryption ... Such a use would prevent a passive wiretapper
// from accumulating the network equivalent of /etc/passwd."
//
// Protocol:
//   1. client → { principal, g^a mod p }
//   2. server → { g^b mod p, { {AS-reply-body}K_c }K_dh }
// where K_dh derives from g^ab. A passive recorder holds only material
// sealed under K_dh; confirming a password guess now requires solving the
// discrete log (feasible for toy moduli — bench B3 — which is exactly the
// paper's cost/security trade-off) or an active man-in-the-middle, which
// the paper notes is "comparatively rare".

#ifndef SRC_HARDENED_DH_LOGIN_H_
#define SRC_HARDENED_DH_LOGIN_H_

#include <string>

#include "src/crypto/dh.h"
#include "src/krb4/database.h"
#include "src/krb4/messages.h"
#include "src/sim/network.h"

namespace khard {

class DhLoginServer {
 public:
  DhLoginServer(ksim::Network* net, const ksim::NetAddress& addr, ksim::HostClock clock,
                std::string realm, krb4::KdcDatabase db, kcrypto::Prng prng,
                kcrypto::DhGroup group);

  const kcrypto::DhGroup& group() const { return group_; }

 private:
  kerb::Result<kerb::Bytes> Handle(const ksim::Message& msg);

  ksim::HostClock clock_;
  std::string realm_;
  krb4::KdcDatabase db_;
  kcrypto::Prng prng_;
  kcrypto::DhGroup group_;
};

struct DhLoginResult {
  kcrypto::DesKey tgs_session_key;
  kerb::Bytes sealed_tgt;
};

// Full client-side login through the DH layer.
kerb::Result<DhLoginResult> DhLogin(ksim::Network* net, const ksim::NetAddress& client_addr,
                                    const ksim::NetAddress& login_addr,
                                    const krb4::Principal& user, std::string_view password,
                                    const kcrypto::DhGroup& group, kcrypto::Prng& prng);

}  // namespace khard

#endif  // SRC_HARDENED_DH_LOGIN_H_
