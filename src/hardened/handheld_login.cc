#include "src/hardened/handheld_login.h"

#include "src/encoding/io.h"

namespace khard {

namespace {

constexpr uint8_t kOpChallenge = 1;
constexpr uint8_t kOpTicket = 2;

}  // namespace

HandheldLoginServer::HandheldLoginServer(ksim::Network* net, const ksim::NetAddress& addr,
                                         ksim::HostClock clock, std::string realm,
                                         krb4::KdcDatabase db, kcrypto::Prng prng,
                                         ksim::Duration challenge_lifetime)
    : clock_(clock),
      realm_(std::move(realm)),
      db_(std::move(db)),
      prng_(prng),
      challenge_lifetime_(challenge_lifetime) {
  net->Bind(addr, [this](const ksim::Message& msg) { return Handle(msg); });
}

kcrypto::DesKey KeyFromDeviceResponse(uint64_t response) {
  return kcrypto::DesKey(kcrypto::FixParity(kcrypto::U64ToBlock(response)));
}

kerb::Result<kerb::Bytes> HandheldLoginServer::Handle(const ksim::Message& msg) {
  kenc::Reader r(msg.payload);
  auto op = r.GetU8();
  if (!op.ok()) {
    return op.error();
  }
  auto principal = krb4::Principal::DecodeFrom(r);
  if (!principal.ok()) {
    return principal.error();
  }
  auto user_key = db_.Lookup(principal.value());
  if (!user_key.ok()) {
    return user_key.error();
  }
  ksim::Time now = clock_.Now();

  if (op.value() == kOpChallenge) {
    uint64_t challenge = prng_.NextU64();
    outstanding_[principal.value().ToString()] = {challenge, now};
    ++challenges_issued_;
    kenc::Writer w;
    w.PutU64(challenge);  // R travels in the clear
    return w.Take();
  }
  if (op.value() != kOpTicket) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "unknown login op");
  }

  auto it = outstanding_.find(principal.value().ToString());
  if (it == outstanding_.end() || now - it->second.second > challenge_lifetime_) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "no live challenge");
  }
  uint64_t challenge = it->second.first;
  outstanding_.erase(it);  // single use

  // K' = {R}K_c — only the device holder can compute it.
  kcrypto::DesKey reply_key =
      KeyFromDeviceResponse(user_key.value().EncryptBlock(challenge));

  auto tgs_key = db_.Lookup(krb4::TgsPrincipal(realm_));
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }
  kcrypto::DesKey session_key = prng_.NextDesKey();
  krb4::Ticket4 tgt;
  tgt.service = krb4::TgsPrincipal(realm_);
  tgt.client = principal.value();
  tgt.client_addr = msg.src.host;
  tgt.issued_at = now;
  tgt.lifetime = 8 * ksim::kHour;
  tgt.session_key = session_key.bytes();

  krb4::AsReplyBody4 body;
  body.tgs_session_key = session_key.bytes();
  body.sealed_tgt = tgt.Seal(tgs_key.value());
  body.issued_at = now;
  body.lifetime = tgt.lifetime;

  return krb4::Seal4(reply_key, body.Encode());
}

kerb::Result<uint64_t> RequestLoginChallenge(ksim::Network* net,
                                             const ksim::NetAddress& client_addr,
                                             const ksim::NetAddress& login_addr,
                                             const krb4::Principal& user) {
  kenc::Writer w;
  w.PutU8(kOpChallenge);
  user.EncodeTo(w);
  auto reply = net->Call(client_addr, login_addr, w.Peek());
  if (!reply.ok()) {
    return reply.error();
  }
  kenc::Reader r(reply.value());
  auto challenge = r.GetU64();
  if (!challenge.ok()) {
    return challenge.error();
  }
  return challenge.value();
}

kerb::Result<HandheldLoginResult> CompleteLoginWithResponse(
    ksim::Network* net, const ksim::NetAddress& client_addr,
    const ksim::NetAddress& login_addr, const krb4::Principal& user, uint64_t response) {
  kenc::Writer w;
  w.PutU8(kOpTicket);
  user.EncodeTo(w);
  auto reply = net->Call(client_addr, login_addr, w.Peek());
  if (!reply.ok()) {
    return reply.error();
  }
  kcrypto::DesKey reply_key = KeyFromDeviceResponse(response);
  auto plain = krb4::Unseal4(reply_key, reply.value());
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                           "cannot decrypt login reply (stale device response?)");
  }
  auto body = krb4::AsReplyBody4::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }
  HandheldLoginResult result;
  result.tgs_session_key = kcrypto::DesKey(body.value().tgs_session_key);
  result.sealed_tgt = body.value().sealed_tgt;
  return result;
}

kerb::Result<HandheldLoginResult> HandheldLogin(ksim::Network* net,
                                                const ksim::NetAddress& client_addr,
                                                const ksim::NetAddress& login_addr,
                                                const krb4::Principal& user,
                                                const khsm::HandheldAuthenticator& device) {
  auto challenge = RequestLoginChallenge(net, client_addr, login_addr, user);
  if (!challenge.ok()) {
    return challenge.error();
  }
  // The user reads R off the screen, keys it into the device, and types the
  // device's answer back.
  uint64_t response = device.Respond(challenge.value());
  return CompleteLoginWithResponse(net, client_addr, login_addr, user, response);
}

}  // namespace khard
