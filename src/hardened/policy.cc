#include "src/hardened/policy.h"

namespace khard {

namespace {

krb5::EncLayerConfig HardenedEncLayer() {
  krb5::EncLayerConfig enc;
  enc.checksum = kcrypto::ChecksumType::kMd4Des;
  enc.use_confounder = true;
  return enc;
}

}  // namespace

krb5::KdcPolicy5 RecommendedKdcPolicy() {
  krb5::KdcPolicy5 policy;
  policy.enc = HardenedEncLayer();
  policy.allow_enc_tkt_in_skey = false;   // new recommendation (d')
  policy.allow_reuse_skey = false;        // new recommendation (d')
  policy.enforce_enc_tkt_cname_match = true;
  policy.require_preauth = true;          // recommendation (g)
  policy.require_collision_proof_checksum = true;  // new recommendation (c')
  policy.as_rate_limit_per_minute = 30;
  // "We would prefer to provide the same functionality by having clients
  // register separate instances as services, with truly random keys."
  policy.allow_tickets_for_user_principals = false;
  return policy;
}

krb5::AppServer5Options RecommendedServerOptions() {
  krb5::AppServer5Options options;
  options.enc = HardenedEncLayer();
  options.mode = krb5::ApAuthMode::kChallengeResponse;  // recommendation (a)
  options.verify_service_name_check = true;             // new recommendation (c')
  options.negotiate_subkey = true;                      // recommendation (e)
  options.replay_cache = true;                          // defence in depth
  return options;
}

krb5::Client5Options RecommendedClientOptions() {
  krb5::Client5Options options;
  options.enc = HardenedEncLayer();
  options.request_checksum = kcrypto::ChecksumType::kMd4Des;
  options.use_preauth = true;
  options.send_subkey = true;
  options.send_service_name_check = true;
  return options;
}

krb5::ChannelConfig RecommendedChannelConfig() {
  krb5::ChannelConfig config;
  config.protection = krb5::ReplayProtection::kSequence;
  config.enc = HardenedEncLayer();
  return config;
}

krb5::KdcPolicy5 Draft3KdcPolicy() { return krb5::KdcPolicy5{}; }

krb5::AppServer5Options Draft3ServerOptions() { return krb5::AppServer5Options{}; }

krb5::Client5Options Draft3ClientOptions() { return krb5::Client5Options{}; }

}  // namespace khard
