#include "src/hardened/dh_login.h"

#include "src/crypto/str2key.h"
#include "src/encoding/io.h"

namespace khard {

DhLoginServer::DhLoginServer(ksim::Network* net, const ksim::NetAddress& addr,
                             ksim::HostClock clock, std::string realm, krb4::KdcDatabase db,
                             kcrypto::Prng prng, kcrypto::DhGroup group)
    : clock_(clock),
      realm_(std::move(realm)),
      db_(std::move(db)),
      prng_(prng),
      group_(std::move(group)) {
  // Build the cached modexp engine once, up front: every login this server
  // handles reuses the Montgomery context and the fixed-base g^x table.
  kcrypto::EnsureEngine(group_);
  net->Bind(addr, [this](const ksim::Message& msg) { return Handle(msg); });
}

kerb::Result<kerb::Bytes> DhLoginServer::Handle(const ksim::Message& msg) {
  kenc::Reader r(msg.payload);
  auto principal = krb4::Principal::DecodeFrom(r);
  if (!principal.ok()) {
    return principal.error();
  }
  auto client_pub_bytes = r.GetLengthPrefixed();
  if (!client_pub_bytes.ok()) {
    return client_pub_bytes.error();
  }
  kcrypto::BigInt client_pub = kcrypto::BigInt::FromBytes(client_pub_bytes.value());
  // Fail closed on degenerate publics (0, 1, p-1, ≥p) before any exponent
  // touches them — they would fix or leak the shared secret.
  if (auto valid = kcrypto::ValidateDhPublic(group_, client_pub); !valid.ok()) {
    return valid.error();
  }

  auto user_key = db_.Lookup(principal.value());
  if (!user_key.ok()) {
    return user_key.error();
  }
  auto tgs_key = db_.Lookup(krb4::TgsPrincipal(realm_));
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  // Our half of the exchange.
  kcrypto::DhKeyPair server_pair = kcrypto::DhGenerate(group_, prng_);
  kcrypto::DesKey dh_key =
      kcrypto::DhDeriveKey(kcrypto::DhSharedSecret(group_, server_pair.private_key, client_pub));

  // Ordinary AS reply body...
  ksim::Time now = clock_.Now();
  kcrypto::DesKey session_key = prng_.NextDesKey();
  krb4::Ticket4 tgt;
  tgt.service = krb4::TgsPrincipal(realm_);
  tgt.client = principal.value();
  tgt.client_addr = msg.src.host;
  tgt.issued_at = now;
  tgt.lifetime = 8 * ksim::kHour;
  tgt.session_key = session_key.bytes();

  krb4::AsReplyBody4 body;
  body.tgs_session_key = session_key.bytes();
  body.sealed_tgt = tgt.Seal(tgs_key.value());
  body.issued_at = now;
  body.lifetime = tgt.lifetime;

  // ...sealed under K_c, then wrapped in the DH layer.
  kerb::Bytes inner = krb4::Seal4(user_key.value(), body.Encode());
  kerb::Bytes outer = krb4::Seal4(dh_key, inner);

  kenc::Writer w;
  w.PutLengthPrefixed(server_pair.public_key.ToBytes());
  w.PutLengthPrefixed(outer);
  return w.Take();
}

kerb::Result<DhLoginResult> DhLogin(ksim::Network* net, const ksim::NetAddress& client_addr,
                                    const ksim::NetAddress& login_addr,
                                    const krb4::Principal& user, std::string_view password,
                                    const kcrypto::DhGroup& group, kcrypto::Prng& prng) {
  kcrypto::DhKeyPair client_pair = kcrypto::DhGenerate(group, prng);

  kenc::Writer w;
  user.EncodeTo(w);
  w.PutLengthPrefixed(client_pair.public_key.ToBytes());
  auto reply = net->Call(client_addr, login_addr, w.Peek());
  if (!reply.ok()) {
    return reply.error();
  }

  kenc::Reader r(reply.value());
  auto server_pub_bytes = r.GetLengthPrefixed();
  auto outer = r.GetLengthPrefixed();
  if (!server_pub_bytes.ok() || !outer.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "malformed DH login reply");
  }
  kcrypto::BigInt server_pub = kcrypto::BigInt::FromBytes(server_pub_bytes.value());
  if (auto valid = kcrypto::ValidateDhPublic(group, server_pub); !valid.ok()) {
    return valid.error();
  }
  kcrypto::DesKey dh_key = kcrypto::DhDeriveKey(
      kcrypto::DhSharedSecret(group, client_pair.private_key, server_pub));

  auto inner = krb4::Unseal4(dh_key, outer.value());
  if (!inner.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "DH layer decryption failed");
  }
  kcrypto::DesKey client_key = kcrypto::StringToKey(password, user.Salt());
  auto plain = krb4::Unseal4(client_key, inner.value());
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "wrong password");
  }
  auto body = krb4::AsReplyBody4::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }
  DhLoginResult result;
  result.tgs_session_key = kcrypto::DesKey(body.value().tgs_session_key);
  result.sealed_tgt = body.value().sealed_tgt;
  return result;
}

}  // namespace khard
