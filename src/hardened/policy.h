// The paper's recommended changes, packaged as configuration presets.
//
// Mapping from the paper's recommendation lists to knobs in this codebase:
//
//  body (a) challenge/response option         → AppServer5Options::mode
//  body (b) standard encoding w/ type tags    → kenc::TlvMessage (always on in V5)
//  body (c) handheld-authenticator login      → src/hardened/handheld_login.h
//  body (d) separate encryption layer         → src/krb5/enclayer.h (always on in V5)
//  body (e) true session keys                 → send_subkey / negotiate_subkey
//  body (f) special-purpose hardware          → src/hsm/
//  body (g) preauthenticated initial exchange → require_preauth / use_preauth
//  body (h) eavesdropping-resistant login     → src/hardened/dh_login.h
//  new  (a') challenge/response handheld      → handheld_login + challenge mode
//  new  (b') preauthentication                → as body (g)
//  new  (c') strong checksums + field binding → require_collision_proof_checksum,
//            request_checksum=Md4Des, verify_service_name_check,
//            send_service_name_check, enforce_enc_tkt_cname_match
//  new  (d') omit / isolate ENC-TKT-IN-SKEY and REUSE-SKEY
//            → allow_enc_tkt_in_skey=false, allow_reuse_skey=false
//  appendix: sequence numbers over timestamps → krb5::ReplayProtection::kSequence

#ifndef SRC_HARDENED_POLICY_H_
#define SRC_HARDENED_POLICY_H_

#include "src/krb5/appserver.h"
#include "src/krb5/client.h"
#include "src/krb5/kdc.h"
#include "src/krb5/safepriv.h"

namespace khard {

// KDC settings with every recommendation applied.
krb5::KdcPolicy5 RecommendedKdcPolicy();

// Application-server settings: challenge/response, subkey negotiation,
// service-name binding, collision-proof encryption-layer checksums.
krb5::AppServer5Options RecommendedServerOptions();

// Client settings matching the above.
krb5::Client5Options RecommendedClientOptions();

// Session-channel settings: KRB_PRIV with sequence numbers.
krb5::ChannelConfig RecommendedChannelConfig();

// The Draft 3 permissive defaults, for experiments that need the explicit
// "vulnerable" end of each comparison.
krb5::KdcPolicy5 Draft3KdcPolicy();
krb5::AppServer5Options Draft3ServerOptions();
krb5::Client5Options Draft3ClientOptions();

}  // namespace khard

#endif  // SRC_HARDENED_POLICY_H_
