file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_replay.dir/bench_e01_replay.cc.o"
  "CMakeFiles/bench_e01_replay.dir/bench_e01_replay.cc.o.d"
  "bench_e01_replay"
  "bench_e01_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
