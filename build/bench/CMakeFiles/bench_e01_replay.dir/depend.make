# Empty dependencies file for bench_e01_replay.
# This may be replaced when dependencies are built.
