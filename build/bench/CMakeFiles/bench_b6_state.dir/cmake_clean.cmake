file(REMOVE_RECURSE
  "CMakeFiles/bench_b6_state.dir/bench_b6_state.cc.o"
  "CMakeFiles/bench_b6_state.dir/bench_b6_state.cc.o.d"
  "bench_b6_state"
  "bench_b6_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b6_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
