# Empty dependencies file for bench_b6_state.
# This may be replaced when dependencies are built.
