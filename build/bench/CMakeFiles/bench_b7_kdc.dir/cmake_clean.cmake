file(REMOVE_RECURSE
  "CMakeFiles/bench_b7_kdc.dir/bench_b7_kdc.cc.o"
  "CMakeFiles/bench_b7_kdc.dir/bench_b7_kdc.cc.o.d"
  "bench_b7_kdc"
  "bench_b7_kdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b7_kdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
