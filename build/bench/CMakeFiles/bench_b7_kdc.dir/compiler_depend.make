# Empty compiler generated dependencies file for bench_b7_kdc.
# This may be replaced when dependencies are built.
