file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_interrealm.dir/bench_e13_interrealm.cc.o"
  "CMakeFiles/bench_e13_interrealm.dir/bench_e13_interrealm.cc.o.d"
  "bench_e13_interrealm"
  "bench_e13_interrealm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_interrealm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
