# Empty dependencies file for bench_e13_interrealm.
# This may be replaced when dependencies are built.
