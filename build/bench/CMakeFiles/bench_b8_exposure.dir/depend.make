# Empty dependencies file for bench_b8_exposure.
# This may be replaced when dependencies are built.
