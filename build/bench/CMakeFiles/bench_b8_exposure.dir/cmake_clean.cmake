file(REMOVE_RECURSE
  "CMakeFiles/bench_b8_exposure.dir/bench_b8_exposure.cc.o"
  "CMakeFiles/bench_b8_exposure.dir/bench_b8_exposure.cc.o.d"
  "bench_b8_exposure"
  "bench_b8_exposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b8_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
