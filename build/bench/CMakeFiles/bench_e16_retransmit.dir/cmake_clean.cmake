file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_retransmit.dir/bench_e16_retransmit.cc.o"
  "CMakeFiles/bench_e16_retransmit.dir/bench_e16_retransmit.cc.o.d"
  "bench_e16_retransmit"
  "bench_e16_retransmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_retransmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
