# Empty dependencies file for bench_e05_harvest.
# This may be replaced when dependencies are built.
