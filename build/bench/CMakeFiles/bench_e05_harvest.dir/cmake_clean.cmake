file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_harvest.dir/bench_e05_harvest.cc.o"
  "CMakeFiles/bench_e05_harvest.dir/bench_e05_harvest.cc.o.d"
  "bench_e05_harvest"
  "bench_e05_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
