# Empty dependencies file for bench_e00_environment.
# This may be replaced when dependencies are built.
