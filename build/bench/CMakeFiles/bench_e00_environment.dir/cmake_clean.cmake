file(REMOVE_RECURSE
  "CMakeFiles/bench_e00_environment.dir/bench_e00_environment.cc.o"
  "CMakeFiles/bench_e00_environment.dir/bench_e00_environment.cc.o.d"
  "bench_e00_environment"
  "bench_e00_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e00_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
