# Empty compiler generated dependencies file for bench_e03_timespoof.
# This may be replaced when dependencies are built.
