file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_timespoof.dir/bench_e03_timespoof.cc.o"
  "CMakeFiles/bench_e03_timespoof.dir/bench_e03_timespoof.cc.o.d"
  "bench_e03_timespoof"
  "bench_e03_timespoof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_timespoof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
