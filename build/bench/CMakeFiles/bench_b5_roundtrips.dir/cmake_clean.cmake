file(REMOVE_RECURSE
  "CMakeFiles/bench_b5_roundtrips.dir/bench_b5_roundtrips.cc.o"
  "CMakeFiles/bench_b5_roundtrips.dir/bench_b5_roundtrips.cc.o.d"
  "bench_b5_roundtrips"
  "bench_b5_roundtrips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b5_roundtrips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
