# Empty dependencies file for bench_b5_roundtrips.
# This may be replaced when dependencies are built.
