# Empty compiler generated dependencies file for bench_b10_window.
# This may be replaced when dependencies are built.
