file(REMOVE_RECURSE
  "CMakeFiles/bench_b10_window.dir/bench_b10_window.cc.o"
  "CMakeFiles/bench_b10_window.dir/bench_b10_window.cc.o.d"
  "bench_b10_window"
  "bench_b10_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b10_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
