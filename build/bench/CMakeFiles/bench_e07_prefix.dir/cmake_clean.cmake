file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_prefix.dir/bench_e07_prefix.cc.o"
  "CMakeFiles/bench_e07_prefix.dir/bench_e07_prefix.cc.o.d"
  "bench_e07_prefix"
  "bench_e07_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
