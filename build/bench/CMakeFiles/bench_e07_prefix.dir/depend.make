# Empty dependencies file for bench_e07_prefix.
# This may be replaced when dependencies are built.
