file(REMOVE_RECURSE
  "CMakeFiles/bench_b9_ablation.dir/bench_b9_ablation.cc.o"
  "CMakeFiles/bench_b9_ablation.dir/bench_b9_ablation.cc.o.d"
  "bench_b9_ablation"
  "bench_b9_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b9_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
