# Empty dependencies file for bench_b9_ablation.
# This may be replaced when dependencies are built.
