file(REMOVE_RECURSE
  "CMakeFiles/bench_b4_crack.dir/bench_b4_crack.cc.o"
  "CMakeFiles/bench_b4_crack.dir/bench_b4_crack.cc.o.d"
  "bench_b4_crack"
  "bench_b4_crack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b4_crack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
