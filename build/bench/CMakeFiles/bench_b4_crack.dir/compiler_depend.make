# Empty compiler generated dependencies file for bench_b4_crack.
# This may be replaced when dependencies are built.
