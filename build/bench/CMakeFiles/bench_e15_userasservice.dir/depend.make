# Empty dependencies file for bench_e15_userasservice.
# This may be replaced when dependencies are built.
