file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_userasservice.dir/bench_e15_userasservice.cc.o"
  "CMakeFiles/bench_e15_userasservice.dir/bench_e15_userasservice.cc.o.d"
  "bench_e15_userasservice"
  "bench_e15_userasservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_userasservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
