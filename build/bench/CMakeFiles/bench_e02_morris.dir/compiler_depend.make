# Empty compiler generated dependencies file for bench_e02_morris.
# This may be replaced when dependencies are built.
