file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_morris.dir/bench_e02_morris.cc.o"
  "CMakeFiles/bench_e02_morris.dir/bench_e02_morris.cc.o.d"
  "bench_e02_morris"
  "bench_e02_morris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_morris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
