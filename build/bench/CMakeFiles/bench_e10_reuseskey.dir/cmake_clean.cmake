file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_reuseskey.dir/bench_e10_reuseskey.cc.o"
  "CMakeFiles/bench_e10_reuseskey.dir/bench_e10_reuseskey.cc.o.d"
  "bench_e10_reuseskey"
  "bench_e10_reuseskey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_reuseskey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
