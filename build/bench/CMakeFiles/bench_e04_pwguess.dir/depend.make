# Empty dependencies file for bench_e04_pwguess.
# This may be replaced when dependencies are built.
