
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e04_pwguess.cc" "bench/CMakeFiles/bench_e04_pwguess.dir/bench_e04_pwguess.cc.o" "gcc" "bench/CMakeFiles/bench_e04_pwguess.dir/bench_e04_pwguess.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/kerb_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/hardened/CMakeFiles/kerb_hardened.dir/DependInfo.cmake"
  "/root/repo/build/src/hsm/CMakeFiles/kerb_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/krb5/CMakeFiles/kerb_krb5.dir/DependInfo.cmake"
  "/root/repo/build/src/krb4/CMakeFiles/kerb_krb4.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kerb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/kerb_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kerb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kerb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
