file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_pwguess.dir/bench_e04_pwguess.cc.o"
  "CMakeFiles/bench_e04_pwguess.dir/bench_e04_pwguess.cc.o.d"
  "bench_e04_pwguess"
  "bench_e04_pwguess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_pwguess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
