file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_login.dir/bench_e06_login.cc.o"
  "CMakeFiles/bench_e06_login.dir/bench_e06_login.cc.o.d"
  "bench_e06_login"
  "bench_e06_login.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_login.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
