file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_pcbc.dir/bench_e08_pcbc.cc.o"
  "CMakeFiles/bench_e08_pcbc.dir/bench_e08_pcbc.cc.o.d"
  "bench_e08_pcbc"
  "bench_e08_pcbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_pcbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
