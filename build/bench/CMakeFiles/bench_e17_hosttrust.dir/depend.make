# Empty dependencies file for bench_e17_hosttrust.
# This may be replaced when dependencies are built.
