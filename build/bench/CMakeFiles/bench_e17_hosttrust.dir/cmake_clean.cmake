file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_hosttrust.dir/bench_e17_hosttrust.cc.o"
  "CMakeFiles/bench_e17_hosttrust.dir/bench_e17_hosttrust.cc.o.d"
  "bench_e17_hosttrust"
  "bench_e17_hosttrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_hosttrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
