# Empty dependencies file for bench_b3_dh.
# This may be replaced when dependencies are built.
