file(REMOVE_RECURSE
  "CMakeFiles/bench_b3_dh.dir/bench_b3_dh.cc.o"
  "CMakeFiles/bench_b3_dh.dir/bench_b3_dh.cc.o.d"
  "bench_b3_dh"
  "bench_b3_dh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b3_dh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
