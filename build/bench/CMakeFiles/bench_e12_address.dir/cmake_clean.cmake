file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_address.dir/bench_e12_address.cc.o"
  "CMakeFiles/bench_e12_address.dir/bench_e12_address.cc.o.d"
  "bench_e12_address"
  "bench_e12_address.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
