file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_xsession.dir/bench_e11_xsession.cc.o"
  "CMakeFiles/bench_e11_xsession.dir/bench_e11_xsession.cc.o.d"
  "bench_e11_xsession"
  "bench_e11_xsession.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_xsession.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
