# Empty compiler generated dependencies file for bench_e11_xsession.
# This may be replaced when dependencies are built.
