file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_hsm.dir/bench_e14_hsm.cc.o"
  "CMakeFiles/bench_e14_hsm.dir/bench_e14_hsm.cc.o.d"
  "bench_e14_hsm"
  "bench_e14_hsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_hsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
