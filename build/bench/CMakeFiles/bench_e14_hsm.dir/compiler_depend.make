# Empty compiler generated dependencies file for bench_e14_hsm.
# This may be replaced when dependencies are built.
