file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_cutpaste.dir/bench_e09_cutpaste.cc.o"
  "CMakeFiles/bench_e09_cutpaste.dir/bench_e09_cutpaste.cc.o.d"
  "bench_e09_cutpaste"
  "bench_e09_cutpaste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_cutpaste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
