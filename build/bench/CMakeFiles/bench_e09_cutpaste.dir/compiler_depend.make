# Empty compiler generated dependencies file for bench_e09_cutpaste.
# This may be replaced when dependencies are built.
