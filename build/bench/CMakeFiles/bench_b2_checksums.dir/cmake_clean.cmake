file(REMOVE_RECURSE
  "CMakeFiles/bench_b2_checksums.dir/bench_b2_checksums.cc.o"
  "CMakeFiles/bench_b2_checksums.dir/bench_b2_checksums.cc.o.d"
  "bench_b2_checksums"
  "bench_b2_checksums.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b2_checksums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
