# Empty dependencies file for bench_b2_checksums.
# This may be replaced when dependencies are built.
