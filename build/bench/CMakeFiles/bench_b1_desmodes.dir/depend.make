# Empty dependencies file for bench_b1_desmodes.
# This may be replaced when dependencies are built.
