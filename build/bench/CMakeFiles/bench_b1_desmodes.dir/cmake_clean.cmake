file(REMOVE_RECURSE
  "CMakeFiles/bench_b1_desmodes.dir/bench_b1_desmodes.cc.o"
  "CMakeFiles/bench_b1_desmodes.dir/bench_b1_desmodes.cc.o.d"
  "bench_b1_desmodes"
  "bench_b1_desmodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b1_desmodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
