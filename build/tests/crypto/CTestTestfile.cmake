# CMake generated Testfile for 
# Source directory: /root/repo/tests/crypto
# Build directory: /root/repo/build/tests/crypto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto/des_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/modes_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crc32_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/md4_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/checksum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/dh_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/dlog_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/primes_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/prng_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/str2key_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/common_test[1]_include.cmake")
