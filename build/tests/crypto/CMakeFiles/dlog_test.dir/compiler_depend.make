# Empty compiler generated dependencies file for dlog_test.
# This may be replaced when dependencies are built.
