file(REMOVE_RECURSE
  "CMakeFiles/dlog_test.dir/dlog_test.cc.o"
  "CMakeFiles/dlog_test.dir/dlog_test.cc.o.d"
  "dlog_test"
  "dlog_test.pdb"
  "dlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
