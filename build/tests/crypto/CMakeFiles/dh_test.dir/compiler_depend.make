# Empty compiler generated dependencies file for dh_test.
# This may be replaced when dependencies are built.
