file(REMOVE_RECURSE
  "CMakeFiles/str2key_test.dir/str2key_test.cc.o"
  "CMakeFiles/str2key_test.dir/str2key_test.cc.o.d"
  "str2key_test"
  "str2key_test.pdb"
  "str2key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/str2key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
