# Empty compiler generated dependencies file for str2key_test.
# This may be replaced when dependencies are built.
