# Empty dependencies file for md4_test.
# This may be replaced when dependencies are built.
