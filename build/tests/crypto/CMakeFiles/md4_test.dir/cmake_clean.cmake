file(REMOVE_RECURSE
  "CMakeFiles/md4_test.dir/md4_test.cc.o"
  "CMakeFiles/md4_test.dir/md4_test.cc.o.d"
  "md4_test"
  "md4_test.pdb"
  "md4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
