file(REMOVE_RECURSE
  "CMakeFiles/loginspoof_attack_test.dir/loginspoof_test.cc.o"
  "CMakeFiles/loginspoof_attack_test.dir/loginspoof_test.cc.o.d"
  "loginspoof_attack_test"
  "loginspoof_attack_test.pdb"
  "loginspoof_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loginspoof_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
