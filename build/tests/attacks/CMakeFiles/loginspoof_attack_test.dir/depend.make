# Empty dependencies file for loginspoof_attack_test.
# This may be replaced when dependencies are built.
