# Empty dependencies file for interrealm_forge_test.
# This may be replaced when dependencies are built.
