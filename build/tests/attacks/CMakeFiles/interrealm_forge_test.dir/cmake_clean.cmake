file(REMOVE_RECURSE
  "CMakeFiles/interrealm_forge_test.dir/interrealm_attack_test.cc.o"
  "CMakeFiles/interrealm_forge_test.dir/interrealm_attack_test.cc.o.d"
  "interrealm_forge_test"
  "interrealm_forge_test.pdb"
  "interrealm_forge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrealm_forge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
