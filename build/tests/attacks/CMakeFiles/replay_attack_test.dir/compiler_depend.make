# Empty compiler generated dependencies file for replay_attack_test.
# This may be replaced when dependencies are built.
