file(REMOVE_RECURSE
  "CMakeFiles/replay_attack_test.dir/replay_test.cc.o"
  "CMakeFiles/replay_attack_test.dir/replay_test.cc.o.d"
  "replay_attack_test"
  "replay_attack_test.pdb"
  "replay_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
