file(REMOVE_RECURSE
  "CMakeFiles/hsmleak_attack_test.dir/hsmleak_test.cc.o"
  "CMakeFiles/hsmleak_attack_test.dir/hsmleak_test.cc.o.d"
  "hsmleak_attack_test"
  "hsmleak_attack_test.pdb"
  "hsmleak_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsmleak_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
