# Empty compiler generated dependencies file for hsmleak_attack_test.
# This may be replaced when dependencies are built.
