file(REMOVE_RECURSE
  "CMakeFiles/harvest_attack_test.dir/harvest_test.cc.o"
  "CMakeFiles/harvest_attack_test.dir/harvest_test.cc.o.d"
  "harvest_attack_test"
  "harvest_attack_test.pdb"
  "harvest_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
