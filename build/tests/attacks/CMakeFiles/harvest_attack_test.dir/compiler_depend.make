# Empty compiler generated dependencies file for harvest_attack_test.
# This may be replaced when dependencies are built.
