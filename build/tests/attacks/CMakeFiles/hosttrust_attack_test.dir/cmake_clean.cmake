file(REMOVE_RECURSE
  "CMakeFiles/hosttrust_attack_test.dir/hosttrust_test.cc.o"
  "CMakeFiles/hosttrust_attack_test.dir/hosttrust_test.cc.o.d"
  "hosttrust_attack_test"
  "hosttrust_attack_test.pdb"
  "hosttrust_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosttrust_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
