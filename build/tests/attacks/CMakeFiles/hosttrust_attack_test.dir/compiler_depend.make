# Empty compiler generated dependencies file for hosttrust_attack_test.
# This may be replaced when dependencies are built.
