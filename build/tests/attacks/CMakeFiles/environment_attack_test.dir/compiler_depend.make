# Empty compiler generated dependencies file for environment_attack_test.
# This may be replaced when dependencies are built.
