file(REMOVE_RECURSE
  "CMakeFiles/environment_attack_test.dir/environment_test.cc.o"
  "CMakeFiles/environment_attack_test.dir/environment_test.cc.o.d"
  "environment_attack_test"
  "environment_attack_test.pdb"
  "environment_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environment_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
