file(REMOVE_RECURSE
  "CMakeFiles/retransmit_attack_test.dir/retransmit_test.cc.o"
  "CMakeFiles/retransmit_attack_test.dir/retransmit_test.cc.o.d"
  "retransmit_attack_test"
  "retransmit_attack_test.pdb"
  "retransmit_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retransmit_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
