# Empty compiler generated dependencies file for retransmit_attack_test.
# This may be replaced when dependencies are built.
