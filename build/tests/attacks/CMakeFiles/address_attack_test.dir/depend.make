# Empty dependencies file for address_attack_test.
# This may be replaced when dependencies are built.
