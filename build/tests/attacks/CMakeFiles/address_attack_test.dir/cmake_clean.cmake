file(REMOVE_RECURSE
  "CMakeFiles/address_attack_test.dir/address_test.cc.o"
  "CMakeFiles/address_attack_test.dir/address_test.cc.o.d"
  "address_attack_test"
  "address_attack_test.pdb"
  "address_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
