# Empty dependencies file for morris_attack_test.
# This may be replaced when dependencies are built.
