file(REMOVE_RECURSE
  "CMakeFiles/morris_attack_test.dir/morris_test.cc.o"
  "CMakeFiles/morris_attack_test.dir/morris_test.cc.o.d"
  "morris_attack_test"
  "morris_attack_test.pdb"
  "morris_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morris_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
