file(REMOVE_RECURSE
  "CMakeFiles/reuseskey_attack_test.dir/reuseskey_test.cc.o"
  "CMakeFiles/reuseskey_attack_test.dir/reuseskey_test.cc.o.d"
  "reuseskey_attack_test"
  "reuseskey_attack_test.pdb"
  "reuseskey_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuseskey_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
