# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reuseskey_attack_test.
