# Empty compiler generated dependencies file for reuseskey_attack_test.
# This may be replaced when dependencies are built.
