file(REMOVE_RECURSE
  "CMakeFiles/cutpaste_attack_test.dir/cutpaste_test.cc.o"
  "CMakeFiles/cutpaste_attack_test.dir/cutpaste_test.cc.o.d"
  "cutpaste_attack_test"
  "cutpaste_attack_test.pdb"
  "cutpaste_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutpaste_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
