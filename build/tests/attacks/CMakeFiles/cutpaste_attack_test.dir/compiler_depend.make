# Empty compiler generated dependencies file for cutpaste_attack_test.
# This may be replaced when dependencies are built.
