file(REMOVE_RECURSE
  "CMakeFiles/timespoof_attack_test.dir/timespoof_test.cc.o"
  "CMakeFiles/timespoof_attack_test.dir/timespoof_test.cc.o.d"
  "timespoof_attack_test"
  "timespoof_attack_test.pdb"
  "timespoof_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timespoof_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
