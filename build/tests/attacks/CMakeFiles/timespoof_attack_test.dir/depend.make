# Empty dependencies file for timespoof_attack_test.
# This may be replaced when dependencies are built.
