file(REMOVE_RECURSE
  "CMakeFiles/userasservice_attack_test.dir/userasservice_test.cc.o"
  "CMakeFiles/userasservice_attack_test.dir/userasservice_test.cc.o.d"
  "userasservice_attack_test"
  "userasservice_attack_test.pdb"
  "userasservice_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userasservice_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
