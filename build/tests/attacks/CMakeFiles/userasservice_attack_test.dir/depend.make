# Empty dependencies file for userasservice_attack_test.
# This may be replaced when dependencies are built.
