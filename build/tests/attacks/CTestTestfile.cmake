# CMake generated Testfile for 
# Source directory: /root/repo/tests/attacks
# Build directory: /root/repo/build/tests/attacks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/attacks/replay_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/morris_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/timespoof_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/harvest_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/loginspoof_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/cutpaste_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/reuseskey_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/address_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/hsmleak_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/interrealm_forge_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/userasservice_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/retransmit_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/environment_attack_test[1]_include.cmake")
include("/root/repo/build/tests/attacks/hosttrust_attack_test[1]_include.cmake")
