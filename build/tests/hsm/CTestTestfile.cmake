# CMake generated Testfile for 
# Source directory: /root/repo/tests/hsm
# Build directory: /root/repo/build/tests/hsm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hsm/encryption_unit_test[1]_include.cmake")
include("/root/repo/build/tests/hsm/keystore_test[1]_include.cmake")
include("/root/repo/build/tests/hsm/hsm_client_test[1]_include.cmake")
