# Empty compiler generated dependencies file for hsm_client_test.
# This may be replaced when dependencies are built.
