file(REMOVE_RECURSE
  "CMakeFiles/hsm_client_test.dir/hsm_client_test.cc.o"
  "CMakeFiles/hsm_client_test.dir/hsm_client_test.cc.o.d"
  "hsm_client_test"
  "hsm_client_test.pdb"
  "hsm_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsm_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
