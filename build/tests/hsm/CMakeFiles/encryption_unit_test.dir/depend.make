# Empty dependencies file for encryption_unit_test.
# This may be replaced when dependencies are built.
