file(REMOVE_RECURSE
  "CMakeFiles/encryption_unit_test.dir/encryption_unit_test.cc.o"
  "CMakeFiles/encryption_unit_test.dir/encryption_unit_test.cc.o.d"
  "encryption_unit_test"
  "encryption_unit_test.pdb"
  "encryption_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encryption_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
