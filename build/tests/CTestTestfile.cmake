# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("crypto")
subdirs("encoding")
subdirs("sim")
subdirs("krb4")
subdirs("krb5")
subdirs("attacks")
subdirs("hsm")
subdirs("hardened")
subdirs("fuzz")
subdirs("integration")
