# CMake generated Testfile for 
# Source directory: /root/repo/tests/encoding
# Build directory: /root/repo/build/tests/encoding
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/encoding/io_test[1]_include.cmake")
include("/root/repo/build/tests/encoding/tlv_test[1]_include.cmake")
