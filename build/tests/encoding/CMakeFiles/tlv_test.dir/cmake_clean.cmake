file(REMOVE_RECURSE
  "CMakeFiles/tlv_test.dir/tlv_test.cc.o"
  "CMakeFiles/tlv_test.dir/tlv_test.cc.o.d"
  "tlv_test"
  "tlv_test.pdb"
  "tlv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
