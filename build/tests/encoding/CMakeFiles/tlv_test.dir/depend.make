# Empty dependencies file for tlv_test.
# This may be replaced when dependencies are built.
