# Empty dependencies file for handheld_login_test.
# This may be replaced when dependencies are built.
