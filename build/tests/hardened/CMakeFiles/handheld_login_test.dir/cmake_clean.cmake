file(REMOVE_RECURSE
  "CMakeFiles/handheld_login_test.dir/handheld_login_test.cc.o"
  "CMakeFiles/handheld_login_test.dir/handheld_login_test.cc.o.d"
  "handheld_login_test"
  "handheld_login_test.pdb"
  "handheld_login_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handheld_login_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
