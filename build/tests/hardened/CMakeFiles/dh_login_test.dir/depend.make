# Empty dependencies file for dh_login_test.
# This may be replaced when dependencies are built.
