file(REMOVE_RECURSE
  "CMakeFiles/dh_login_test.dir/dh_login_test.cc.o"
  "CMakeFiles/dh_login_test.dir/dh_login_test.cc.o.d"
  "dh_login_test"
  "dh_login_test.pdb"
  "dh_login_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dh_login_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
