# CMake generated Testfile for 
# Source directory: /root/repo/tests/hardened
# Build directory: /root/repo/build/tests/hardened
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hardened/handheld_login_test[1]_include.cmake")
include("/root/repo/build/tests/hardened/dh_login_test[1]_include.cmake")
include("/root/repo/build/tests/hardened/policy_test[1]_include.cmake")
