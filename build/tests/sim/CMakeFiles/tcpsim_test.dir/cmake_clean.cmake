file(REMOVE_RECURSE
  "CMakeFiles/tcpsim_test.dir/tcpsim_test.cc.o"
  "CMakeFiles/tcpsim_test.dir/tcpsim_test.cc.o.d"
  "tcpsim_test"
  "tcpsim_test.pdb"
  "tcpsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
