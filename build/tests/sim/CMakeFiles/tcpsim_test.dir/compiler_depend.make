# Empty compiler generated dependencies file for tcpsim_test.
# This may be replaced when dependencies are built.
