file(REMOVE_RECURSE
  "CMakeFiles/timeservice_test.dir/timeservice_test.cc.o"
  "CMakeFiles/timeservice_test.dir/timeservice_test.cc.o.d"
  "timeservice_test"
  "timeservice_test.pdb"
  "timeservice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeservice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
