# Empty dependencies file for timeservice_test.
# This may be replaced when dependencies are built.
