# CMake generated Testfile for 
# Source directory: /root/repo/tests/krb4
# Build directory: /root/repo/build/tests/krb4
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/krb4/messages4_test[1]_include.cmake")
include("/root/repo/build/tests/krb4/protocol4_test[1]_include.cmake")
include("/root/repo/build/tests/krb4/typeconfusion_test[1]_include.cmake")
include("/root/repo/build/tests/krb4/krbpriv4_test[1]_include.cmake")
include("/root/repo/build/tests/krb4/errorpaths4_test[1]_include.cmake")
