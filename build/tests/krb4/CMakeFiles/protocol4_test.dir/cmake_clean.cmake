file(REMOVE_RECURSE
  "CMakeFiles/protocol4_test.dir/protocol4_test.cc.o"
  "CMakeFiles/protocol4_test.dir/protocol4_test.cc.o.d"
  "protocol4_test"
  "protocol4_test.pdb"
  "protocol4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
