# Empty compiler generated dependencies file for protocol4_test.
# This may be replaced when dependencies are built.
