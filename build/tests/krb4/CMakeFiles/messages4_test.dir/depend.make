# Empty dependencies file for messages4_test.
# This may be replaced when dependencies are built.
