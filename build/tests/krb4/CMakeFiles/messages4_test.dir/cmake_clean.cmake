file(REMOVE_RECURSE
  "CMakeFiles/messages4_test.dir/messages4_test.cc.o"
  "CMakeFiles/messages4_test.dir/messages4_test.cc.o.d"
  "messages4_test"
  "messages4_test.pdb"
  "messages4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messages4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
