# Empty dependencies file for errorpaths4_test.
# This may be replaced when dependencies are built.
