file(REMOVE_RECURSE
  "CMakeFiles/errorpaths4_test.dir/errorpaths4_test.cc.o"
  "CMakeFiles/errorpaths4_test.dir/errorpaths4_test.cc.o.d"
  "errorpaths4_test"
  "errorpaths4_test.pdb"
  "errorpaths4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errorpaths4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
