file(REMOVE_RECURSE
  "CMakeFiles/typeconfusion_test.dir/typeconfusion_test.cc.o"
  "CMakeFiles/typeconfusion_test.dir/typeconfusion_test.cc.o.d"
  "typeconfusion_test"
  "typeconfusion_test.pdb"
  "typeconfusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typeconfusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
