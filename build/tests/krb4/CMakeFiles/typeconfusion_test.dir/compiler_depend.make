# Empty compiler generated dependencies file for typeconfusion_test.
# This may be replaced when dependencies are built.
