file(REMOVE_RECURSE
  "CMakeFiles/krbpriv4_test.dir/krbpriv4_test.cc.o"
  "CMakeFiles/krbpriv4_test.dir/krbpriv4_test.cc.o.d"
  "krbpriv4_test"
  "krbpriv4_test.pdb"
  "krbpriv4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krbpriv4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
