# Empty compiler generated dependencies file for krbpriv4_test.
# This may be replaced when dependencies are built.
