# CMake generated Testfile for 
# Source directory: /root/repo/tests/krb5
# Build directory: /root/repo/build/tests/krb5
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/krb5/enclayer_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/messages5_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/protocol5_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/safepriv_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/interrealm_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/deeprealm_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/channel_param_test[1]_include.cmake")
include("/root/repo/build/tests/krb5/errorpaths_test[1]_include.cmake")
