file(REMOVE_RECURSE
  "CMakeFiles/safepriv_test.dir/safepriv_test.cc.o"
  "CMakeFiles/safepriv_test.dir/safepriv_test.cc.o.d"
  "safepriv_test"
  "safepriv_test.pdb"
  "safepriv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safepriv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
