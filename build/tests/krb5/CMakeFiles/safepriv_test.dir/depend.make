# Empty dependencies file for safepriv_test.
# This may be replaced when dependencies are built.
