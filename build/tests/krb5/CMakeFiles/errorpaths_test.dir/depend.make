# Empty dependencies file for errorpaths_test.
# This may be replaced when dependencies are built.
