file(REMOVE_RECURSE
  "CMakeFiles/errorpaths_test.dir/errorpaths_test.cc.o"
  "CMakeFiles/errorpaths_test.dir/errorpaths_test.cc.o.d"
  "errorpaths_test"
  "errorpaths_test.pdb"
  "errorpaths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errorpaths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
