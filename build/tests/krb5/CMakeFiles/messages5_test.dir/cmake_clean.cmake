file(REMOVE_RECURSE
  "CMakeFiles/messages5_test.dir/messages5_test.cc.o"
  "CMakeFiles/messages5_test.dir/messages5_test.cc.o.d"
  "messages5_test"
  "messages5_test.pdb"
  "messages5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messages5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
