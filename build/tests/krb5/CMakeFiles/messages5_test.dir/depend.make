# Empty dependencies file for messages5_test.
# This may be replaced when dependencies are built.
