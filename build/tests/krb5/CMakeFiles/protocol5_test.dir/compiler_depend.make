# Empty compiler generated dependencies file for protocol5_test.
# This may be replaced when dependencies are built.
