file(REMOVE_RECURSE
  "CMakeFiles/protocol5_test.dir/protocol5_test.cc.o"
  "CMakeFiles/protocol5_test.dir/protocol5_test.cc.o.d"
  "protocol5_test"
  "protocol5_test.pdb"
  "protocol5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
