file(REMOVE_RECURSE
  "CMakeFiles/enclayer_test.dir/enclayer_test.cc.o"
  "CMakeFiles/enclayer_test.dir/enclayer_test.cc.o.d"
  "enclayer_test"
  "enclayer_test.pdb"
  "enclayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
