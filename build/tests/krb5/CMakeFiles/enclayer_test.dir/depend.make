# Empty dependencies file for enclayer_test.
# This may be replaced when dependencies are built.
