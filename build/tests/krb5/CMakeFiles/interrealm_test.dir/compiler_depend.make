# Empty compiler generated dependencies file for interrealm_test.
# This may be replaced when dependencies are built.
