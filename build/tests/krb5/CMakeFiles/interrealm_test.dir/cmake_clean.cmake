file(REMOVE_RECURSE
  "CMakeFiles/interrealm_test.dir/interrealm_test.cc.o"
  "CMakeFiles/interrealm_test.dir/interrealm_test.cc.o.d"
  "interrealm_test"
  "interrealm_test.pdb"
  "interrealm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrealm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
