# Empty dependencies file for channel_param_test.
# This may be replaced when dependencies are built.
