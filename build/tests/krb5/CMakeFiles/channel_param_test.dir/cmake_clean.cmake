file(REMOVE_RECURSE
  "CMakeFiles/channel_param_test.dir/channel_param_test.cc.o"
  "CMakeFiles/channel_param_test.dir/channel_param_test.cc.o.d"
  "channel_param_test"
  "channel_param_test.pdb"
  "channel_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
