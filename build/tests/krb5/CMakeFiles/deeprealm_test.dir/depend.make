# Empty dependencies file for deeprealm_test.
# This may be replaced when dependencies are built.
