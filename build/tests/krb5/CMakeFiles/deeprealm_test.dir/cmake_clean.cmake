file(REMOVE_RECURSE
  "CMakeFiles/deeprealm_test.dir/deeprealm_test.cc.o"
  "CMakeFiles/deeprealm_test.dir/deeprealm_test.cc.o.d"
  "deeprealm_test"
  "deeprealm_test.pdb"
  "deeprealm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deeprealm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
