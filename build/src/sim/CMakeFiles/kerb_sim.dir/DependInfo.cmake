
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/kerb_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/kerb_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/tcpsim.cc" "src/sim/CMakeFiles/kerb_sim.dir/tcpsim.cc.o" "gcc" "src/sim/CMakeFiles/kerb_sim.dir/tcpsim.cc.o.d"
  "/root/repo/src/sim/timeservice.cc" "src/sim/CMakeFiles/kerb_sim.dir/timeservice.cc.o" "gcc" "src/sim/CMakeFiles/kerb_sim.dir/timeservice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kerb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kerb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/kerb_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
