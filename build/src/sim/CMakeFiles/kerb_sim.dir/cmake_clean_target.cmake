file(REMOVE_RECURSE
  "libkerb_sim.a"
)
