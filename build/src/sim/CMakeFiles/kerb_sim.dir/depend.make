# Empty dependencies file for kerb_sim.
# This may be replaced when dependencies are built.
