file(REMOVE_RECURSE
  "CMakeFiles/kerb_sim.dir/network.cc.o"
  "CMakeFiles/kerb_sim.dir/network.cc.o.d"
  "CMakeFiles/kerb_sim.dir/tcpsim.cc.o"
  "CMakeFiles/kerb_sim.dir/tcpsim.cc.o.d"
  "CMakeFiles/kerb_sim.dir/timeservice.cc.o"
  "CMakeFiles/kerb_sim.dir/timeservice.cc.o.d"
  "libkerb_sim.a"
  "libkerb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
