file(REMOVE_RECURSE
  "CMakeFiles/kerb_crypto.dir/bigint.cc.o"
  "CMakeFiles/kerb_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/checksum.cc.o"
  "CMakeFiles/kerb_crypto.dir/checksum.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/crc32.cc.o"
  "CMakeFiles/kerb_crypto.dir/crc32.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/des.cc.o"
  "CMakeFiles/kerb_crypto.dir/des.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/dh.cc.o"
  "CMakeFiles/kerb_crypto.dir/dh.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/dlog.cc.o"
  "CMakeFiles/kerb_crypto.dir/dlog.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/md4.cc.o"
  "CMakeFiles/kerb_crypto.dir/md4.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/modes.cc.o"
  "CMakeFiles/kerb_crypto.dir/modes.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/primes.cc.o"
  "CMakeFiles/kerb_crypto.dir/primes.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/prng.cc.o"
  "CMakeFiles/kerb_crypto.dir/prng.cc.o.d"
  "CMakeFiles/kerb_crypto.dir/str2key.cc.o"
  "CMakeFiles/kerb_crypto.dir/str2key.cc.o.d"
  "libkerb_crypto.a"
  "libkerb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
