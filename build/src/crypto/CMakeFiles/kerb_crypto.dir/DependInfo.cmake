
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/bigint.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/bigint.cc.o.d"
  "/root/repo/src/crypto/checksum.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/checksum.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/checksum.cc.o.d"
  "/root/repo/src/crypto/crc32.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/crc32.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/crc32.cc.o.d"
  "/root/repo/src/crypto/des.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/des.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/des.cc.o.d"
  "/root/repo/src/crypto/dh.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/dh.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/dh.cc.o.d"
  "/root/repo/src/crypto/dlog.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/dlog.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/dlog.cc.o.d"
  "/root/repo/src/crypto/md4.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/md4.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/md4.cc.o.d"
  "/root/repo/src/crypto/modes.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/modes.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/modes.cc.o.d"
  "/root/repo/src/crypto/primes.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/primes.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/primes.cc.o.d"
  "/root/repo/src/crypto/prng.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/prng.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/prng.cc.o.d"
  "/root/repo/src/crypto/str2key.cc" "src/crypto/CMakeFiles/kerb_crypto.dir/str2key.cc.o" "gcc" "src/crypto/CMakeFiles/kerb_crypto.dir/str2key.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kerb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
