# Empty dependencies file for kerb_crypto.
# This may be replaced when dependencies are built.
