file(REMOVE_RECURSE
  "libkerb_crypto.a"
)
