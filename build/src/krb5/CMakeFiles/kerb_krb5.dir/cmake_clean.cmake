file(REMOVE_RECURSE
  "CMakeFiles/kerb_krb5.dir/appserver.cc.o"
  "CMakeFiles/kerb_krb5.dir/appserver.cc.o.d"
  "CMakeFiles/kerb_krb5.dir/client.cc.o"
  "CMakeFiles/kerb_krb5.dir/client.cc.o.d"
  "CMakeFiles/kerb_krb5.dir/enclayer.cc.o"
  "CMakeFiles/kerb_krb5.dir/enclayer.cc.o.d"
  "CMakeFiles/kerb_krb5.dir/kdc.cc.o"
  "CMakeFiles/kerb_krb5.dir/kdc.cc.o.d"
  "CMakeFiles/kerb_krb5.dir/messages.cc.o"
  "CMakeFiles/kerb_krb5.dir/messages.cc.o.d"
  "CMakeFiles/kerb_krb5.dir/safepriv.cc.o"
  "CMakeFiles/kerb_krb5.dir/safepriv.cc.o.d"
  "libkerb_krb5.a"
  "libkerb_krb5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_krb5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
