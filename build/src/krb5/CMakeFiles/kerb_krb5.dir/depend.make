# Empty dependencies file for kerb_krb5.
# This may be replaced when dependencies are built.
