file(REMOVE_RECURSE
  "libkerb_krb5.a"
)
