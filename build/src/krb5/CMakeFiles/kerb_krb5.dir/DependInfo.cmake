
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/krb5/appserver.cc" "src/krb5/CMakeFiles/kerb_krb5.dir/appserver.cc.o" "gcc" "src/krb5/CMakeFiles/kerb_krb5.dir/appserver.cc.o.d"
  "/root/repo/src/krb5/client.cc" "src/krb5/CMakeFiles/kerb_krb5.dir/client.cc.o" "gcc" "src/krb5/CMakeFiles/kerb_krb5.dir/client.cc.o.d"
  "/root/repo/src/krb5/enclayer.cc" "src/krb5/CMakeFiles/kerb_krb5.dir/enclayer.cc.o" "gcc" "src/krb5/CMakeFiles/kerb_krb5.dir/enclayer.cc.o.d"
  "/root/repo/src/krb5/kdc.cc" "src/krb5/CMakeFiles/kerb_krb5.dir/kdc.cc.o" "gcc" "src/krb5/CMakeFiles/kerb_krb5.dir/kdc.cc.o.d"
  "/root/repo/src/krb5/messages.cc" "src/krb5/CMakeFiles/kerb_krb5.dir/messages.cc.o" "gcc" "src/krb5/CMakeFiles/kerb_krb5.dir/messages.cc.o.d"
  "/root/repo/src/krb5/safepriv.cc" "src/krb5/CMakeFiles/kerb_krb5.dir/safepriv.cc.o" "gcc" "src/krb5/CMakeFiles/kerb_krb5.dir/safepriv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kerb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kerb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/kerb_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kerb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/krb4/CMakeFiles/kerb_krb4.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
