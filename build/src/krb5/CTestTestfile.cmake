# CMake generated Testfile for 
# Source directory: /root/repo/src/krb5
# Build directory: /root/repo/build/src/krb5
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
