# Empty dependencies file for kerb_krb4.
# This may be replaced when dependencies are built.
