
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/krb4/appserver.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/appserver.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/appserver.cc.o.d"
  "/root/repo/src/krb4/client.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/client.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/client.cc.o.d"
  "/root/repo/src/krb4/database.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/database.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/database.cc.o.d"
  "/root/repo/src/krb4/kdc.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/kdc.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/kdc.cc.o.d"
  "/root/repo/src/krb4/krbpriv.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/krbpriv.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/krbpriv.cc.o.d"
  "/root/repo/src/krb4/messages.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/messages.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/messages.cc.o.d"
  "/root/repo/src/krb4/principal.cc" "src/krb4/CMakeFiles/kerb_krb4.dir/principal.cc.o" "gcc" "src/krb4/CMakeFiles/kerb_krb4.dir/principal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kerb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kerb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/kerb_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kerb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
