file(REMOVE_RECURSE
  "CMakeFiles/kerb_krb4.dir/appserver.cc.o"
  "CMakeFiles/kerb_krb4.dir/appserver.cc.o.d"
  "CMakeFiles/kerb_krb4.dir/client.cc.o"
  "CMakeFiles/kerb_krb4.dir/client.cc.o.d"
  "CMakeFiles/kerb_krb4.dir/database.cc.o"
  "CMakeFiles/kerb_krb4.dir/database.cc.o.d"
  "CMakeFiles/kerb_krb4.dir/kdc.cc.o"
  "CMakeFiles/kerb_krb4.dir/kdc.cc.o.d"
  "CMakeFiles/kerb_krb4.dir/krbpriv.cc.o"
  "CMakeFiles/kerb_krb4.dir/krbpriv.cc.o.d"
  "CMakeFiles/kerb_krb4.dir/messages.cc.o"
  "CMakeFiles/kerb_krb4.dir/messages.cc.o.d"
  "CMakeFiles/kerb_krb4.dir/principal.cc.o"
  "CMakeFiles/kerb_krb4.dir/principal.cc.o.d"
  "libkerb_krb4.a"
  "libkerb_krb4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_krb4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
