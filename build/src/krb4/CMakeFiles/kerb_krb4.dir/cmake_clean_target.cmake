file(REMOVE_RECURSE
  "libkerb_krb4.a"
)
