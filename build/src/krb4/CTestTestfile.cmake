# CMake generated Testfile for 
# Source directory: /root/repo/src/krb4
# Build directory: /root/repo/build/src/krb4
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
