file(REMOVE_RECURSE
  "libkerb_hardened.a"
)
