# Empty compiler generated dependencies file for kerb_hardened.
# This may be replaced when dependencies are built.
