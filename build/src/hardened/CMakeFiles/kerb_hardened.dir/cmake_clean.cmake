file(REMOVE_RECURSE
  "CMakeFiles/kerb_hardened.dir/dh_login.cc.o"
  "CMakeFiles/kerb_hardened.dir/dh_login.cc.o.d"
  "CMakeFiles/kerb_hardened.dir/handheld_login.cc.o"
  "CMakeFiles/kerb_hardened.dir/handheld_login.cc.o.d"
  "CMakeFiles/kerb_hardened.dir/policy.cc.o"
  "CMakeFiles/kerb_hardened.dir/policy.cc.o.d"
  "libkerb_hardened.a"
  "libkerb_hardened.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_hardened.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
