# Empty compiler generated dependencies file for kerb_attacks.
# This may be replaced when dependencies are built.
