file(REMOVE_RECURSE
  "libkerb_attacks.a"
)
