
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/address.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/address.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/address.cc.o.d"
  "/root/repo/src/attacks/cutpaste.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/cutpaste.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/cutpaste.cc.o.d"
  "/root/repo/src/attacks/environment.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/environment.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/environment.cc.o.d"
  "/root/repo/src/attacks/harvest.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/harvest.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/harvest.cc.o.d"
  "/root/repo/src/attacks/hosttrust.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/hosttrust.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/hosttrust.cc.o.d"
  "/root/repo/src/attacks/hsmleak.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/hsmleak.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/hsmleak.cc.o.d"
  "/root/repo/src/attacks/interrealm.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/interrealm.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/interrealm.cc.o.d"
  "/root/repo/src/attacks/loginspoof.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/loginspoof.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/loginspoof.cc.o.d"
  "/root/repo/src/attacks/morris.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/morris.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/morris.cc.o.d"
  "/root/repo/src/attacks/passwords.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/passwords.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/passwords.cc.o.d"
  "/root/repo/src/attacks/replay.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/replay.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/replay.cc.o.d"
  "/root/repo/src/attacks/retransmit.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/retransmit.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/retransmit.cc.o.d"
  "/root/repo/src/attacks/reuseskey.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/reuseskey.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/reuseskey.cc.o.d"
  "/root/repo/src/attacks/testbed.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/testbed.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/testbed.cc.o.d"
  "/root/repo/src/attacks/testbed5.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/testbed5.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/testbed5.cc.o.d"
  "/root/repo/src/attacks/timespoof.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/timespoof.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/timespoof.cc.o.d"
  "/root/repo/src/attacks/userasservice.cc" "src/attacks/CMakeFiles/kerb_attacks.dir/userasservice.cc.o" "gcc" "src/attacks/CMakeFiles/kerb_attacks.dir/userasservice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/krb4/CMakeFiles/kerb_krb4.dir/DependInfo.cmake"
  "/root/repo/build/src/krb5/CMakeFiles/kerb_krb5.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kerb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kerb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/hardened/CMakeFiles/kerb_hardened.dir/DependInfo.cmake"
  "/root/repo/build/src/hsm/CMakeFiles/kerb_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/kerb_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kerb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
