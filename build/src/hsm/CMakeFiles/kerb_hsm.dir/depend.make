# Empty dependencies file for kerb_hsm.
# This may be replaced when dependencies are built.
