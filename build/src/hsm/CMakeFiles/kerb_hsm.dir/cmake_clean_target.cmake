file(REMOVE_RECURSE
  "libkerb_hsm.a"
)
