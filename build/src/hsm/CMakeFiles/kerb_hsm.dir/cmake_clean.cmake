file(REMOVE_RECURSE
  "CMakeFiles/kerb_hsm.dir/encryption_unit.cc.o"
  "CMakeFiles/kerb_hsm.dir/encryption_unit.cc.o.d"
  "CMakeFiles/kerb_hsm.dir/hsm_client.cc.o"
  "CMakeFiles/kerb_hsm.dir/hsm_client.cc.o.d"
  "CMakeFiles/kerb_hsm.dir/keystore.cc.o"
  "CMakeFiles/kerb_hsm.dir/keystore.cc.o.d"
  "libkerb_hsm.a"
  "libkerb_hsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_hsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
