# Empty compiler generated dependencies file for kerb_encoding.
# This may be replaced when dependencies are built.
