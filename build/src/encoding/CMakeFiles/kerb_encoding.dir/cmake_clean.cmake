file(REMOVE_RECURSE
  "CMakeFiles/kerb_encoding.dir/io.cc.o"
  "CMakeFiles/kerb_encoding.dir/io.cc.o.d"
  "CMakeFiles/kerb_encoding.dir/tlv.cc.o"
  "CMakeFiles/kerb_encoding.dir/tlv.cc.o.d"
  "libkerb_encoding.a"
  "libkerb_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
