file(REMOVE_RECURSE
  "libkerb_encoding.a"
)
