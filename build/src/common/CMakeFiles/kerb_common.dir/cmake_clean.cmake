file(REMOVE_RECURSE
  "CMakeFiles/kerb_common.dir/bytes.cc.o"
  "CMakeFiles/kerb_common.dir/bytes.cc.o.d"
  "CMakeFiles/kerb_common.dir/hex.cc.o"
  "CMakeFiles/kerb_common.dir/hex.cc.o.d"
  "CMakeFiles/kerb_common.dir/result.cc.o"
  "CMakeFiles/kerb_common.dir/result.cc.o.d"
  "libkerb_common.a"
  "libkerb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
