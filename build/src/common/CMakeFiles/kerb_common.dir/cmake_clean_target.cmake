file(REMOVE_RECURSE
  "libkerb_common.a"
)
