# Empty compiler generated dependencies file for kerb_common.
# This may be replaced when dependencies are built.
