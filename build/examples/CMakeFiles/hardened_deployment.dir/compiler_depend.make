# Empty compiler generated dependencies file for hardened_deployment.
# This may be replaced when dependencies are built.
