# Empty compiler generated dependencies file for cross_realm.
# This may be replaced when dependencies are built.
