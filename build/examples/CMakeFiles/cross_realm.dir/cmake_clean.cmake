file(REMOVE_RECURSE
  "CMakeFiles/cross_realm.dir/cross_realm.cpp.o"
  "CMakeFiles/cross_realm.dir/cross_realm.cpp.o.d"
  "cross_realm"
  "cross_realm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_realm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
