file(REMOVE_RECURSE
  "CMakeFiles/wiretap_view.dir/wiretap_view.cpp.o"
  "CMakeFiles/wiretap_view.dir/wiretap_view.cpp.o.d"
  "wiretap_view"
  "wiretap_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiretap_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
