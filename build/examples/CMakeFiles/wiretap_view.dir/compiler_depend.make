# Empty compiler generated dependencies file for wiretap_view.
# This may be replaced when dependencies are built.
